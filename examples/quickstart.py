#!/usr/bin/env python3
"""Quickstart: the paper's employee database, end to end.

Builds the constraints of Examples 2.1-2.4, classifies them into the
Fig. 2.1 lattice, evaluates them against a small database, and then runs
the partial-information pipeline on a stream of updates, showing which
information level resolves each check.

Run:  python examples/quickstart.py
"""

from repro import (
    CheckLevel,
    Constraint,
    ConstraintSet,
    Database,
    Insertion,
    PartialInfoChecker,
)


def build_constraints() -> ConstraintSet:
    """The four example constraints of Section 2 (adapted to one schema:
    emp(Name, Dept, Salary))."""
    return ConstraintSet(
        [
            # Example 2.2: every low-paid employee must be in a department
            # that exists.
            Constraint(
                "panic :- emp(E,D,S) & not dept(D) & S < 100",
                "referential-when-cheap",
            ),
            # Example 2.3: salaries must lie in the department's range.
            Constraint(
                """
                panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low
                panic :- emp(E,D,S) & salRange(D,Low,High) & S > High
                """,
                "salary-range",
            ),
            # Example 2.4: no employee may be his or her own boss.
            Constraint(
                """
                panic :- boss(E,E)
                boss(E,M) :- emp(E,D,S) & manager(D,M)
                boss(E,F) :- boss(E,G) & boss(G,F)
                """,
                "no-self-boss",
            ),
            # A plain-CQ constraint in the spirit of Example 2.1: nobody
            # in both sales and accounting (via a dual-assignment table).
            Constraint(
                "panic :- assigned(E,sales) & assigned(E,accounting)",
                "no-dual-assignment",
            ),
        ]
    )


def main() -> None:
    constraints = build_constraints()

    print("=== Fig. 2.1 classification ===")
    for constraint in constraints:
        print(f"  {constraint.name:24s} -> {constraint.constraint_class.name}")

    db = Database(
        {
            "emp": [("ann", "toys", 50), ("bob", "sales", 120)],
            "dept": [("toys",), ("sales",)],
            "salRange": [("toys", 40, 90), ("sales", 100, 200)],
            "manager": [("toys", "bob"), ("sales", "carol")],
            "assigned": [("ann", "toys"), ("bob", "sales")],
        }
    )

    print("\n=== initial state ===")
    for constraint in constraints:
        verdict = "holds" if constraint.holds(db) else "VIOLATED"
        print(f"  {constraint.name:24s} {verdict}")

    # The local site owns emp and assigned; policy tables are remote.
    checker = PartialInfoChecker(
        constraints, local_predicates={"emp", "assigned"}
    )
    local = db.restricted_to({"emp", "assigned"})
    remote = db.restricted_to({"dept", "salRange", "manager"})

    updates = [
        # Safe at level 2: ann already earns exactly 50 in toys, so the
        # complete local test covers both salary-range disjuncts.
        Insertion("emp", ("dan", "toys", 50)),
        # Inconclusive locally (nobody in toys earns as little as 30):
        # escalates to the remote site and is caught as a violation.
        Insertion("emp", ("eve", "toys", 30)),
        # Resolved at level 1: adding a department can never create a
        # referential violation (the Example 4.1 containment).
        Insertion("dept", ("gadgets",)),
        # Purely local constraint: definite answer from local data alone.
        Insertion("assigned", ("ann", "shipping")),
    ]

    print("\n=== update stream (local site view) ===")
    from repro import Outcome

    for update in updates:
        print(f"\n  update {update}")
        reports = checker.check(update, local, remote)
        for report in reports:
            print(f"    {report}")
        if any(r.outcome is Outcome.VIOLATED for r in reports):
            print("    -> rejected")
            continue
        if update.predicate in ("emp", "assigned"):
            update.apply(local)
        else:
            update.apply(remote)
        update.apply(db)

    print("\n=== final ground truth ===")
    for constraint in constraints:
        verdict = "holds" if constraint.holds(db) else "VIOLATED"
        print(f"  {constraint.name:24s} {verdict}")


if __name__ == "__main__":
    main()
