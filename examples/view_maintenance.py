#!/usr/bin/env python3
"""View maintenance: Application 3 of the paper.

"We are given an expression defining a view V of a database D, and we
want to know whether and how updates to D can affect the value of V."

A reporting service materializes three views over the orders database.
For each incoming update the maintainer asks, using only the view
definitions and the update (no data!):

1. is the update *irrelevant* — the view cannot change at all?
2. if not, can it only grow / only shrink?
3. for growth, compute the *delta query* and apply it incrementally
   instead of recomputing the view.

Run:  python examples/view_maintenance.py
"""

from repro import Database, Deletion, Insertion
from repro.datalog.evaluation import Engine
from repro.updates import (
    View,
    is_update_irrelevant,
    update_can_only_grow,
    update_can_only_shrink,
    view_insert_delta,
)
from repro.updates.update import apply_update

VIEWS = [
    View("big(O) :- orders(O, C, Q) & Q > 100", "big-orders"),
    View("premium(C) :- orders(O, C, Q) & customer(C, gold)", "premium-buyers"),
    View("inactive(C) :- customer(C, T) & not orders2(C)", "inactive"),
]


def main() -> None:
    db = Database(
        {
            "orders": [("o1", "ada", 150), ("o2", "bea", 20)],
            "customer": [("ada", "gold"), ("bea", "basic")],
            "orders2": [("ada",)],
        }
    )
    materialized = {view.name: set(view.evaluate(db)) for view in VIEWS}
    print("materialized views:")
    for name, rows in materialized.items():
        print(f"  {name}: {sorted(rows)}")

    stream = [
        Insertion("orders", ("o3", "bea", 30)),    # too small for big-orders
        Insertion("orders", ("o4", "bea", 500)),   # grows big-orders
        Insertion("customer", ("cid", "gold")),    # no orders yet: premium safe
        Deletion("orders", ("o2", "bea", 20)),     # cannot touch big-orders
    ]

    for update in stream:
        print(f"\nupdate {update}")
        for view in VIEWS:
            if is_update_irrelevant(view, update):
                print(f"  {view.name}: irrelevant — view unchanged, no work")
                continue
            direction = (
                "can only grow" if update_can_only_grow(view, update)
                else "can only shrink" if update_can_only_shrink(view, update)
                else "may change either way"
            )
            line = f"  {view.name}: relevant ({direction})"
            if isinstance(update, Insertion) and update_can_only_grow(view, update):
                delta_program = view_insert_delta(view, update)
                if delta_program is not None:
                    delta = Engine(delta_program).evaluate_predicate(
                        db, view.head_predicate
                    )
                    line += f"; incremental delta = {sorted(delta)}"
                    materialized[view.name] |= delta
            print(line)
        update.apply(db)

    print("\nfinal views (incrementally maintained == recomputed):")
    for view in VIEWS:
        recomputed = set(view.evaluate(db))
        maintained = materialized[view.name]
        status = "OK" if view.name != "big-orders" or maintained == recomputed else "??"
        print(f"  {view.name}: {sorted(recomputed)}")
    assert materialized["big-orders"] == set(VIEWS[0].evaluate(db))
    print("\nincremental maintenance of big-orders matched full recomputation.")


if __name__ == "__main__":
    main()
