#!/usr/bin/env python3
"""Active databases: Application 2 of the paper.

"A related problem concerns active databases, where we have a collection
of rules of the form 'if C holds, then perform action A'.  We can see
such a rule as a constraint ``panic :- C`` with the action A performed in
response to deriving panic."

This example builds a tiny active-rule engine on top of the library: each
rule's condition is a panic query, and the engine uses the *update-only*
analysis of Section 4 to decide which conditions an update can possibly
have switched on — skipping the evaluation of every other rule.  Unlike
plain constraint maintenance, active rules may NOT assume their condition
was false before the action (the paper's point about how rules are
"normally detected and fired"), so the engine only prunes, never assumes.

Run:  python examples/active_rules.py
"""

from dataclasses import dataclass
from typing import Callable

from repro import Constraint, Database, Insertion, rewrite, subsumes
from repro.errors import ReproError


@dataclass
class ActiveRule:
    """if `condition` produces panic, run `action`."""

    name: str
    condition: Constraint
    action: Callable[[Database], list[Insertion]]


def might_fire(rule: ActiveRule, update: Insertion) -> bool:
    """Can *update* possibly turn the rule's condition on?

    Sound pruning via Section 4: rewrite the condition to reflect the
    update and ask whether the rewritten condition is contained in the
    original (if so, the update adds no new firings beyond those already
    implied — but since active rules cannot assume the condition was
    false before, containment in the ORIGINAL means "nothing new", and we
    only skip when additionally the condition does not mention the
    updated predicate or the containment holds)."""
    if update.predicate not in rule.condition.predicates():
        return False
    try:
        rewritten = rewrite(rule.condition, update)
        return not subsumes([rule.condition], rewritten)
    except ReproError:
        return True  # cannot analyze: be conservative


def main() -> None:
    db = Database(
        {
            "order": [("o1", "widget", 5)],
            "stock": [("widget", 100), ("gadget", 2)],
            "lowstock": [],
        }
    )

    def reorder_action(database: Database) -> list[Insertion]:
        updates = []
        for item, qty in database.facts("stock"):
            if qty < 10 and (item,) not in database.facts("lowstock"):
                updates.append(Insertion("lowstock", (item,)))
        return updates

    rules = [
        ActiveRule(
            "flag-low-stock",
            Constraint("panic :- stock(I,Q) & Q < 10", "low-stock-cond"),
            reorder_action,
        ),
        ActiveRule(
            "audit-big-orders",
            Constraint("panic :- order(O,I,Q) & Q > 50", "big-order-cond"),
            lambda database: [],
        ),
    ]

    stream = [
        Insertion("order", ("o2", "widget", 3)),   # small order: no rule cares
        Insertion("stock", ("gizmo", 4)),          # low stock: rule 1 fires
        Insertion("order", ("o3", "gadget", 80)),  # big order: rule 2 fires
    ]

    print("active rules:")
    for rule in rules:
        print(f"  {rule.name}: {rule.condition.as_rule()}")

    for update in stream:
        print(f"\nupdate {update}")
        update.apply(db)
        evaluated = 0
        for rule in rules:
            if not might_fire(rule, update):
                print(f"  {rule.name}: skipped (update cannot enable condition)")
                continue
            evaluated += 1
            if rule.condition.is_violated(db):
                print(f"  {rule.name}: condition holds -> running action")
                for action_update in rule.action(db):
                    print(f"    action performs {action_update}")
                    action_update.apply(db)
            else:
                print(f"  {rule.name}: condition false")
        print(f"  ({evaluated}/{len(rules)} conditions evaluated)")

    print("\nfinal lowstock:", sorted(db.facts("lowstock")))


if __name__ == "__main__":
    main()
