#!/usr/bin/env python3
"""Forbidden intervals: Examples 5.3 and 6.1, every implementation.

Story: a facilities database.  The *local* relation ``cleared(Lo, Hi)``
records time windows during which a vault corridor is certified empty;
the *remote* relation ``motion(T)`` holds motion-sensor timestamps owned
by the security subsystem.  The constraint: no motion event may fall
inside a cleared window::

    panic :- cleared(X,Y) & motion(Z) & X <= Z & Z <= Y

Inserting a new cleared window is safe — *without asking security* —
exactly when the new window is covered by the union of existing windows
(Example 5.3).  This script walks through:

1. the RED reductions of Example 5.3;
2. the Theorem 5.2 containment test and its completeness witness;
3. the interval-algebra test and the generated Fig. 6.1 datalog program
   (printed, then executed on the engine);
4. a larger randomized run cross-checking all implementations.

Run:  python examples/forbidden_intervals.py
"""

import random

from repro import (
    Database,
    IntervalDatalogTest,
    analyze_icq,
    complete_local_test_insertion,
    completeness_witness,
    interval_local_test,
    parse_rule,
    reduce_by_tuple,
)

CONSTRAINT = parse_rule("panic :- cleared(X,Y) & motion(Z) & X <= Z & Z <= Y")
LOCAL = "cleared"


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    section("Example 5.3: reductions")
    windows = [(3, 6), (5, 10)]
    for values in windows + [(4, 8)]:
        print(f"  RED({values}) = {reduce_by_tuple(CONSTRAINT, LOCAL, values)}")

    section("Theorem 5.2: the complete local test")
    verdict = complete_local_test_insertion(CONSTRAINT, LOCAL, (4, 8), windows)
    print(f"  insert (4,8) with L={windows}: safe locally? {verdict}  (paper: yes)")
    verdict = complete_local_test_insertion(CONSTRAINT, LOCAL, (4, 12), windows)
    print(f"  insert (4,12) with L={windows}: safe locally? {verdict}")
    witness = completeness_witness(CONSTRAINT, LOCAL, (4, 12), windows)
    print(f"  ... and the remote state the test fears: motion = "
          f"{sorted(witness.facts('motion'))}")

    section("Fig. 6.1: the generated recursive datalog program")
    analysis = analyze_icq(CONSTRAINT, LOCAL)
    test = IntervalDatalogTest(analysis)
    for rule in test.program:
        print(f"  {rule}")

    section("running the program vs the interval algebra")
    for inserted in [(4, 8), (4, 12), (11, 12), (6, 9)]:
        datalog = test.passes(inserted, windows)
        algebra = interval_local_test(analysis, inserted, windows)
        print(f"  insert {inserted}: datalog={datalog}  intervals={algebra}")

    section("randomized agreement check (200 trials)")
    rng = random.Random(0)
    agree = 0
    for _ in range(200):
        relation = [
            (rng.randrange(50), rng.randrange(50)) for _ in range(rng.randrange(6))
        ]
        inserted = (rng.randrange(50), rng.randrange(50))
        answers = {
            interval_local_test(analysis, inserted, relation),
            test.passes(inserted, relation),
            complete_local_test_insertion(CONSTRAINT, LOCAL, inserted, relation),
        }
        agree += len(answers) == 1
    print(f"  all three implementations agreed on {agree}/200 random cases")

    section("why no relational algebra test exists here (Section 6 remark)")
    chain = [(i, i + 1) for i in range(0, 12)]  # a chain of touching windows
    inserted = (0, 12)
    print(f"  L = chain of {len(chain)} touching windows, insert {inserted}")
    print(f"  covered (needs the recursive closure): "
          f"{interval_local_test(analysis, inserted, chain)}")
    print("  any fixed RA expression looks at a bounded number of tuples; the")
    print("  chain needs all of them, which is the paper's inexpressibility")
    print("  argument for Theorem 6.1's use of recursion.")


if __name__ == "__main__":
    main()
