#!/usr/bin/env python3
"""Distributed integrity maintenance: the paper's motivating scenario.

A branch office owns its ``emp`` table; department policy (closed
departments, salary floors) lives at headquarters.  Every hire must
respect the global constraints, but a round trip to headquarters is
expensive — so the branch runs the partial-information pipeline and
escalates only when the local tests are inconclusive.

The script compares the protocol against a naive checker that asks
headquarters about every hire, across a sweep of workload "coverage"
rates (how often a hire resembles an existing colleague).

Run:  python examples/distributed_integrity.py
"""

from repro import DistributedChecker, employee_workload
from repro.core import CheckLevel


def run_protocol(covered_fraction: float, use_datalog: bool = False):
    workload = employee_workload(
        initial_employees=150,
        num_updates=120,
        covered_fraction=covered_fraction,
        seed=11,
    )
    checker = DistributedChecker(
        workload.constraints, workload.sites, use_interval_datalog=use_datalog
    )
    for update in workload.updates:
        checker.process(update)
    return workload, checker


def naive_cost(workload_factory_kwargs: dict) -> int:
    """The baseline: every update triggers a remote round trip."""
    workload = employee_workload(**workload_factory_kwargs)
    return len(workload.updates)


def main() -> None:
    print("constraints under maintenance:")
    workload, _ = run_protocol(0.5)
    for constraint in workload.constraints:
        print(f"  [{constraint.constraint_class.name}] {constraint.name}:")
        for rule in constraint.program:
            print(f"      {rule}")

    print("\ncoverage sweep (120 hires each):")
    header = (
        f"{'covered':>8s} {'local-resolved':>14s} {'remote trips':>12s} "
        f"{'naive trips':>11s} {'saved':>6s} {'rejected':>8s}"
    )
    print(header)
    print("-" * len(header))
    for covered in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
        workload, checker = run_protocol(covered)
        stats = checker.stats
        naive = len(workload.updates)
        saved = naive - stats.remote_round_trips
        print(
            f"{covered:8.2f} {stats.resolved_locally:14d} "
            f"{stats.remote_round_trips:12d} {naive:11d} "
            f"{saved:6d} {stats.rejected:8d}"
        )

    print("\nper-level breakdown at coverage 0.75:")
    _, checker = run_protocol(0.75)
    for level in CheckLevel:
        print(f"  {str(level):32s} {checker.stats.resolved_at_level[level]:4d}")

    print("\nThe shape to notice: remote round trips fall linearly as the")
    print("workload becomes more locally coverable — the complete local")
    print("tests convert data locality into saved communication, which is")
    print("the paper's Section 1 motivation.")


if __name__ == "__main__":
    main()
