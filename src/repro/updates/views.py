"""View maintenance — Application 3 of Section 2.

"We are given an expression defining a view V of a database D, and we
want to know whether and how updates to D can affect the value of V"
(citing Tompa and Blakeley [1988], Blakeley, Coburn, and Larson [1989],
and Ceri and Widom [1991]).

The machinery is the same as constraint checking: rewrite the view's
defining query to reflect the update (Section 4) and compare.  Three
gradations are offered:

* :func:`is_update_irrelevant` — the update can never change the view
  (the "detecting irrelevant updates" of Blakeley et al.): the rewritten
  query is equivalent to the original.
* :func:`view_insert_delta` — for an insertion, the *delta query* whose
  result is exactly the set of tuples the update adds to the view
  (autonomously computable from the update and the base relations).
* :func:`update_can_only_grow` / :func:`update_can_only_shrink` — one-
  sided containments: an insertion into a positively-occurring relation
  can only add view tuples, etc.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NotApplicableError, UnsupportedClassError
from repro.datalog.database import Database
from repro.datalog.evaluation import Engine
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Program, Rule
from repro.containment.cq import is_contained_in_union_cq
from repro.containment.cqc import is_contained_in_union_cqc
from repro.containment.negation import is_contained_with_negation
from repro.updates.rewrite import (
    _expand_rule_for_deletion,
    _expand_rule_for_insertion,
)
from repro.updates.update import Insertion, Update

__all__ = [
    "View",
    "is_update_irrelevant",
    "view_insert_delta",
    "update_can_only_grow",
    "update_can_only_shrink",
]


class View:
    """A named view defined by one or more rules with a common head."""

    def __init__(self, definition: Rule | str, name: str | None = None) -> None:
        if isinstance(definition, str):
            definition = parse_rule(definition)
        self.rule = definition
        self.name = name or definition.head.predicate
        self._engine = Engine(Program((definition,)))

    @property
    def head_predicate(self) -> str:
        return self.rule.head.predicate

    def evaluate(self, db: Database) -> frozenset[tuple]:
        return self._engine.evaluate_predicate(db, self.head_predicate)

    def rewritten_for(self, update: Update) -> list[Rule]:
        """The view's defining disjuncts over the pre-update database that
        compute the post-update view (the Section 4 construction)."""
        if isinstance(update, Insertion):
            return _expand_rule_for_insertion(self.rule, update)
        return _expand_rule_for_deletion(self.rule, update)

    def __repr__(self) -> str:
        return f"View({self.name!r}: {self.rule})"


def _union_contained(left: list[Rule], right: list[Rule]) -> bool:
    """Dispatch containment of unions by feature set."""
    rules = left + right
    if any(rule.negations for rule in rules):
        return all(is_contained_with_negation(rule, right) for rule in left)
    if any(rule.comparisons for rule in rules):
        return all(is_contained_in_union_cqc(rule, right) for rule in left)
    return all(is_contained_in_union_cq(rule, right) for rule in left)


def is_update_irrelevant(view: View, update: Update) -> bool:
    """True when *update* provably cannot change the view's value on any
    database — the Blakeley–Coburn–Larson "irrelevant update" notion.
    """
    if update.predicate not in view.rule.body_predicates():
        return True
    rewritten = view.rewritten_for(update)
    original = [view.rule]
    try:
        return _union_contained(rewritten, original) and _union_contained(
            original, rewritten
        )
    except (NotApplicableError, UnsupportedClassError):
        return False  # cannot decide: conservatively relevant


def update_can_only_grow(view: View, update: Update) -> bool:
    """True when the update can only ADD tuples to the view
    (``V(D) subseteq V(update(D))`` for all D)."""
    rewritten = view.rewritten_for(update)
    try:
        return _union_contained([view.rule], rewritten)
    except (NotApplicableError, UnsupportedClassError):
        return False


def update_can_only_shrink(view: View, update: Update) -> bool:
    """True when the update can only REMOVE tuples from the view."""
    rewritten = view.rewritten_for(update)
    try:
        return _union_contained(rewritten, [view.rule])
    except (NotApplicableError, UnsupportedClassError):
        return False


def view_insert_delta(view: View, update: Insertion) -> Optional[Program]:
    """A program computing the tuples the insertion adds to the view,
    evaluated against the PRE-update database.

    The delta is the union of the rewritten disjuncts that actually use
    the inserted tuple (every disjunct except the all-old one); it is
    "autonomously computable" in the Tompa–Blakeley sense whenever the
    view has no negated occurrence of the updated predicate.

    Returns ``None`` when the update cannot affect the view at all.
    """
    if update.predicate not in view.rule.body_predicates():
        return None
    for negation in view.rule.negations:
        if negation.predicate == update.predicate:
            raise NotApplicableError(
                "the inserted predicate occurs negated: the delta is not a "
                "monotone insertion delta"
            )
    disjuncts = _expand_rule_for_insertion(view.rule, update)
    # Drop the all-old disjunct (identical to the original rule body).
    delta_rules = [rule for rule in disjuncts if rule.body != view.rule.body]
    if not delta_rules:
        return None
    return Program(tuple(delta_rules))
