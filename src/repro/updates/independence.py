"""Level-2 tests: deciding from constraints and the update alone.

Two related questions (Section 4):

* :func:`cannot_cause_violation` — the paper's main check: rewrite C into
  C' ("C is violated after this update") and "test whether C' is
  contained in the union of C and any other constraints that we assumed
  held before the update".  A True answer guarantees the update preserves
  C without looking at any data.
* :func:`is_update_independent` — the *query independent of update*
  notion of Elkan [1990] / Tompa–Blakeley [1988] / Levy–Sagiv [1993]:
  C' is equivalent to C, so the update can never change the constraint's
  verdict in either direction.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NotApplicableError, ReproError
from repro.constraints.constraint import Constraint
from repro.constraints.subsumption import subsumes
from repro.updates.rewrite import rewrite
from repro.updates.update import Update

__all__ = ["cannot_cause_violation", "is_update_independent"]


def _usable_in_union(constraint: Constraint) -> bool:
    """Can this constraint serve as a union member in a containment test?"""
    try:
        constraint.as_union()
    except (NotApplicableError, ReproError):
        return False
    return True


def cannot_cause_violation(
    constraint: Constraint,
    update: Update,
    assumed: Sequence[Constraint] = (),
    style: str = "auto",
) -> bool:
    """True when *update* provably cannot newly violate *constraint*,
    assuming *constraint* and every constraint in *assumed* held before.

    This is the containment ``C' subseteq C union C1 ... union Cn``; a
    False answer means "I don't know" — a test with more information
    (local data, Section 5) is needed, not that the constraint breaks.

    Assumed constraints outside the decidable union classes (e.g.
    recursive ones) are dropped from the right-hand union — sound, since
    a containment in a smaller union implies containment in the full one.
    """
    rewritten = rewrite(constraint, update, style)
    candidates = [constraint, *[c for c in assumed if _usable_in_union(c)]]
    if not _usable_in_union(constraint):
        candidates = candidates[1:]
        if not candidates:
            return False
    return subsumes(candidates, rewritten)


def is_update_independent(
    constraint: Constraint, update: Update, style: str = "auto"
) -> bool:
    """True when the update can never change the constraint's verdict:
    C' and C are equivalent as queries."""
    rewritten = rewrite(constraint, update, style)
    return subsumes([constraint], rewritten) and subsumes([rewritten], constraint)
