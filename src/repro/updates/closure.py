"""Closure of the Fig. 2.1 classes under updates (Theorems 4.2 and 4.3).

* **Fig. 4.1 / Theorem 4.2** — insertions preserve the eight classes that
  allow auxiliary rules: every union-of-CQs and recursive-datalog
  variant.  A single-CQ class is not preserved (Theorem 4.1 exhibits a
  constraint after insertion inexpressible as one CQ without arithmetic,
  even with negation).
* **Fig. 4.2 / Theorem 4.3** — deletions preserve the six union/recursive
  classes that have negation or arithmetic available: expressing "every
  tuple except t" needs one of the two (Example 4.2's ``<>`` rules or the
  ``isJones`` negated helper).

This module states the two closure predicates, computes the class a
rewrite lands in, and packages the Theorem 4.1 separation witness so the
non-closure claims can be demonstrated mechanically.
"""

from __future__ import annotations

from repro.datalog.database import Database
from repro.constraints.classify import ALL_CLASSES, ConstraintClass, Shape
from repro.constraints.constraint import Constraint
from repro.updates.rewrite import rewrite
from repro.updates.update import Update

__all__ = [
    "preserved_under_insertion",
    "preserved_under_deletion",
    "figure_41_table",
    "figure_42_table",
    "rewrite_landing_class",
    "theorem41_witness",
]


def preserved_under_insertion(cls: ConstraintClass) -> bool:
    """Fig. 4.1: is *cls* closed under single-tuple insertions?"""
    return cls.shape is not Shape.SINGLE_CQ


def preserved_under_deletion(cls: ConstraintClass) -> bool:
    """Fig. 4.2: is *cls* closed under single-tuple deletions?"""
    return cls.shape is not Shape.SINGLE_CQ and (cls.negation or cls.arithmetic)


def figure_41_table() -> dict[ConstraintClass, bool]:
    """The circled/uncircled status of every class in Fig. 4.1."""
    return {cls: preserved_under_insertion(cls) for cls in ALL_CLASSES}


def figure_42_table() -> dict[ConstraintClass, bool]:
    """The circled/uncircled status of every class in Fig. 4.2."""
    return {cls: preserved_under_deletion(cls) for cls in ALL_CLASSES}


def rewrite_landing_class(
    constraint: Constraint, update: Update, style: str = "auto"
) -> ConstraintClass:
    """The Fig. 2.1 class the rewritten constraint lands in."""
    return rewrite(constraint, update, style).constraint_class


def theorem41_witness() -> dict:
    """The two databases from the proof of Theorem 4.1, with the facts the
    proof asserts about them.

    The theorem: C3 — "after inserting ``toy`` into ``dept`` there is no
    employee in a department absent from ``dept``" — is not expressible as
    a single CQ without arithmetic, even with negation.  The proof hinges
    on two databases over the *pre-update* relations:

    * D1 = {emp(e,shoe,s), emp(e,toy,s)} — C3 panics (shoe is not a
      department even after the insertion);
    * D2 = D1 + {dept(shoe)} — C3 does **not** panic (shoe is now
      legitimate and toy is legitimized by the insertion itself),
      yet any candidate single CQ shown to panic on D1 necessarily
      panics on D2 as well, a contradiction.

    Returns the databases plus C3 (in program form) and its verdicts, so
    the test suite and the F4.1 bench can replay the separation.
    """
    c3 = Constraint(
        """
        dept1(D) :- dept(D)
        dept1(toy)
        panic :- emp(E,D,S) & not dept1(D)
        """,
        "C3",
    )
    d1 = Database({"emp": [("e", "shoe", "s"), ("e", "toy", "s")]})
    d2 = d1.copy()
    d2.insert("dept", ("shoe",))
    return {
        "c3": c3,
        "d1": d1,
        "d2": d2,
        "panics_on_d1": c3.is_violated(d1),
        "panics_on_d2": c3.is_violated(d2),
    }
