"""Updates: single-tuple insertions and deletions.

Section 4 and Section 5 study constraints under one update at a time; the
update objects here know how to apply themselves to a database and how to
undo themselves, which the property tests use to validate the Section 4
rewritings (``rewritten(D) == original(update(D))`` for random D).

Every update normalizes to a :class:`~repro.datalog.database.Delta` via
:meth:`as_delta` — the single path the incremental check sessions use to
apply, maintain, and undo updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.datalog.database import Database, Delta

__all__ = ["Insertion", "Deletion", "Modification", "Update", "apply_update"]


@dataclass(frozen=True)
class Insertion:
    """Insert one tuple into a base relation."""

    predicate: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def apply(self, db: Database) -> bool:
        """Mutate *db*; returns True when the database changed."""
        return db.insert(self.predicate, self.values)

    def applied_copy(self, db: Database) -> Database:
        new = db.copy()
        self.apply(new)
        return new

    def inverted(self) -> "Deletion":
        return Deletion(self.predicate, self.values)

    def as_delta(self) -> Delta:
        return Delta().insert(self.predicate, self.values)

    def __str__(self) -> str:
        return f"+{self.predicate}{self.values!r}"


@dataclass(frozen=True)
class Deletion:
    """Delete one tuple from a base relation."""

    predicate: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def apply(self, db: Database) -> bool:
        return db.delete(self.predicate, self.values)

    def applied_copy(self, db: Database) -> Database:
        new = db.copy()
        self.apply(new)
        return new

    def inverted(self) -> "Insertion":
        return Insertion(self.predicate, self.values)

    def as_delta(self) -> Delta:
        return Delta().delete(self.predicate, self.values)

    def __str__(self) -> str:
        return f"-{self.predicate}{self.values!r}"


@dataclass(frozen=True)
class Modification:
    """Replace one tuple by another in a base relation.

    Semantically the composition delete(old) then insert(new); the paper
    treats insertions and deletions as primitive ("modifications to the
    database"), and every analysis of a modification here goes through
    that composition — except the complete local test, where the
    *deleted* tuple still contributes its reduction (the constraint held
    while it was present, so its forbidden region is still known clear).
    """

    predicate: str
    old_values: tuple
    new_values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "old_values", tuple(self.old_values))
        object.__setattr__(self, "new_values", tuple(self.new_values))

    @property
    def deletion(self) -> Deletion:
        return Deletion(self.predicate, self.old_values)

    @property
    def insertion(self) -> Insertion:
        return Insertion(self.predicate, self.new_values)

    def apply(self, db: Database) -> bool:
        return not db.apply(self.as_delta()).is_noop()

    def applied_copy(self, db: Database) -> Database:
        new = db.copy()
        self.apply(new)
        return new

    def inverted(self) -> "Modification":
        return Modification(self.predicate, self.new_values, self.old_values)

    def as_delta(self) -> Delta:
        return Delta().delete(self.predicate, self.old_values).insert(
            self.predicate, self.new_values
        )

    def __str__(self) -> str:
        return f"~{self.predicate}{self.old_values!r}->{self.new_values!r}"


Update = Union[Insertion, Deletion, Modification]


def apply_update(db: Database, update: Update) -> Database:
    """Non-mutating application: a copy of *db* with *update* applied."""
    return update.applied_copy(db)
