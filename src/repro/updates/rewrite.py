"""Section 4: rewriting constraints to reflect updates.

Given a constraint C and an update, construct a constraint C' that holds
*before* the update iff C holds *after* it ("we take a constraint C and
an update, and we try to construct a new constraint C' ...").  Three
constructions from the paper are implemented:

* **rule addition** (insertions, Example 4.1's ``dept1`` and Theorem 4.2):
  define ``p_ins(X..) :- p(X..)`` plus the fact ``p_ins(t)`` and rename —
  stays inside any class closed under adding nonrecursive rules;
* **disequality union** (deletions, Example 4.2's ``emp1`` rules): one
  rule per column with ``X_i <> t_i`` — lands in nonrecursive datalog with
  arithmetic;
* **negated helper** (deletions, Example 4.2's ``isJones`` remark,
  generalized): ``p_del(X..) :- p(X..) & not p_removed(X..)`` with the
  fact ``p_removed(t)`` — lands in nonrecursive datalog with negation;
* **flat union expansion** (both updates): substitute the update
  algebraically into an unfolded union of CQs, choosing per occurrence of
  the touched predicate — this is the construction behind the closure
  table of Figs. 4.1/4.2 and also yields the single-rule ``D <> toy``
  form of Example 4.1 for negated occurrences.

Every construction satisfies the semantic contract checked by the test
suite: ``rewritten.fires(D) == original.fires(update(D))`` for all D.
"""

from __future__ import annotations

import itertools
from repro.errors import NotApplicableError
from repro.datalog.atoms import Atom, BodyLiteral, Comparison, ComparisonOp, Negation
from repro.datalog.rules import Program, Rule
from repro.datalog.substitution import unify_terms_bidirectional
from repro.datalog.terms import Constant, fresh_variables
from repro.constraints.constraint import Constraint
from repro.updates.update import Deletion, Insertion, Update

__all__ = [
    "rewrite",
    "rewrite_insertion_with_rules",
    "rewrite_deletion_with_negated_helper",
    "rewrite_deletion_with_disequalities",
    "rewrite_union_expansion",
]


def _fresh_predicate(base: str, taken: set[str]) -> str:
    candidate = base
    counter = 0
    while candidate in taken:
        counter += 1
        candidate = f"{base}{counter}"
    return candidate


def _tuple_constants(values: tuple) -> tuple[Constant, ...]:
    return tuple(Constant(v) for v in values)


def rewrite_insertion_with_rules(constraint: Constraint, update: Insertion) -> Constraint:
    """Theorem 4.2's construction: add ``p_ins`` rules and rename.

    Works for every class that allows auxiliary rules, i.e. the eight
    circled classes of Fig. 4.1 (unions of CQs and recursive datalog, with
    any feature combination); applying it to a single-CQ constraint
    necessarily produces a union-of-CQs program.
    """
    pred = update.predicate
    taken = constraint.program.predicates() | {"panic"}
    new_pred = _fresh_predicate(f"{pred}_ins", taken)
    arity = len(update.values)
    variables = fresh_variables(arity, prefix="X")
    copy_rule = Rule(Atom(new_pred, tuple(variables)), (Atom(pred, tuple(variables)),))
    fact_rule = Rule(Atom(new_pred, _tuple_constants(update.values)))
    renamed = constraint.program.rename_predicate(pred, new_pred)
    program = Program((copy_rule, fact_rule) + renamed.rules)
    return Constraint(program, f"{constraint.name}+{update}")


def rewrite_deletion_with_negated_helper(constraint: Constraint, update: Deletion) -> Constraint:
    """The ``isJones`` trick of Example 4.2, generalized to full tuples:
    ``p_del(X..) :- p(X..) & not p_removed(X..)`` with fact
    ``p_removed(t)``.  Adds negation but no arithmetic."""
    pred = update.predicate
    taken = constraint.program.predicates() | {"panic"}
    new_pred = _fresh_predicate(f"{pred}_del", taken)
    removed_pred = _fresh_predicate(f"{pred}_removed", taken | {new_pred})
    arity = len(update.values)
    variables = fresh_variables(arity, prefix="X")
    helper = Rule(
        Atom(new_pred, tuple(variables)),
        (
            Atom(pred, tuple(variables)),
            Negation(Atom(removed_pred, tuple(variables))),
        ),
    )
    fact_rule = Rule(Atom(removed_pred, _tuple_constants(update.values)))
    renamed = constraint.program.rename_predicate(pred, new_pred)
    program = Program((helper, fact_rule) + renamed.rules)
    return Constraint(program, f"{constraint.name}{update}")


def rewrite_deletion_with_disequalities(constraint: Constraint, update: Deletion) -> Constraint:
    """Example 4.2's construction: one ``p_del`` rule per column, each
    keeping tuples that differ from t in that column.  Adds arithmetic
    (``<>``) and union structure but no negation."""
    pred = update.predicate
    taken = constraint.program.predicates() | {"panic"}
    new_pred = _fresh_predicate(f"{pred}_del", taken)
    arity = len(update.values)
    if arity == 0:
        raise NotApplicableError("cannot build disequality rules for a 0-ary predicate")
    variables = fresh_variables(arity, prefix="X")
    constants = _tuple_constants(update.values)
    rules = [
        Rule(
            Atom(new_pred, tuple(variables)),
            (
                Atom(pred, tuple(variables)),
                Comparison(variables[i], ComparisonOp.NE, constants[i]),
            ),
        )
        for i in range(arity)
    ]
    renamed = constraint.program.rename_predicate(pred, new_pred)
    program = Program(tuple(rules) + renamed.rules)
    return Constraint(program, f"{constraint.name}{update}")


def _expand_rule_for_insertion(rule: Rule, update: Insertion) -> list[Rule]:
    """All disjuncts of *rule* after inserting t into p.

    Positive occurrence of p: matched either by the old relation or by t
    (unify and drop the subgoal).  Negated occurrence: the old negation
    still holds *and* the arguments differ from t in some column — the
    disjunction over columns expands into separate rules (this produces
    Example 4.1's single-rule ``D <> toy`` form).
    """
    pred = update.predicate
    constants = _tuple_constants(update.values)

    positive_slots = [
        i for i, lit in enumerate(rule.body)
        if isinstance(lit, Atom) and lit.predicate == pred
    ]
    negated_slots = [
        i for i, lit in enumerate(rule.body)
        if isinstance(lit, Negation) and lit.predicate == pred
    ]

    results: list[Rule] = []
    # Choose, per positive occurrence, old-relation vs the new tuple.
    for choice in itertools.product((False, True), repeat=len(positive_slots)):
        body: list[BodyLiteral | None] = list(rule.body)
        subst = None
        feasible = True
        from repro.datalog.substitution import Substitution

        subst = Substitution()
        for slot, use_new in zip(positive_slots, choice):
            if not use_new:
                continue
            atom = rule.body[slot]
            assert isinstance(atom, Atom)
            unifier = unify_terms_bidirectional(
                tuple(subst.apply_term(t) for t in atom.args), constants
            )
            if unifier is None:
                feasible = False
                break
            merged = subst.merged(unifier)
            if merged is None:
                feasible = False
                break
            subst = merged
            body[slot] = None  # matched by the inserted tuple itself
        if not feasible:
            continue
        kept = tuple(
            subst.apply_literal(lit) for lit in body if lit is not None
        )
        # The unifier may bind head variables (nontrivial heads occur in
        # the view-maintenance application), so it applies to the head too.
        base_rule = Rule(subst.apply_atom(rule.head), kept)
        # Now expand each negated occurrence with a column disequality.
        variants = [base_rule]
        for slot in negated_slots:
            literal = rule.body[slot]
            assert isinstance(literal, Negation)
            args = tuple(subst.apply_term(t) for t in literal.args)
            new_variants: list[Rule] = []
            for variant in variants:
                for column in range(len(args)):
                    extra = Comparison(args[column], ComparisonOp.NE, constants[column])
                    if extra.is_trivial_false():
                        continue
                    new_variants.append(variant.with_body(variant.body + (extra,)))
            variants = new_variants
        results.extend(variants)
    return results


def _expand_rule_for_deletion(rule: Rule, update: Deletion) -> list[Rule]:
    """All disjuncts of *rule* after deleting t from p.

    Positive occurrence: the tuple matched must differ from t in some
    column (disjunction over columns -> separate rules).  Negated
    occurrence: either the old negation holds, or the arguments are
    exactly t (the deletion made the negation true).
    """
    pred = update.predicate
    constants = _tuple_constants(update.values)

    variants: list[Rule] = [rule]
    # Positive occurrences: add a <> column guard.
    position = 0
    while position < len(rule.body):
        literal = rule.body[position]
        if isinstance(literal, Atom) and literal.predicate == pred:
            new_variants: list[Rule] = []
            for variant in variants:
                target = variant.body[position]
                assert isinstance(target, Atom)
                for column in range(len(constants)):
                    extra = Comparison(
                        target.args[column], ComparisonOp.NE, constants[column]
                    )
                    if extra.is_trivial_false():
                        continue
                    new_variants.append(variant.with_body(variant.body + (extra,)))
            variants = new_variants
        position += 1

    # Negated occurrences: keep, or replace by equality with t.
    final: list[Rule] = []
    for variant in variants:
        negated_slots = [
            i for i, lit in enumerate(variant.body)
            if isinstance(lit, Negation) and lit.predicate == pred
        ]
        if not negated_slots:
            final.append(variant)
            continue
        for combo in itertools.product(("keep", "equal"), repeat=len(negated_slots)):
            body: list[BodyLiteral | None] = list(variant.body)
            extras: list[BodyLiteral] = []
            feasible = True
            for slot, action in zip(negated_slots, combo):
                if action == "keep":
                    continue
                literal = variant.body[slot]
                assert isinstance(literal, Negation)
                body[slot] = None
                for arg, constant in zip(literal.args, constants):
                    comparison = Comparison(arg, ComparisonOp.EQ, constant)
                    if comparison.is_trivial_true():
                        continue
                    if isinstance(arg, Constant) and arg != constant:
                        feasible = False
                        break
                    extras.append(comparison)
                if not feasible:
                    break
            if not feasible:
                continue
            kept = tuple(lit for lit in body if lit is not None) + tuple(extras)
            final.append(Rule(variant.head, kept))
    return final


def rewrite_union_expansion(constraint: Constraint, update: Update) -> Constraint:
    """Expand the constraint into a union of CQs and substitute the update
    algebraically — the construction that witnesses the closure results.

    Requires the constraint to be expressible as a union of CQs (i.e. not
    recursive; negation only over EDB predicates).
    """
    disjuncts = constraint.as_union()
    expanded: list[Rule] = []
    for disjunct in disjuncts:
        if isinstance(update, Insertion):
            expanded.extend(_expand_rule_for_insertion(disjunct, update))
        else:
            expanded.extend(_expand_rule_for_deletion(disjunct, update))
    if not expanded:
        # The constraint can never fire after the update; encode "false"
        # as a panic rule over an impossible comparison on a dummy subgoal
        # of the constraint itself (simplest: reuse an original disjunct
        # with a contradictory ground comparison).
        base = disjuncts[0]
        false_rule = Rule(
            base.head,
            base.body + (Comparison(Constant(0), ComparisonOp.LT, Constant(0)),),
        )
        expanded = [false_rule]
    return Constraint(Program(tuple(expanded)), f"{constraint.name}{update}")


def rewrite(constraint: Constraint, update: Update, style: str = "auto") -> Constraint:
    """Construct C' with ``C'(D) == C(update(D))`` for every database D.

    Styles:

    * ``"rules"`` — rule addition (insertions) / negated helper
      (deletions); the Theorem 4.2 / Example 4.2 constructions;
    * ``"arith"`` — deletions via column disequalities (Example 4.2);
    * ``"union"`` — flat union-of-CQs expansion (Figs. 4.1/4.2 witness);
    * ``"auto"`` — union expansion when the constraint unfolds, rule
      addition otherwise (recursive constraints).

    Modifications compose: ``C(mod(D)) = C(insert(delete(D)))``, so the
    insertion rewrite is applied first, then the deletion rewrite.
    """
    from repro.updates.update import Modification

    if isinstance(update, Modification):
        insert_style = "rules" if style == "arith" else style
        after_insert = rewrite(constraint, update.insertion, insert_style)
        return rewrite(after_insert, update.deletion, style)
    if style == "auto":
        try:
            return rewrite_union_expansion(constraint, update)
        except NotApplicableError:
            style = "rules"
    if style == "union":
        return rewrite_union_expansion(constraint, update)
    if style == "rules":
        if isinstance(update, Insertion):
            return rewrite_insertion_with_rules(constraint, update)
        return rewrite_deletion_with_negated_helper(constraint, update)
    if style == "arith":
        if isinstance(update, Insertion):
            raise NotApplicableError(
                "the disequality construction applies to deletions; "
                "insertions use 'rules' or 'union'"
            )
        return rewrite_deletion_with_disequalities(constraint, update)
    raise ValueError(f"unknown rewrite style {style!r}")
