"""Updates and the Section 4 machinery: rewriting, closure, independence."""

from repro.updates.closure import (
    figure_41_table,
    figure_42_table,
    preserved_under_deletion,
    preserved_under_insertion,
    rewrite_landing_class,
    theorem41_witness,
)
from repro.updates.independence import cannot_cause_violation, is_update_independent
from repro.updates.rewrite import (
    rewrite,
    rewrite_deletion_with_disequalities,
    rewrite_deletion_with_negated_helper,
    rewrite_insertion_with_rules,
    rewrite_union_expansion,
)
from repro.updates.update import Deletion, Insertion, Modification, Update, apply_update
from repro.updates.views import (
    View,
    is_update_irrelevant,
    update_can_only_grow,
    update_can_only_shrink,
    view_insert_delta,
)

__all__ = [
    "Deletion",
    "Insertion",
    "Modification",
    "Update",
    "View",
    "apply_update",
    "cannot_cause_violation",
    "figure_41_table",
    "figure_42_table",
    "is_update_independent",
    "is_update_irrelevant",
    "preserved_under_deletion",
    "preserved_under_insertion",
    "rewrite",
    "rewrite_deletion_with_disequalities",
    "rewrite_deletion_with_negated_helper",
    "rewrite_insertion_with_rules",
    "rewrite_landing_class",
    "rewrite_union_expansion",
    "theorem41_witness",
    "update_can_only_grow",
    "update_can_only_shrink",
    "view_insert_delta",
]
