"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so a
caller that wants a single catch-all has one.  The more specific classes
mirror the stages of the pipeline: parsing, static analysis (safety and
stratification), decision procedures, and the update machinery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """Raised when a constraint/program string cannot be parsed.

    Carries the position of the offending token so callers can produce a
    pointer into the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SafetyError(ReproError):
    """Raised when a rule is not range-restricted (safe).

    A rule is safe when every variable that appears in the head, in a
    negated subgoal, or in an arithmetic comparison also appears in some
    positive ordinary subgoal of the body.  Unsafe rules have no finite
    bottom-up semantics.
    """


class StratificationError(ReproError):
    """Raised when a program uses negation through recursion.

    The bottom-up engine implements the stratified semantics; a program
    whose predicate dependency graph has a cycle through a negative edge
    has no stratification and is rejected.
    """


class UndecidableError(ReproError):
    """Raised when a decision problem is undecidable for the given class.

    The paper notes (Section 3, citing Shmueli [1987]) that subsumption is
    undecidable when both the subsumed and subsuming constraints are
    recursive datalog programs.  The corresponding APIs raise this error
    instead of silently approximating; callers may opt into the explicitly
    sound-but-incomplete randomized checks.
    """


class NotApplicableError(ReproError):
    """Raised when an algorithm's preconditions are not met.

    For instance, the Theorem 5.3 relational-algebra construction requires
    an arithmetic-free CQC, and the Fig. 6.1 generator requires an
    independently constrained query (ICQ).
    """


class UnsupportedClassError(ReproError):
    """Raised when a constraint falls outside the classes an API handles."""


class EvaluationError(ReproError):
    """Raised for runtime failures of the datalog or algebra evaluators."""


class ShardWorkerCrashed(ReproError):
    """Raised when a process-pool shard worker dies.

    A dead worker used to escape as a raw
    ``concurrent.futures.process.BrokenProcessPool`` — an implementation
    detail of the executor, not an error a caller of the checker can
    reasonably catch.  This wrapper carries the crashed ``shard`` id and
    ``last_seq``, the arrival-clock stamp of the last update dispatched
    to that shard before the crash, so supervisors and operators know
    exactly where the stream stopped.
    """

    def __init__(self, message: str, shard: int, last_seq: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.last_seq = last_seq


class InjectedCrash(ReproError):
    """Raised by a soft :class:`~repro.distributed.faults.CrashPoint`.

    Chaos injection distinguishes *hard* crashes (``SIGKILL`` to the
    current process — nothing is catchable) from *soft* ones, which
    raise this error at the named point so in-process tests can assert
    that recovery from exactly that point reproduces the uninterrupted
    run.  ``name`` is the crash point's label and ``occurrence`` the
    1-based count of how many times the point had been passed when it
    fired.
    """

    def __init__(self, name: str, occurrence: int = 1) -> None:
        super().__init__(f"injected crash at point {name!r} (occurrence {occurrence})")
        self.name = name
        self.occurrence = occurrence


class RemoteUnavailableError(ReproError):
    """Raised when remote data cannot be fetched for a level-3 check.

    The paper's premise is that "accessing remote data may be expensive
    or impossible"; this error is the *impossible* case.  ``reason``
    classifies the failure (``"transient"``, ``"outage"``, ``"timeout"``,
    ``"circuit-open"``, ``"exhausted"``) so retry policies and statistics
    can distinguish them.  Callers that catch it degrade to a DEFERRED
    verdict instead of crashing the stream.

    ``sites`` names the federated remote sites whose fetches failed, when
    the raiser knows them (a multi-site fan-out may succeed on some sites
    and fail on others).  The partial-recovery drain uses it to mark only
    the failed sites dark and keep settling entries whose site needs are
    still covered; an empty set means the failure is unattributed and the
    caller must assume every site it asked for is affected.
    """

    def __init__(
        self,
        message: str,
        reason: str = "transient",
        sites: "Iterable[str] | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.sites = frozenset(sites) if sites is not None else frozenset()


class StorageError(ReproError):
    """Raised when a storage backend cannot represent or execute a
    request — e.g. a value outside the SQLite-storable domain."""


class StorageBackendMismatch(StorageError):
    """Raised when ``--resume`` requests a different storage backend than
    the one that wrote the journal.

    A journal only replays under the backend that wrote it: effective
    deltas and checkpoints were computed against that backend's state,
    and replaying them into a different engine would silently diverge.
    """

    def __init__(self, recorded: str, requested: str) -> None:
        super().__init__(
            f"--resume backend mismatch: the journal was written by the "
            f"{recorded!r} backend but this run requests {requested!r}; "
            f"a journal only replays under the backend that wrote it "
            f"(rerun with --backend {recorded})"
        )
        self.recorded = recorded
        self.requested = requested
