"""Normalization to Theorem 5.1's preconditions.

The theorem assumes (Section 5):

* no variable appears twice among the ordinary subgoals ("multiple
  occurrences are handled by using distinct variables and equating them by
  arithmetic equality constraints");
* constants do not appear among the ordinary subgoals ("just replace
  constants by new variables and equate those variables to the desired
  constant").

Example 5.2 shows the theorem *fails* without these conditions, so
:func:`normalize_cqc` implements the paper's fix: every occurrence of a
variable after its first across the ordinary subgoals becomes a fresh
variable plus an ``=`` comparison, and every constant in an ordinary
subgoal becomes a fresh variable plus an ``=`` comparison.  The result is
logically equivalent to the input (the paper's "the fix is easy").

Head variables keep their first body occurrence so that head-to-head
mappings remain meaningful for non-0-ary heads.
"""

from __future__ import annotations

from repro.datalog.atoms import Atom, Comparison, ComparisonOp
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, FreshVariableFactory, Term, Variable
from repro.errors import NotApplicableError

__all__ = ["normalize_cqc", "is_normalized"]


def is_normalized(rule: Rule) -> bool:
    """True when *rule* already satisfies Theorem 5.1's preconditions."""
    seen: set[Variable] = set()
    for atom in rule.ordinary_subgoals:
        for term in atom.args:
            if isinstance(term, Constant):
                return False
            assert isinstance(term, Variable)
            if term in seen:
                return False
            seen.add(term)
    return True


def normalize_cqc(rule: Rule) -> Rule:
    """Rewrite *rule* so no variable repeats and no constant appears in its
    ordinary subgoals; repeated occurrences become fresh variables tied
    back with ``=`` comparisons.

    Raises :class:`~repro.errors.NotApplicableError` for rules with
    negated subgoals (Theorem 5.1 is about CQCs).
    """
    if rule.negations:
        raise NotApplicableError("normalization targets CQCs (no negated subgoals)")
    if is_normalized(rule):
        return rule

    factory = FreshVariableFactory(v.name for v in rule.variables())
    seen: set[Variable] = set()
    equalities: list[Comparison] = []
    new_subgoals: list[Atom] = []

    for atom in rule.ordinary_subgoals:
        new_args: list[Term] = []
        for term in atom.args:
            if isinstance(term, Constant):
                fresh = factory.fresh()
                equalities.append(Comparison(fresh, ComparisonOp.EQ, term))
                new_args.append(fresh)
            elif term in seen:
                fresh = factory.fresh(hint=f"{term.name}_")
                equalities.append(Comparison(term, ComparisonOp.EQ, fresh))
                new_args.append(fresh)
            else:
                seen.add(term)
                new_args.append(term)
        new_subgoals.append(Atom(atom.predicate, tuple(new_args)))

    body = tuple(new_subgoals) + tuple(equalities) + rule.comparisons
    return Rule(rule.head, body)
