"""Theorem 5.1: containment of conjunctive queries with comparisons (CQCs).

    Let C1 and C2 be CQCs.  Then C1 subseteq C2 iff H — the set of all
    containment mappings from O(C2) to O(C1) — is nonempty... and A(C1)
    logically implies  OR_{h in H} h(A(C2)).

(When H is empty the containment holds iff A(C1) is unsatisfiable; the
paper folds that into the two cases of the proof sketch, and
:func:`~repro.arith.implication.implies_disjunction` does the same: an
empty disjunction is implied only by an unsatisfiable base.)

The theorem requires the preconditions handled by
:mod:`repro.containment.normalize`; the public functions normalize both
sides first, so arbitrary CQCs are accepted (Example 5.2 shows why the
normalization is not optional).

The generalizations noted in the paper are provided too:

* containment of a CQC in a **union** of CQCs ("we must include
  containment mappings from any member of the union to C1") —
  :func:`is_contained_in_union_cqc`;
* non-0-ary heads work unchanged (the mapping enumerator already pins
  head onto head).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.arith.implication import implies_disjunction
from repro.containment.mappings import containment_mappings
from repro.containment.normalize import normalize_cqc
from repro.datalog.atoms import Comparison
from repro.datalog.rules import Rule
from repro.errors import NotApplicableError

__all__ = [
    "is_contained_cqc",
    "is_contained_in_union_cqc",
    "equivalent_cqc",
    "theorem51_certificate",
]


def _check_cqc(rule: Rule, role: str) -> None:
    if rule.negations:
        raise NotApplicableError(
            f"{role} has negated subgoals; Theorem 5.1 covers CQCs "
            f"(conjunctive queries with arithmetic comparisons) only"
        )


def _mapped_comparisons(mapping, comparisons: Sequence[Comparison]) -> list[Comparison]:
    return [mapping.apply_comparison(c) for c in comparisons]


def is_contained_in_union_cqc(c1: Rule, union: Iterable[Rule]) -> bool:
    """Decide ``C1 subseteq union(C2s)`` for CQCs via Theorem 5.1.

    This is the form the complete local test of Theorem 5.2 needs:
    Example 5.3 shows a CQC contained in a union of CQCs without being
    contained in any single member, so the disjunction over *all* members'
    mappings is essential.
    """
    _check_cqc(c1, "C1")
    members = tuple(union)
    for member in members:
        _check_cqc(member, "union member")

    n1 = normalize_cqc(c1)
    base = list(n1.comparisons)
    disjuncts: list[list[Comparison]] = []
    for member in members:
        n2 = normalize_cqc(member)
        for mapping in containment_mappings(n2, n1):
            disjuncts.append(_mapped_comparisons(mapping, n2.comparisons))
    return implies_disjunction(base, disjuncts)


def is_contained_cqc(c1: Rule, c2: Rule) -> bool:
    """Decide ``C1 subseteq C2`` for two CQCs (Theorem 5.1 proper)."""
    return is_contained_in_union_cqc(c1, (c2,))


def equivalent_cqc(c1: Rule, c2: Rule) -> bool:
    """CQC equivalence: containment both ways."""
    return is_contained_cqc(c1, c2) and is_contained_cqc(c2, c1)


def theorem51_certificate(c1: Rule, c2: Rule) -> dict:
    """An explainable record of the Theorem 5.1 test for ``C1 subseteq C2``.

    Returns a dict with the normalized queries, the containment mappings
    found, the implication's base and disjuncts, and the verdict — useful
    for teaching, debugging, and the worked examples in the test suite.
    """
    _check_cqc(c1, "C1")
    _check_cqc(c2, "C2")
    n1 = normalize_cqc(c1)
    n2 = normalize_cqc(c2)
    mappings = list(containment_mappings(n2, n1))
    disjuncts = [_mapped_comparisons(m, n2.comparisons) for m in mappings]
    base = list(n1.comparisons)
    return {
        "normalized_c1": n1,
        "normalized_c2": n2,
        "mappings": mappings,
        "base": base,
        "disjuncts": disjuncts,
        "contained": implies_disjunction(base, disjuncts),
    }
