"""Uniform containment of datalog programs (Sagiv [1988]).

The paper notes that "Theorem 5.1 is generalized to uniform containment
of recursive programs in Levy and Sagiv [1993]".  *Uniform* containment
``P ⊑ Q`` requires ``P(D) ⊆ Q(D)`` for every database D over **all**
predicates — EDB and IDB alike (D may already contain IDB facts).  It is:

* decidable (unlike plain containment of recursive programs, Shmueli
  [1987]), by a frozen-rule test due to Sagiv;
* *sound* for plain containment — ``P ⊑ Q`` implies ``P ⊆ Q`` — hence a
  sound (incomplete) subsumption check for recursive constraints, which
  is how :func:`uniform_subsumes` offers it.

The test: for every rule of P, freeze the rule's body (replace variables
by fresh constants, add the resulting facts to a database), run Q to
fixpoint on the frozen database, and require the frozen head to be
derived.  Comparison subgoals freeze to an arbitrary satisfying
assignment per consistent order type; we enumerate order types with the
machinery of :mod:`repro.containment.klug`, mirroring how Theorem 5.1
extends to comparisons.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import NotApplicableError
from repro.containment.klug import _blocks_to_assignment, _weak_orders
from repro.datalog.atoms import Comparison
from repro.datalog.database import Database
from repro.datalog.evaluation import Engine
from repro.datalog.rules import Program, Rule
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Variable
from repro.arith.order import comparison_holds

__all__ = ["is_uniformly_contained", "uniform_subsumes"]


def _comparisons_hold(comparisons: Iterable[Comparison], assignment) -> bool:
    for comparison in comparisons:
        left = (
            assignment[comparison.left]
            if isinstance(comparison.left, Variable)
            else comparison.left.value
        )
        right = (
            assignment[comparison.right]
            if isinstance(comparison.right, Variable)
            else comparison.right.value
        )
        if not comparison_holds(comparison.op, left, right):
            return False
    return True


def is_uniformly_contained(p: Program, q: Program) -> bool:
    """Decide ``P ⊑ Q`` (uniform containment).

    Negated subgoals are outside the method's scope (freezing is not
    sound for negation) and raise
    :class:`~repro.errors.NotApplicableError`.
    """
    for program in (p, q):
        for rule in program:
            if rule.negations:
                raise NotApplicableError(
                    "uniform containment is defined here for datalog "
                    "programs without negated subgoals"
                )
    q_engine = Engine(q)

    constants: set[Constant] = set()
    for program in (p, q):
        for rule in program:
            constants.update(rule.constants())
    constant_list = sorted(constants, key=lambda c: repr(c.value))

    for rule in p.rules:
        variables = sorted(rule.variables(), key=lambda v: v.name)
        # One frozen database per consistent order type of the rule's
        # variables (a single freeze suffices without comparisons).
        produced_any = False
        for blocks in _weak_orders(variables, constant_list):
            assignment = _blocks_to_assignment(blocks)
            if not _comparisons_hold(rule.comparisons, assignment):
                continue
            produced_any = True
            subst = Substitution(
                {var: Constant(val) for var, val in assignment.items()}
            )
            frozen = rule.substitute(subst)
            db = Database()
            for atom in frozen.positive_atoms:
                db.insert(
                    atom.predicate,
                    tuple(term.value for term in atom.args),  # type: ignore[union-attr]
                )
            head_fact = tuple(term.value for term in frozen.head.args)  # type: ignore[union-attr]
            derived = q_engine.evaluate_predicate(db, frozen.head.predicate)
            if head_fact not in derived and not db.contains(
                frozen.head.predicate, head_fact
            ):
                return False
        # A rule whose comparisons are unsatisfiable derives nothing and
        # constrains nothing; produced_any False is fine.
        del produced_any
    return True


def uniform_subsumes(candidates: Iterable, target) -> bool:
    """A *sound* subsumption check for recursive constraints.

    True means the candidates' union uniformly contains the target
    constraint's program, which implies ordinary containment and hence
    subsumption (Theorem 3.1).  False means "could not prove it" — NOT
    that subsumption fails (use
    :func:`~repro.constraints.subsumption.refute_subsumption_by_sampling`
    for the other direction).

    Accepts :class:`~repro.constraints.constraint.Constraint` objects;
    the candidates' programs are merged into one (their rule sets are
    disjoint apart from ``panic``, whose union is exactly the union
    constraint of Theorem 3.1; helper predicates are renamed apart).
    """
    target_program = target.program
    merged_rules: list[Rule] = []
    # Candidate IDB predicates must keep their names — when a candidate
    # shares the target's auxiliary predicates (same definitions), the
    # frozen facts of the target's rules feed the candidate's rules,
    # which is what makes the check useful.  Only clashes BETWEEN
    # candidates are renamed apart (mixing two candidates' definitions
    # of one predicate would compute more than their union — unsound).
    idb_taken: set[str] = set()
    for index, candidate in enumerate(candidates):
        program = candidate.program
        rename = {
            pred: f"{pred}__u{index}"
            for pred in program.idb_predicates()
            if pred != "panic" and pred in idb_taken
        }
        for old, new in rename.items():
            program = program.rename_predicate(old, new)
        idb_taken.update(program.idb_predicates() - {"panic"})
        merged_rules.extend(program.rules)
    union_program = Program(tuple(merged_rules))
    try:
        return is_uniformly_contained(target_program, union_program)
    except NotApplicableError:
        return False
