"""Klug's containment test for CQCs — the baseline Theorem 5.1 competes with.

Klug [1988]: ``C1 subseteq C2`` iff **every** total (weak) order of C1's
terms consistent with A(C1) yields a canonical database on which C2 fires.
"In the worst case [this] requires an exponential number of tests, each of
which could take exponential time" (Section 5, *Comparison With Klug's
Approach*); the number of weak orders is the Fubini number of the variable
count, which is what the T5.1 benchmark sweeps.

Besides serving as the baseline, this module is the library's independent
*oracle*: it needs no normalization and no containment-mapping machinery,
so the property tests cross-check Theorem 5.1 against it.

The enumeration places every variable of C1 relative to all constants
appearing in either query (comparisons against C2's constants can decide
containment, so they must participate in the order).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.arith.order import sort_key
from repro.arith.solver import ComparisonSystem
from repro.datalog.atoms import Comparison, ComparisonOp
from repro.datalog.database import Database
from repro.datalog.evaluation import Engine
from repro.datalog.rules import Program, Rule
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Term, Variable
from repro.errors import NotApplicableError

__all__ = ["is_contained_klug", "canonical_databases", "count_weak_orders"]

_Block = tuple[Term, ...]


def _weak_orders(
    variables: Sequence[Variable], constants: Sequence[Constant]
) -> Iterator[list[_Block]]:
    """All ordered partitions of ``variables`` merged around the fixed
    constant blocks, each yielded exactly once.

    Constants occupy singleton blocks in their ground-truth order; each
    variable is inserted either into an existing block (equality) or into
    a gap (strictly between neighbours).
    """
    base: list[_Block] = [
        (c,) for c in sorted(set(constants), key=lambda c: sort_key(c.value))
    ]

    def insert(index: int, blocks: list[_Block]) -> Iterator[list[_Block]]:
        if index == len(variables):
            yield blocks
            return
        var = variables[index]
        for i, block in enumerate(blocks):
            joined = blocks[:i] + [block + (var,)] + blocks[i + 1:]
            yield from insert(index + 1, joined)
        for gap in range(len(blocks) + 1):
            split = blocks[:gap] + [(var,)] + blocks[gap:]
            yield from insert(index + 1, split)

    yield from insert(0, base)


def count_weak_orders(num_variables: int, num_constants: int = 0) -> int:
    """Size of the order space Klug's test enumerates (for the benches)."""
    def insert(remaining: int, block_count: int) -> int:
        if remaining == 0:
            return 1
        # join any existing block, or open any of the block_count+1 gaps
        joins = block_count * insert(remaining - 1, block_count)
        splits = (block_count + 1) * insert(remaining - 1, block_count + 1)
        return joins + splits

    return insert(num_variables, num_constants)


def _order_consistent(blocks: list[_Block], comparisons: Iterable[Comparison]) -> bool:
    index: dict[Term, int] = {}
    for i, block in enumerate(blocks):
        for term in block:
            index[term] = i

    for comparison in comparisons:
        li = index[comparison.left] if comparison.left in index else None
        ri = index[comparison.right] if comparison.right in index else None
        assert li is not None and ri is not None, "term missing from order"
        op = comparison.op
        if op is ComparisonOp.LT and not li < ri:
            return False
        if op is ComparisonOp.LE and not li <= ri:
            return False
        if op is ComparisonOp.GT and not li > ri:
            return False
        if op is ComparisonOp.GE and not li >= ri:
            return False
        if op is ComparisonOp.EQ and li != ri:
            return False
        if op is ComparisonOp.NE and li == ri:
            return False
    return True


def _blocks_to_assignment(blocks: list[_Block]) -> dict[Variable, object]:
    """Realize a weak order with concrete values of the dense domain."""
    pinned: dict[int, object] = {}
    for i, block in enumerate(blocks):
        for term in block:
            if isinstance(term, Constant):
                pinned[i] = term.value
                break
    order = list(range(len(blocks)))
    values = ComparisonSystem._assign_values(order, pinned)
    assignment: dict[Variable, object] = {}
    for i, block in enumerate(blocks):
        for term in block:
            if isinstance(term, Variable):
                assignment[term] = values[i]
    return assignment


def _collect_constants(rules: Iterable[Rule]) -> list[Constant]:
    result: set[Constant] = set()
    for rule in rules:
        result.update(rule.constants())
    return list(result)


def canonical_databases(
    c1: Rule, extra_constants: Iterable[Constant] = ()
) -> Iterator[tuple[Database, dict[Variable, object]]]:
    """Yield Klug's canonical databases of *c1*: one per consistent weak
    order of its terms (plus *extra_constants* from the other side).

    Each item is ``(database, assignment)``; the database freezes the
    ordinary subgoals of *c1* under the assignment, so *c1* fires on it by
    construction.
    """
    if c1.negations:
        raise NotApplicableError("Klug's test covers CQCs (no negated subgoals)")
    variables = sorted(c1.variables(), key=lambda v: v.name)
    constants = _collect_constants((c1,)) + list(extra_constants)
    for blocks in _weak_orders(variables, constants):
        if not _order_consistent(blocks, c1.comparisons):
            continue
        assignment = _blocks_to_assignment(blocks)
        subst = Substitution({var: Constant(val) for var, val in assignment.items()})
        db = Database()
        for atom in c1.ordinary_subgoals:
            ground = subst.apply_atom(atom)
            db.insert(ground.predicate, tuple(
                term.value for term in ground.args  # type: ignore[union-attr]
            ))
        yield db, assignment


def is_contained_klug(c1: Rule, c2_or_union: Rule | Iterable[Rule]) -> bool:
    """Decide ``C1 subseteq C2`` (or a union) by canonical-database
    enumeration.  Exact, but exponential in the number of variables of C1.
    """
    members: tuple[Rule, ...]
    if isinstance(c2_or_union, Rule):
        members = (c2_or_union,)
    else:
        members = tuple(c2_or_union)
    for member in members:
        if member.negations:
            raise NotApplicableError("Klug's test covers CQCs (no negated subgoals)")
    if c1.negations:
        raise NotApplicableError("Klug's test covers CQCs (no negated subgoals)")

    engines = [Engine(Program((member,))) for member in members]
    extra = _collect_constants(members)

    for db, assignment in canonical_databases(c1, extra):
        # The canonical fact C1 derives on this database.
        head_fact = tuple(
            assignment[t] if isinstance(t, Variable) else t.value for t in c1.head.args
        )
        produced = False
        for member, engine in zip(members, engines):
            if member.head.predicate != c1.head.predicate:
                continue
            if head_fact in engine.evaluate_predicate(db, member.head.predicate):
                produced = True
                break
        if not produced:
            return False
    return True
