"""Query containment: mappings, CQ/UCQ tests, Theorem 5.1, Klug baseline."""

from repro.containment.cq import (
    equivalent_cq,
    is_contained_cq,
    is_contained_in_union_cq,
    union_contained_in_union_cq,
)
from repro.containment.cqc import (
    equivalent_cqc,
    is_contained_cqc,
    is_contained_in_union_cqc,
    theorem51_certificate,
)
from repro.containment.klug import (
    canonical_databases,
    count_weak_orders,
    is_contained_klug,
)
from repro.containment.mappings import (
    containment_mappings,
    count_containment_mappings,
    has_containment_mapping,
)
from repro.containment.minimize import is_minimal_cq, minimize_cq
from repro.containment.normalize import is_normalized, normalize_cqc
from repro.containment.uniform import is_uniformly_contained, uniform_subsumes

__all__ = [
    "canonical_databases",
    "containment_mappings",
    "count_containment_mappings",
    "count_weak_orders",
    "equivalent_cq",
    "equivalent_cqc",
    "has_containment_mapping",
    "is_contained_cq",
    "is_contained_cqc",
    "is_contained_in_union_cq",
    "is_contained_in_union_cqc",
    "is_contained_klug",
    "is_minimal_cq",
    "is_normalized",
    "is_uniformly_contained",
    "minimize_cq",
    "normalize_cqc",
    "theorem51_certificate",
    "uniform_subsumes",
    "union_contained_in_union_cq",
]
