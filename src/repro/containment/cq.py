"""Containment for plain conjunctive queries and unions of CQs.

* Chandra and Merlin [1977]: ``Q1 subseteq Q2`` iff there is a containment
  mapping from Q2 to Q1 (NP-complete, but "constraints tend to be short").
* Sagiv and Yannakakis [1981]: a CQ is contained in a *union* of CQs iff
  it is contained in a single member — a property that **fails** once
  arithmetic comparisons are allowed (Example 5.3's forbidden intervals),
  which is exactly why Section 5 needs Theorem 5.1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import NotApplicableError
from repro.datalog.rules import Rule
from repro.containment.mappings import has_containment_mapping

__all__ = [
    "is_contained_cq",
    "is_contained_in_union_cq",
    "union_contained_in_union_cq",
    "equivalent_cq",
]


def _require_plain_cq(rule: Rule, role: str) -> None:
    if rule.negations:
        raise NotApplicableError(f"{role} has negated subgoals; the mapping test "
                                 f"applies to plain CQs")
    if rule.comparisons:
        raise NotApplicableError(f"{role} has arithmetic comparisons; use the "
                                 f"Theorem 5.1 test in repro.containment.cqc")


def is_contained_cq(q1: Rule, q2: Rule) -> bool:
    """Decide ``Q1 subseteq Q2`` for plain CQs (Chandra–Merlin)."""
    _require_plain_cq(q1, "Q1")
    _require_plain_cq(q2, "Q2")
    return has_containment_mapping(q2, q1)


def is_contained_in_union_cq(q1: Rule, union: Iterable[Rule]) -> bool:
    """Decide ``Q1 subseteq union(Q2s)`` for plain CQs.

    By Sagiv–Yannakakis this reduces to a per-member check; the union
    structure adds nothing in the arithmetic-free case.
    """
    _require_plain_cq(q1, "Q1")
    members: Sequence[Rule] = tuple(union)
    for member in members:
        _require_plain_cq(member, "union member")
    return any(has_containment_mapping(member, q1) for member in members)


def union_contained_in_union_cq(union1: Iterable[Rule], union2: Iterable[Rule]) -> bool:
    """Decide containment of unions of CQs: every member of the left-hand
    union must be contained in the right-hand union."""
    members2 = tuple(union2)
    return all(is_contained_in_union_cq(q, members2) for q in union1)


def equivalent_cq(q1: Rule, q2: Rule) -> bool:
    """Decide CQ equivalence (containment both ways)."""
    return is_contained_cq(q1, q2) and is_contained_cq(q2, q1)
