"""Containment for conjunctive queries with negation (and comparisons).

The paper relies on Levy and Sagiv [1993] for queries with negation (the
containment check of Example 4.1 is "the methods of Levy and Sagiv
suffice").  This module implements a sound and complete decision
procedure for containment of a CQ-with-negation in a union of
CQs-with-negation, *including arithmetic comparisons*, in the
canonical-database style of that line of work:

1. Enumerate the order types of Q1's variables: weak orders of the
   variables merged around the constants of all queries (the same
   enumeration Klug's test uses, :mod:`repro.containment.klug`), realized
   with concrete values of the dense domain.  Discard assignments that
   falsify Q1's own comparisons.
2. For each assignment theta, freeze Q1's positive subgoals into a base
   database D0; theta is viable when none of Q1's frozen negated subgoals
   lands in D0.
3. Q1 is **not** contained iff for some viable theta an adversary can add
   extra facts S over the frozen active domain such that no union member
   derives theta(head(Q1)) on D0 ∪ S — S must avoid Q1's frozen negated
   facts.  A restriction argument shows the active domain suffices: any
   member firing over D0 ∪ S binds its variables to active-domain values,
   and the facts that could block such a firing lie in the active domain
   too; comparison truth depends only on the order type, which step 1
   fixed.

Step 3 runs as a *blocking-set search*: find a member firing that would
produce the head fact; to survive, the adversary must add one of that
firing's negated facts (never one of Q1's forbidden facts); branch over
the choices and repeat.  Joins run against the actual fact set, so the
common cases (no firing at all, or a short blocking chain) cost little;
the worst case is exponential, as it must be — containment with negation
is Pi^p_2-complete even without comparisons.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.arith.order import comparison_holds
from repro.containment.klug import _blocks_to_assignment, _weak_orders
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.database import Database
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

__all__ = [
    "is_contained_with_negation",
    "negation_counterexample",
]

_FactKey = tuple  # (predicate, fact-tuple)


def _comparisons_hold(
    comparisons: Sequence[Comparison], assignment: dict[Variable, object]
) -> bool:
    for comparison in comparisons:
        left = (
            assignment[comparison.left]
            if isinstance(comparison.left, Variable)
            else comparison.left.value
        )
        right = (
            assignment[comparison.right]
            if isinstance(comparison.right, Variable)
            else comparison.right.value
        )
        if not comparison_holds(comparison.op, left, right):
            return False
    return True


def _theta_assignments(
    q1: Rule, constants: Sequence[Constant]
) -> Iterator[dict[Variable, object]]:
    """Realized order types: one satisfying assignment per weak order of
    Q1's variables relative to each other and to the known constants."""
    variables = sorted(q1.variables(), key=lambda v: v.name)
    for blocks in _weak_orders(variables, constants):
        yield _blocks_to_assignment(blocks)


def _freeze(atom: Atom, assignment: dict[Variable, object]) -> tuple:
    return tuple(
        assignment[t] if isinstance(t, Variable) else t.value for t in atom.args
    )


class _Firing:
    """A potential member firing: its blocking options."""

    __slots__ = ("blockers",)

    def __init__(self, blockers: tuple[_FactKey, ...]) -> None:
        self.blockers = blockers


def _find_firing(
    members: Sequence[Rule],
    head_predicate: str,
    head_fact: tuple,
    facts: dict[str, set[tuple]],
    forbidden: set[_FactKey],
) -> Optional[_Firing]:
    """Find one firing of some member on the current fact set that would
    produce *head_fact*, returning its (allowed) blocking options.

    Returns ``None`` when no member fires — the adversary has won.
    Positives join against the actual facts; comparisons and negations
    check under the assignment.
    """
    for member in members:
        if member.head.predicate != head_predicate:
            continue
        if member.head.arity != len(head_fact):
            continue
        seed: dict[Variable, object] = {}
        ok = True
        for term, value in zip(member.head.args, head_fact):
            if isinstance(term, Constant):
                if term.value != value:
                    ok = False
                    break
            else:
                if seed.get(term, value) != value:
                    ok = False
                    break
                seed[term] = value
        if not ok:
            continue

        positives = member.positive_atoms
        comparisons = member.comparisons
        negations = member.negations

        stack: list[tuple[int, dict[Variable, object]]] = [(0, seed)]
        while stack:
            index, assignment = stack.pop()
            if index == len(positives):
                if not _comparisons_hold(comparisons, assignment):
                    continue
                blockers: list[_FactKey] = []
                fired = True
                for negation in negations:
                    fact = _freeze(negation.atom, assignment)
                    if fact in facts.get(negation.predicate, ()):
                        fired = False  # already blocked
                        break
                    key = (negation.predicate, fact)
                    if key not in forbidden:
                        blockers.append(key)
                if fired:
                    return _Firing(tuple(blockers))
                continue
            atom = positives[index]
            for fact in facts.get(atom.predicate, ()):
                if len(fact) != atom.arity:
                    continue
                extended = dict(assignment)
                match = True
                for term, value in zip(atom.args, fact):
                    if isinstance(term, Constant):
                        if term.value != value:
                            match = False
                            break
                    else:
                        bound = extended.get(term)
                        if bound is None:
                            extended[term] = value
                        elif bound != value:
                            match = False
                            break
                if match:
                    stack.append((index + 1, extended))
    return None


def _adversary_search(
    members: Sequence[Rule],
    head_predicate: str,
    head_fact: tuple,
    facts: dict[str, set[tuple]],
    forbidden: set[_FactKey],
    failed: set[frozenset],
    signature: frozenset,
) -> Optional[dict[str, set[tuple]]]:
    """Depth-first search for a fact set on which no member produces the
    head fact.  Returns the winning fact set, or ``None``."""
    if signature in failed:
        return None
    firing = _find_firing(members, head_predicate, head_fact, facts, forbidden)
    if firing is None:
        return facts
    for pred, fact in firing.blockers:
        extended = {p: set(fs) for p, fs in facts.items()}
        extended.setdefault(pred, set()).add(fact)
        result = _adversary_search(
            members,
            head_predicate,
            head_fact,
            extended,
            forbidden,
            failed,
            signature | {(pred, fact)},
        )
        if result is not None:
            return result
    failed.add(signature)
    return None


def negation_counterexample(
    q1: Rule, union: Iterable[Rule]
) -> Optional[Database]:
    """A database where *q1* produces a head fact no union member produces,
    or ``None`` when ``q1 subseteq union``."""
    members = tuple(union)

    constants: set[Constant] = set(q1.constants())
    for member in members:
        constants.update(member.constants())
    constant_list = sorted(constants, key=lambda c: repr(c.value))

    for assignment in _theta_assignments(q1, constant_list):
        if not _comparisons_hold(q1.comparisons, assignment):
            continue  # theta contradicts Q1's own comparison subgoals
        base: dict[str, set[tuple]] = {}
        for atom in q1.positive_atoms:
            base.setdefault(atom.predicate, set()).add(_freeze(atom, assignment))
        forbidden: set[_FactKey] = {
            (neg.predicate, _freeze(neg.atom, assignment))
            for neg in q1.negations
        }
        if any(fact in base.get(pred, ()) for pred, fact in forbidden):
            continue  # theta cannot make Q1 fire
        head_fact = _freeze(q1.head, assignment)

        winning = _adversary_search(
            members,
            q1.head.predicate,
            head_fact,
            base,
            forbidden,
            failed=set(),
            signature=frozenset(),
        )
        if winning is not None:
            db = Database()
            for pred, facts in winning.items():
                for fact in facts:
                    db.insert(pred, fact)
            return db
    return None


def is_contained_with_negation(q1: Rule, union: Iterable[Rule]) -> bool:
    """Decide ``Q1 subseteq union`` for CQs with negation and comparisons."""
    return negation_counterexample(q1, union) is None
