"""Containment-mapping (homomorphism) enumeration.

A *containment mapping* from query Q2 to query Q1 (Ullman [1989]; Chandra
and Merlin [1977]) maps the variables of Q2 to terms of Q1 so that

* the head of Q2 maps onto the head of Q1, and
* every ordinary subgoal of Q2 maps onto some ordinary subgoal of Q1.

The existence of such a mapping witnesses ``Q1 subseteq Q2`` for plain
CQs; Theorem 5.1 needs the *set* of all mappings, so the enumerator is a
generator.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import NotApplicableError
from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.substitution import Substitution, unify_terms

__all__ = ["containment_mappings", "has_containment_mapping", "count_containment_mappings"]


def _head_seed(src: Rule, dst: Rule) -> Optional[Substitution]:
    """Substitution forced by mapping src's head onto dst's head, if any."""
    if src.head.predicate != dst.head.predicate:
        return None
    if src.head.arity != dst.head.arity:
        return None
    return unify_terms(src.head.args, dst.head.args)


def containment_mappings(src: Rule, dst: Rule) -> Iterator[Substitution]:
    """Yield every containment mapping from *src* to *dst*.

    Only the *ordinary* subgoals participate; comparison subgoals are the
    business of Theorem 5.1 and are handled by the caller.  Negated
    subgoals are not supported (the Levy–Sagiv machinery for those is out
    of scope of the mapping test) and raise
    :class:`~repro.errors.NotApplicableError`.
    """
    if src.negations or dst.negations:
        raise NotApplicableError(
            "containment mappings are defined for queries without negated subgoals"
        )
    seed = _head_seed(src, dst)
    if seed is None:
        return

    src_goals: Sequence[Atom] = src.ordinary_subgoals
    dst_goals: Sequence[Atom] = dst.ordinary_subgoals

    # Candidate targets per source subgoal, by predicate and arity.
    candidates: list[list[Atom]] = []
    for goal in src_goals:
        matches = [
            atom
            for atom in dst_goals
            if atom.predicate == goal.predicate and atom.arity == goal.arity
        ]
        if not matches:
            return  # some predicate of src is absent from dst: no mappings
        candidates.append(matches)

    # Most-constrained-first: fewer candidates earlier prunes faster.
    order = sorted(range(len(src_goals)), key=lambda i: len(candidates[i]))

    def extend(position: int, subst: Substitution) -> Iterator[Substitution]:
        if position == len(order):
            yield subst
            return
        index = order[position]
        goal = src_goals[index]
        for target in candidates[index]:
            extended = unify_terms(goal.args, target.args, subst)
            if extended is not None:
                yield from extend(position + 1, extended)

    yield from extend(0, seed)


def has_containment_mapping(src: Rule, dst: Rule) -> bool:
    """True when at least one containment mapping from *src* to *dst* exists."""
    return next(containment_mappings(src, dst), None) is not None


def count_containment_mappings(src: Rule, dst: Rule) -> int:
    """The size of the set H of Theorem 5.1 (may be exponential)."""
    return sum(1 for _ in containment_mappings(src, dst))
