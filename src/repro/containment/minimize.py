"""Conjunctive-query minimization (cores).

Chandra and Merlin [1977]: every CQ has a unique (up to renaming) minimal
equivalent subquery, obtained by repeatedly dropping subgoals that a
self-containment-mapping can fold away.  Minimization is not itself a
result of the paper, but smaller constraints mean fewer containment
mappings in Theorem 5.1's set H, so the checker applies it as a
preprocessing step; it is also independently useful to library users.
"""

from __future__ import annotations

from repro.containment.mappings import has_containment_mapping
from repro.datalog.rules import Rule
from repro.errors import NotApplicableError

__all__ = ["minimize_cq", "is_minimal_cq"]


def _require_plain(rule: Rule) -> None:
    if rule.negations or rule.comparisons:
        raise NotApplicableError(
            "minimization is implemented for plain CQs (no negation, no arithmetic)"
        )


def minimize_cq(rule: Rule) -> Rule:
    """Return the core of *rule*: an equivalent CQ with a minimal body.

    Greedy subgoal removal: dropping subgoal g is sound when the smaller
    query still contains the original (the reverse containment is free,
    since the smaller body is a subset).  Each candidate check is one
    containment-mapping test.
    """
    _require_plain(rule)
    current = rule
    changed = True
    while changed:
        changed = False
        subgoals = current.ordinary_subgoals
        if len(subgoals) <= 1:
            break
        for i in range(len(subgoals)):
            candidate_body = subgoals[:i] + subgoals[i + 1:]
            candidate = Rule(current.head, candidate_body)
            # Head variables must survive in the body for the candidate to
            # be a well-formed (safe) query.
            head_vars = set(current.head.variables())
            body_vars = {v for atom in candidate_body for v in atom.variables()}
            if not head_vars <= body_vars:
                continue
            # candidate ⊆ current always (fewer conjuncts is weaker... the
            # subgoal set is smaller so the query is *less* restrictive);
            # the direction that needs checking is current ⊇ candidate:
            # i.e. candidate must not produce anything current does not.
            if has_containment_mapping(current, candidate):
                current = candidate
                changed = True
                break
    return current


def is_minimal_cq(rule: Rule) -> bool:
    """True when no proper subquery of *rule* is equivalent to it."""
    return minimize_cq(rule) == rule
