"""The Fig. 2.1 lattice: twelve classes of constraint languages.

The paper organizes constraint languages along three axes:

* **shape** — one CQ, union of CQs (== nonrecursive datalog), or
  recursive datalog;
* **negated subgoals** — allowed or not;
* **arithmetic comparisons** — allowed or not.

"There are actually 12 combinations of features, organized as suggested
in Fig. 2.1."  This module defines the lattice, a classifier that places
any constraint program into its *least* class, and the partial order used
by the closure results of Section 4 (Figs. 4.1/4.2).

Beyond the language lattice, the module also classifies constraints by
*site footprint*: in an N-site federation each non-local predicate is
stored at exactly one remote site, so the minimal set of sites whose
data can settle a constraint is simply the owners of its non-local
predicates (:func:`minimal_site_needs`).  Minimality is exact under
partitioned storage — any smaller site set is missing a relation the
constraint reads (its level-3 check would have to treat that relation
as unknown), and any larger set fetches data the check never consults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Optional, Union

from repro.datalog.rules import Program, Rule

__all__ = [
    "Shape",
    "ConstraintClass",
    "classify_program",
    "classify_rule",
    "ALL_CLASSES",
    "DEFAULT_REMOTE_SITE",
    "minimal_site_needs",
    "group_predicates_by_site",
]

#: Site name assumed for a non-local predicate with no declared owner —
#: the two-site special case, where everything off-site lives at "the"
#: remote.
DEFAULT_REMOTE_SITE = "remote"

#: A predicate-to-site placement: a callable or mapping yielding the
#: owning remote site's name, or ``None`` for a local predicate.
SitePlacement = Union[Callable[[str], Optional[str]], Mapping[str, str], None]


def _owner(site_of: SitePlacement, predicate: str) -> Optional[str]:
    if site_of is None:
        return None
    if callable(site_of):
        return site_of(predicate)
    return site_of.get(predicate)


def minimal_site_needs(
    predicates: Iterable[str],
    local_predicates: Iterable[str],
    site_of: SitePlacement = None,
    default_site: str = DEFAULT_REMOTE_SITE,
) -> frozenset[str]:
    """The minimal set of remote sites whose data can settle a constraint
    reading *predicates*.

    Under partitioned storage each non-local predicate has exactly one
    owner, so the minimal settling set is the image of the constraint's
    non-local predicates under *site_of*.  A predicate the placement does
    not know (``site_of`` is ``None`` or returns ``None``) is charged to
    *default_site* — the two-site degenerate case.  An empty result means
    the constraint is purely local and never escalates.
    """
    local = (
        local_predicates
        if isinstance(local_predicates, (set, frozenset))
        else frozenset(local_predicates)
    )
    needs = set()
    for predicate in predicates:
        if predicate in local:
            continue
        needs.add(_owner(site_of, predicate) or default_site)
    return frozenset(needs)


def group_predicates_by_site(
    predicates: Iterable[str],
    site_of: SitePlacement = None,
    default_site: str = DEFAULT_REMOTE_SITE,
) -> dict[str, set[str]]:
    """Group (already non-local) *predicates* by their owning site — the
    fan-out plan of a federated escalation fetch."""
    groups: dict[str, set[str]] = {}
    for predicate in predicates:
        site = _owner(site_of, predicate) or default_site
        groups.setdefault(site, set()).add(predicate)
    return groups


class Shape(enum.IntEnum):
    """The structural axis of Fig. 2.1, ordered by expressiveness."""

    SINGLE_CQ = 0
    UNION_OF_CQS = 1
    RECURSIVE_DATALOG = 2

    def __str__(self) -> str:
        return {
            Shape.SINGLE_CQ: "one CQ",
            Shape.UNION_OF_CQS: "union of CQs",
            Shape.RECURSIVE_DATALOG: "recursive datalog",
        }[self]


@dataclass(frozen=True, slots=True, order=False)
class ConstraintClass:
    """One of the twelve language classes of Fig. 2.1."""

    shape: Shape
    negation: bool
    arithmetic: bool

    @property
    def name(self) -> str:
        base = {
            Shape.SINGLE_CQ: "CQ",
            Shape.UNION_OF_CQS: "UCQ",
            Shape.RECURSIVE_DATALOG: "Datalog",
        }[self.shape]
        suffix = ""
        if self.negation:
            suffix += "+neg"
        if self.arithmetic:
            suffix += "+arith"
        return base + suffix

    def __str__(self) -> str:
        return self.name

    def is_subclass_of(self, other: "ConstraintClass") -> bool:
        """Lattice order: every query of self is expressible in other."""
        return (
            self.shape <= other.shape
            and self.negation <= other.negation
            and self.arithmetic <= other.arithmetic
        )

    def join(self, other: "ConstraintClass") -> "ConstraintClass":
        """Least upper bound in the lattice."""
        return ConstraintClass(
            Shape(max(self.shape, other.shape)),
            self.negation or other.negation,
            self.arithmetic or other.arithmetic,
        )

    @property
    def is_plain_cq(self) -> bool:
        return self.shape is Shape.SINGLE_CQ and not self.negation and not self.arithmetic

    @property
    def is_cqc(self) -> bool:
        """A conjunctive query with (only) arithmetic: the Section 5 class."""
        return self.shape is Shape.SINGLE_CQ and not self.negation


def _all_classes() -> tuple[ConstraintClass, ...]:
    return tuple(
        ConstraintClass(shape, negation, arithmetic)
        for shape in Shape
        for negation in (False, True)
        for arithmetic in (False, True)
    )


#: The twelve classes, in lattice-compatible order.
ALL_CLASSES: tuple[ConstraintClass, ...] = _all_classes()


def classify_rule(rule: Rule) -> ConstraintClass:
    """The least class containing a single rule viewed as a query."""
    return ConstraintClass(
        Shape.SINGLE_CQ,
        negation=rule.has_negation,
        arithmetic=rule.has_comparisons,
    )


def classify_program(program: Program) -> ConstraintClass:
    """The least Fig. 2.1 class containing *program*.

    A single rule whose body mentions only EDB predicates is ``one CQ``;
    any nonrecursive program with intermediate predicates or multiple
    rules is a ``union of CQs`` (their equivalence is Sagiv–Yannakakis);
    recursion lifts to ``recursive datalog``.
    """
    if program.is_recursive():
        shape = Shape.RECURSIVE_DATALOG
    elif len(program.rules) == 1 and not program.idb_predicates() & {
        pred for rule in program for pred in rule.body_predicates()
    }:
        shape = Shape.SINGLE_CQ
    else:
        shape = Shape.UNION_OF_CQS
    return ConstraintClass(
        shape,
        negation=program.has_negation,
        arithmetic=program.has_comparisons,
    )


def iter_subclasses(cls: ConstraintClass) -> Iterator[ConstraintClass]:
    """All classes below-or-equal in the lattice."""
    for candidate in ALL_CLASSES:
        if candidate.is_subclass_of(cls):
            yield candidate
