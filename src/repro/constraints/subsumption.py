"""Constraint subsumption (Section 3).

Theorem 3.1: a set C = {C1,...,Cn} subsumes a constraint C iff, viewed as
programs, ``C subseteq C1 union ... union Cn``.  Subsumption is therefore
"a special case of containment of programs", and this module dispatches
to the right containment machinery by language class:

============================  ==========================================
both sides' class             decision procedure
============================  ==========================================
unions of CQs                 Sagiv–Yannakakis via per-disjunct mappings
CQCs / unions with arithmetic Theorem 5.1 (repro.containment.cqc)
negation (± comparisons)      canonical order types + blocking search
                              (Levy–Sagiv style; repro.containment.negation)
recursion on either side      UndecidableError (Shmueli [1987]) — use
                              :func:`refute_subsumption_by_sampling`
============================  ==========================================

Theorem 3.2's reduction (query containment -> constraint subsumption by
moving the head into the body) is :func:`containment_as_subsumption`.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.errors import NotApplicableError, UndecidableError, UnsupportedClassError
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.rules import Program, Rule
from repro.containment.cq import is_contained_in_union_cq
from repro.containment.cqc import is_contained_in_union_cqc
from repro.containment.negation import is_contained_with_negation
from repro.constraints.constraint import Constraint

__all__ = [
    "subsumes",
    "refute_subsumption_by_sampling",
    "containment_as_subsumption",
    "cq_containment_via_subsumption",
]


def _union_form(constraint: Constraint) -> list[Rule]:
    if constraint.constraint_class.shape.name == "RECURSIVE_DATALOG":
        raise UndecidableError(
            f"constraint {constraint.name!r} is recursive: subsumption with "
            f"recursive constraints is undecidable (Shmueli [1987]); use "
            f"refute_subsumption_by_sampling for a sound refutation check"
        )
    try:
        return constraint.as_union()
    except NotApplicableError as exc:
        raise UnsupportedClassError(
            f"constraint {constraint.name!r} cannot be put in union-of-CQs "
            f"form: {exc}"
        ) from exc


def _has_negation(rules: Iterable[Rule]) -> bool:
    return any(rule.negations for rule in rules)


def subsumes(candidates: Sequence[Constraint] | Iterable[Constraint], target: Constraint) -> bool:
    """Theorem 3.1: do *candidates* subsume *target*?

    True means: whenever *target* is violated, some candidate is violated
    too — so *target* never needs to be checked while the candidates are
    maintained.
    """
    candidate_list = list(candidates)
    target_union = _union_form(target)
    member_rules: list[Rule] = []
    for candidate in candidate_list:
        member_rules.extend(_union_form(candidate))

    all_rules = target_union + member_rules
    negation = _has_negation(all_rules)
    arithmetic = any(rule.comparisons for rule in all_rules)

    if negation:
        # The Levy–Sagiv-style canonical-database test handles negation
        # with or without comparisons (order types are enumerated).
        return all(
            is_contained_with_negation(disjunct, member_rules)
            for disjunct in target_union
        )
    if not arithmetic:
        # Plain CQs: the direct mapping test keeps the join structure,
        # which prunes the search enormously; the Theorem 5.1 route would
        # first normalize variables apart and enumerate every subgoal
        # assignment as a candidate mapping.
        return all(
            is_contained_in_union_cq(disjunct, member_rules)
            for disjunct in target_union
        )
    # Theorem 5.1 for the arithmetic case.
    return all(
        is_contained_in_union_cqc(disjunct, member_rules)
        for disjunct in target_union
    )


def refute_subsumption_by_sampling(
    candidates: Sequence[Constraint],
    target: Constraint,
    trials: int = 200,
    domain_size: int = 4,
    max_facts: int = 12,
    seed: int = 0,
) -> Optional[Database]:
    """Search random small databases for a witness of *non*-subsumption.

    Returns a database violating *target* while satisfying every
    candidate, or ``None`` when no witness was found.  Sound in one
    direction only: a ``None`` result does **not** prove subsumption.
    Works for every constraint class, including recursive datalog, since
    it only evaluates.
    """
    rng = random.Random(seed)
    predicates: dict[str, int] = {}
    for constraint in list(candidates) + [target]:
        program = constraint.program
        idb = program.idb_predicates()
        for rule in program:
            for literal in rule.body:
                if isinstance(literal, Atom) and literal.predicate not in idb:
                    predicates[literal.predicate] = literal.arity
                elif hasattr(literal, "atom") and literal.atom.predicate not in idb:
                    predicates[literal.atom.predicate] = literal.atom.arity

    for _ in range(trials):
        db = Database()
        num_facts = rng.randint(1, max_facts)
        names = sorted(predicates)
        for _ in range(num_facts):
            pred = rng.choice(names)
            fact = tuple(rng.randrange(domain_size) for _ in range(predicates[pred]))
            db.insert(pred, fact)
        if target.is_violated(db) and all(c.holds(db) for c in candidates):
            return db
    return None


def containment_as_subsumption(q: Rule, r: Rule) -> tuple[Constraint, Constraint]:
    """Theorem 3.2's logspace reduction: ``Q subseteq R`` iff ``Q'`` is
    subsumed by ``{R'}``, where each query's head is moved into its body
    (renaming the head predicate when it also occurs in a body).

    Returns ``(Q', R')`` as constraints.
    """
    if q.head.predicate != r.head.predicate or q.head.arity != r.head.arity:
        raise NotApplicableError("the two queries must share a head signature")
    head_pred = q.head.predicate
    body_preds = {
        atom.predicate for rule in (q, r) for atom in rule.positive_atoms
    }
    goal_pred = head_pred
    if head_pred in body_preds:
        goal_pred = head_pred + "_goal"
        counter = 0
        while goal_pred in body_preds:
            counter += 1
            goal_pred = f"{head_pred}_goal{counter}"

    def transform(rule: Rule, name: str) -> Constraint:
        moved_head = Atom(goal_pred, rule.head.args)
        body = (moved_head,) + rule.body
        panic_rule = Rule(Atom("panic"), body)
        return Constraint(Program((panic_rule,)), name)

    return transform(q, "Q'"), transform(r, "R'")


def cq_containment_via_subsumption(q: Rule, r: Rule) -> bool:
    """Decide CQ containment through the Theorem 3.2 reduction — used by
    the test suite to check the reduction agrees with the direct test."""
    q_constraint, r_constraint = containment_as_subsumption(q, r)
    return subsumes([r_constraint], q_constraint)
