"""Constraints: queries whose result is the 0-ary ``panic`` predicate.

"A constraint is a query whose result is a 0-ary predicate that we call
``panic``.  If the query produces the empty set on a given database D,
then D is said to satisfy the constraint" (Section 2).

:class:`Constraint` wraps a datalog :class:`~repro.datalog.rules.Program`
whose goal predicate is ``panic`` and provides evaluation, classification
into the Fig. 2.1 lattice, and convenient views (single-rule CQ form,
union-of-CQs expansion).  :class:`ConstraintSet` manages a collection —
the ``C1 ... Cn`` the checking problems of the paper assume hold.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import NotApplicableError, UnsupportedClassError
from repro.datalog.database import Database
from repro.datalog.evaluation import Engine, PANIC_PREDICATE
from repro.datalog.parser import parse_program
from repro.datalog.rules import Program, Rule
from repro.datalog.unfold import can_unfold, unfold_to_union
from repro.constraints.classify import ConstraintClass, classify_program

__all__ = ["Constraint", "ConstraintSet"]


class Constraint:
    """An integrity constraint over the database, in panic-query form."""

    def __init__(self, program: Program | Rule | str, name: str | None = None) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        elif isinstance(program, Rule):
            program = Program((program,))
        if PANIC_PREDICATE not in program.idb_predicates():
            raise UnsupportedClassError(
                "a constraint must define the 0-ary goal predicate 'panic'"
            )
        for rule in program.rules_for(PANIC_PREDICATE):
            if rule.head.arity != 0:
                raise UnsupportedClassError("'panic' must be 0-ary")
        self.program = program
        self.name = name or "constraint"
        self._engine: Engine | None = None
        self._class: ConstraintClass | None = None

    # -- evaluation -------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        if self._engine is None:
            self._engine = Engine(self.program)
        return self._engine

    def holds(self, db: Database) -> bool:
        """True when *db* satisfies the constraint (no ``panic``)."""
        return not self.engine.fires(db)

    def is_violated(self, db: Database) -> bool:
        return self.engine.fires(db)

    # -- structure ----------------------------------------------------------------
    @property
    def constraint_class(self) -> ConstraintClass:
        if self._class is None:
            self._class = classify_program(self.program)
        return self._class

    @property
    def is_single_rule(self) -> bool:
        return len(self.program.rules) == 1

    def as_rule(self) -> Rule:
        """The single defining rule, for CQ/CQC-shaped constraints."""
        if not self.is_single_rule:
            raise NotApplicableError(
                f"constraint {self.name!r} is not a single-rule query"
            )
        return self.program.rules[0]

    def as_union(self) -> list[Rule]:
        """The constraint as an explicit union of conjunctive queries.

        Defined whenever the program is nonrecursive and does not negate
        IDB predicates (the Sagiv–Yannakakis equivalence of Section 2).
        """
        if not can_unfold(self.program, PANIC_PREDICATE):
            raise NotApplicableError(
                f"constraint {self.name!r} cannot be expanded into a union of CQs"
            )
        return unfold_to_union(self.program, PANIC_PREDICATE)

    def predicates(self) -> set[str]:
        """The EDB predicates the constraint reads."""
        return self.program.edb_predicates()

    def rename(self, name: str) -> "Constraint":
        return Constraint(self.program, name)

    def __str__(self) -> str:
        return str(self.program)

    def __repr__(self) -> str:
        return f"Constraint({self.name!r}, class={self.constraint_class.name})"


class ConstraintSet:
    """An ordered collection of named constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints: list[Constraint] = []
        self._by_name: dict[str, Constraint] = {}
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Constraint) -> None:
        if constraint.name in self._by_name:
            raise ValueError(f"duplicate constraint name {constraint.name!r}")
        self._constraints.append(constraint)
        self._by_name[constraint.name] = constraint

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __getitem__(self, key: int | str) -> Constraint:
        if isinstance(key, str):
            return self._by_name[key]
        return self._constraints[key]

    def names(self) -> list[str]:
        return [c.name for c in self._constraints]

    def others(self, excluded: Constraint) -> list[Constraint]:
        """Everything but *excluded* — the C1..Cn assumed to hold."""
        return [c for c in self._constraints if c is not excluded]

    def holds_all(self, db: Database) -> bool:
        return all(constraint.holds(db) for constraint in self._constraints)

    def violated(self, db: Database) -> list[Constraint]:
        """The constraints *db* violates, in declaration order."""
        return [c for c in self._constraints if c.is_violated(db)]

    def predicates(self) -> set[str]:
        result: set[str] = set()
        for constraint in self._constraints:
            result |= constraint.predicates()
        return result
