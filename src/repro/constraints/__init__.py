"""Constraints, the Fig. 2.1 class lattice, and subsumption (Section 3)."""

from repro.constraints.classify import (
    ALL_CLASSES,
    ConstraintClass,
    Shape,
    classify_program,
    classify_rule,
)
from repro.constraints.constraint import Constraint, ConstraintSet
from repro.constraints.subsumption import (
    containment_as_subsumption,
    cq_containment_via_subsumption,
    refute_subsumption_by_sampling,
    subsumes,
)

__all__ = [
    "ALL_CLASSES",
    "Constraint",
    "ConstraintClass",
    "ConstraintSet",
    "Shape",
    "classify_program",
    "classify_rule",
    "containment_as_subsumption",
    "cq_containment_via_subsumption",
    "refute_subsumption_by_sampling",
    "subsumes",
]
