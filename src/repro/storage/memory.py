"""The default backend: the in-memory copy-on-write ``Database``."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.datalog.database import Database
from repro.storage.base import StorageBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """Plain in-memory relations — the semantic oracle."""

    name = "memory"

    def create_database(
        self, contents: Mapping[str, Iterable[tuple]] | Database | None = None
    ) -> Database:
        if isinstance(contents, Database):
            return contents.copy()
        return Database(contents)
