"""The SQLite storage backend: base relations as indexed tables.

Base relations live in SQLite tables (one column per position, the full
tuple as primary key, ``WITHOUT ROWID``), so the local site can exceed
what the in-memory engine comfortably materializes and the Theorem 5.3
hot path rides a real query planner:

* :meth:`SQLiteDatabase.run_local_test` executes a compiled local test
  (see :func:`repro.relalg.to_sql.compile_local_test`) as one
  ``SELECT EXISTS`` over indexed equality probes — compiled once per
  ``(constraint, predicate)`` and kept in a bounded LRU statement
  cache, executed many times with only the parameter vector changing.
  Composite indexes are derived from the compiled branches' binding
  patterns (the columns their skeleton conditions bind to constants or
  inserted components).
* :meth:`SQLiteDatabase.apply` applies a
  :class:`~repro.datalog.database.Delta` as one transactional batch of
  ``DELETE`` / ``INSERT OR IGNORE`` statements whose per-row change
  counts reconstruct the exact effective
  :class:`~repro.datalog.database.UndoToken` — so revert and journal
  replay behave byte-identically to the in-memory engine.

The object is a duck-typed :class:`~repro.datalog.database.Database`:
sessions, datalog engines, and checkers consume it unchanged.  Values
are restricted to ``int`` / ``float`` / ``bool`` / ``str`` (the types
whose SQLite comparison and ordering semantics coincide with the
:mod:`repro.arith.order` total order — numbers below strings, numeric
equality across int/float); anything else raises a typed
:class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Iterator, Mapping

from repro.core.compiler import LRUCache
from repro.datalog.database import Database, Delta, UndoToken
from repro.errors import EvaluationError, StorageError
from repro.relalg.expressions import (
    ConstantRelation,
    Difference,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
)
from repro.relalg.to_sql import (
    compile_local_test,
    expression_to_sql,
    quote_identifier,
)
from repro.storage.base import StorageBackend

__all__ = ["SQLiteBackend", "SQLiteDatabase", "SQLiteRelation"]

#: default bound for the prepared-statement LRU (compiled local tests,
#: keyed by (constraint name, predicate))
STATEMENT_CACHE_SIZE = 256

#: bound on memoized (predicate, column, value) lookup results
_LOOKUP_CACHE_LIMIT = 4096

_ALLOWED_TYPES = (int, float, str)  # bool is an int subclass


def _check_fact(predicate: str, fact: tuple) -> None:
    for value in fact:
        if not isinstance(value, _ALLOWED_TYPES):
            raise StorageError(
                f"sqlite backend cannot store a {type(value).__name__} "
                f"value ({value!r}) in {predicate!r}; supported types are "
                "int, float, bool, and str"
            )


def _walk_refs(expression) -> Iterator[RelationRef]:
    if isinstance(expression, RelationRef):
        yield expression
    elif isinstance(expression, Select):
        yield from _walk_refs(expression.source)
    elif isinstance(expression, Project):
        yield from _walk_refs(expression.source)
    elif isinstance(expression, (Product, Difference)):
        yield from _walk_refs(expression.left)
        yield from _walk_refs(expression.right)
    elif isinstance(expression, Union):
        for source in expression.sources:
            yield from _walk_refs(source)
    elif not isinstance(expression, ConstantRelation):
        raise TypeError(f"not a relational algebra expression: {expression!r}")


class SQLiteRelation:
    """A read view of one table, duck-typing
    :class:`~repro.datalog.database.Relation`'s access surface."""

    __slots__ = ("_db", "name", "arity")

    def __init__(self, db: "SQLiteDatabase", name: str, arity: int) -> None:
        self._db = db
        self.name = name
        self.arity = arity

    def lookup(self, column: int, value: object) -> frozenset:
        return self._db._lookup(self.name, column, value)

    def as_frozenset(self) -> frozenset:
        return self._db.facts(self.name)

    def __contains__(self, fact) -> bool:
        return self._db.contains(self.name, fact)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.as_frozenset())

    def __len__(self) -> int:
        return self._db._count(self.name)

    def __repr__(self) -> str:
        return (
            f"SQLiteRelation({self.name!r}, arity={self.arity}, "
            f"size={len(self)})"
        )


class SQLiteDatabase:
    """A duck-typed :class:`Database` persisted in SQLite tables."""

    def __init__(
        self,
        path: str = ":memory:",
        contents: Mapping[str, Iterable[tuple]] | Database | None = None,
        statement_cache_size: int = STATEMENT_CACHE_SIZE,
    ) -> None:
        # check_same_thread=False: the owning Site serializes access
        # under its lock, but snapshot() may run from a pool thread.
        self._conn = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False
        )
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA temp_store=MEMORY")
        self._arities: dict[str, int] = {}
        self._versions: dict[str, int] = {}
        self._facts_cache: dict[str, tuple[int, frozenset]] = {}
        self._lookup_cache: dict[tuple, tuple[int, frozenset]] = {}
        self._indexes: set[tuple[str, tuple[int, ...]]] = set()
        self._statements = LRUCache(statement_cache_size)
        #: Theorem 5.3 tests answered by the SQL pushdown path
        self.pushdown_tests = 0
        if contents is not None:
            if isinstance(contents, Database):
                for predicate in contents.predicates():
                    self._ensure_table(predicate, contents.arity_of(predicate))
                    for fact in contents.facts(predicate):
                        self.insert(predicate, fact)
            else:
                for predicate, facts in contents.items():
                    for fact in facts:
                        self.insert(predicate, fact)

    # -- schema ----------------------------------------------------------------
    def _table_columns(self, arity: int) -> list[str]:
        return [f"c{i}" for i in range(max(arity, 1))]

    def _ensure_table(self, predicate: str, arity: int) -> None:
        stored = self._arities.get(predicate)
        if stored is not None:
            if stored != arity:
                raise EvaluationError(
                    f"relation {predicate}/{stored} cannot hold tuple of "
                    f"length {arity}"
                )
            return
        columns = self._table_columns(arity)
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(predicate)} "
            f"({', '.join(columns)}, PRIMARY KEY ({', '.join(columns)})) "
            "WITHOUT ROWID"
        )
        self._arities[predicate] = arity
        self._versions.setdefault(predicate, 0)

    def _ensure_index(self, predicate: str, columns: tuple[int, ...]) -> None:
        """A composite index on *columns*, unless the primary key (the
        full column tuple, so any ``c0..ck`` prefix) already serves it."""
        if not columns or predicate not in self._arities:
            return
        ordered = tuple(sorted(columns))
        if ordered == tuple(range(len(ordered))):
            return  # a prefix of the WITHOUT ROWID primary key
        key = (predicate, ordered)
        if key in self._indexes:
            return
        name = quote_identifier(
            "idx_" + predicate + "_" + "_".join(str(c) for c in ordered)
        )
        cols = ", ".join(f"c{c}" for c in ordered)
        self._conn.execute(
            f"CREATE INDEX IF NOT EXISTS {name} "
            f"ON {quote_identifier(predicate)} ({cols})"
        )
        self._indexes.add(key)

    def _bump(self, predicate: str) -> None:
        self._versions[predicate] = self._versions.get(predicate, 0) + 1
        self._facts_cache.pop(predicate, None)

    def _where_fact(self, arity: int) -> str:
        if arity == 0:
            return "c0 = 0"
        return " AND ".join(f"c{i} = ?" for i in range(arity))

    def _fact_row(self, fact: tuple) -> tuple:
        return (0,) if not fact else fact

    # -- mutation ----------------------------------------------------------------
    def _insert_row(self, cursor, predicate: str, fact: tuple) -> bool:
        fact = tuple(fact)
        _check_fact(predicate, fact)
        self._ensure_table(predicate, len(fact))
        row = self._fact_row(fact)
        placeholders = ", ".join("?" for _ in row)
        cursor.execute(
            f"INSERT OR IGNORE INTO {quote_identifier(predicate)} "
            f"VALUES ({placeholders})",
            row,
        )
        return cursor.rowcount > 0

    def _delete_row(self, cursor, predicate: str, fact: tuple) -> bool:
        arity = self._arities.get(predicate)
        if arity is None:
            return False
        fact = tuple(fact)
        if len(fact) != arity:
            return False
        _check_fact(predicate, fact)
        cursor.execute(
            f"DELETE FROM {quote_identifier(predicate)} "
            f"WHERE {self._where_fact(arity)}",
            fact,
        )
        return cursor.rowcount > 0

    def insert(self, predicate: str, fact: tuple) -> bool:
        changed = self._insert_row(self._conn.cursor(), predicate, fact)
        if changed:
            self._bump(predicate)
        return changed

    def delete(self, predicate: str, fact: tuple) -> bool:
        changed = self._delete_row(self._conn.cursor(), predicate, fact)
        if changed:
            self._bump(predicate)
        return changed

    def apply(self, delta: Delta) -> UndoToken:
        """Apply *delta* (deletions first) as one transaction.

        The per-statement change counts reconstruct the exact effective
        :class:`UndoToken`; any failure rolls the whole batch back, so a
        delta is applied entirely or not at all.
        """
        applied_insertions: dict[str, set[tuple]] = {}
        applied_deletions: dict[str, set[tuple]] = {}
        cursor = self._conn.cursor()
        cursor.execute("BEGIN")
        try:
            for predicate, facts in delta.deletions.items():
                for fact in facts:
                    fact = tuple(fact)
                    if self._delete_row(cursor, predicate, fact):
                        applied_deletions.setdefault(predicate, set()).add(fact)
            for predicate, facts in delta.insertions.items():
                for fact in facts:
                    fact = tuple(fact)
                    if self._insert_row(cursor, predicate, fact):
                        applied_insertions.setdefault(predicate, set()).add(fact)
        except BaseException:
            cursor.execute("ROLLBACK")
            raise
        cursor.execute("COMMIT")
        for predicate in set(applied_insertions) | set(applied_deletions):
            self._bump(predicate)
        return UndoToken(applied_insertions, applied_deletions)

    def undo(self, token: UndoToken) -> None:
        """Reverse the effective changes of one :meth:`apply`, exactly."""
        self.apply(token.inverted_delta())

    # -- access ------------------------------------------------------------------
    def relation(self, predicate: str) -> SQLiteRelation | None:
        arity = self._arities.get(predicate)
        if arity is None:
            return None
        return SQLiteRelation(self, predicate, arity)

    def facts(self, predicate: str) -> frozenset:
        arity = self._arities.get(predicate)
        if arity is None:
            return frozenset()
        version = self._versions[predicate]
        cached = self._facts_cache.get(predicate)
        if cached is not None and cached[0] == version:
            return cached[1]
        rows = self._conn.execute(
            f"SELECT * FROM {quote_identifier(predicate)}"
        ).fetchall()
        if arity == 0:
            result = frozenset(() for _ in rows)
        else:
            result = frozenset(tuple(row) for row in rows)
        self._facts_cache[predicate] = (version, result)
        return result

    def _count(self, predicate: str) -> int:
        if predicate not in self._arities:
            return 0
        (count,) = self._conn.execute(
            f"SELECT COUNT(*) FROM {quote_identifier(predicate)}"
        ).fetchone()
        return count

    def _lookup(self, predicate: str, column: int, value: object) -> frozenset:
        arity = self._arities.get(predicate)
        if arity is None or not 0 <= column < arity:
            return frozenset()
        version = self._versions[predicate]
        key = (predicate, column, value)
        cached = self._lookup_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        self._ensure_index(predicate, (column,))
        try:
            rows = self._conn.execute(
                f"SELECT * FROM {quote_identifier(predicate)} "
                f"WHERE c{column} = ?",
                (value,),
            ).fetchall()
        except sqlite3.InterfaceError as exc:
            raise StorageError(
                f"sqlite backend cannot probe {predicate!r} with "
                f"{value!r}: {exc}"
            ) from exc
        result = frozenset(tuple(row) for row in rows)
        if len(self._lookup_cache) >= _LOOKUP_CACHE_LIMIT:
            self._lookup_cache.clear()
        self._lookup_cache[key] = (version, result)
        return result

    def contains(self, predicate: str, fact: tuple) -> bool:
        arity = self._arities.get(predicate)
        if arity is None:
            return False
        fact = tuple(fact)
        if len(fact) != arity:
            return False
        try:
            row = self._conn.execute(
                f"SELECT 1 FROM {quote_identifier(predicate)} "
                f"WHERE {self._where_fact(arity)} LIMIT 1",
                fact,
            ).fetchone()
        except sqlite3.InterfaceError:
            return False  # a value the backend cannot hold is never stored
        return row is not None

    def predicates(self) -> set[str]:
        return set(self._arities)

    def arity_of(self, predicate: str) -> int | None:
        return self._arities.get(predicate)

    def size(self) -> int:
        return sum(self._count(predicate) for predicate in self._arities)

    # -- snapshots (in-memory copies; reads are escalation-path only) -----------
    def copy(self) -> Database:
        new = Database()
        for predicate in self._arities:
            for fact in self.facts(predicate):
                new.insert(predicate, fact)
        return new

    def snapshot(self) -> Database:
        return self.copy()

    def restricted_to(self, predicates: Iterable[str]) -> Database:
        wanted = set(predicates)
        new = Database()
        for predicate in self._arities:
            if predicate not in wanted:
                continue
            for fact in self.facts(predicate):
                new.insert(predicate, fact)
        return new

    # -- the SQL pushdown paths --------------------------------------------------
    def run_local_test(self, test, values: tuple, key) -> bool:
        """Execute an :class:`AlgebraicLocalTest` as an indexed SQL probe.

        *key* identifies the compiled statement in the LRU cache (the
        sessions pass ``(constraint name, predicate)``); the statement is
        compiled symbolically once and re-executed with only the
        parameter vector changing.
        """
        values = tuple(values)
        if not test.reduction_exists(values):
            return True
        self.pushdown_tests += 1
        compiled = self._statements.get(key)
        if compiled is None:
            compiled = compile_local_test(test)
            self._statements.put(key, compiled)
        if compiled.sql is None:
            return False  # every branch statically inconsistent
        stored = self._arities.get(compiled.predicate)
        if stored is None:
            return False  # empty local relation: the union is empty
        if stored != compiled.arity:
            raise EvaluationError(
                f"relation {compiled.predicate!r} has arity {stored}, "
                f"local test expects {compiled.arity}"
            )
        for columns in compiled.index_columns:
            self._ensure_index(compiled.predicate, columns)
        try:
            (exists,) = self._conn.execute(
                compiled.sql, compiled.bind(values)
            ).fetchone()
        except sqlite3.InterfaceError as exc:
            raise StorageError(
                f"sqlite backend cannot bind local-test values "
                f"{values!r}: {exc}"
            ) from exc
        return bool(exists)

    def evaluate_expression(self, expression) -> frozenset:
        """Evaluate a relational algebra expression entirely in SQL —
        the general-path counterpart of
        :func:`repro.relalg.evaluate.evaluate_expression`."""
        for ref in _walk_refs(expression):
            stored = self._arities.get(ref.name)
            if stored is None:
                # a missing relation is an empty one, exactly as the
                # in-memory evaluator treats it
                self._ensure_table(ref.name, ref.arity)
            elif stored != ref.arity:
                raise EvaluationError(
                    f"relation {ref.name!r} has arity {stored}, "
                    f"expression expects {ref.arity}"
                )
        query = expression_to_sql(expression)
        try:
            rows = self._conn.execute(query.sql, query.params).fetchall()
        except sqlite3.InterfaceError as exc:
            raise StorageError(
                f"sqlite backend cannot bind expression literals: {exc}"
            ) from exc
        return query.rows_to_tuples(rows)

    def statement_cache_info(self) -> dict:
        """Hit/miss/size counters of the compiled-statement LRU."""
        return self._statements.info()

    # -- misc --------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Database, SQLiteDatabase)):
            return NotImplemented
        mine = {
            predicate: facts
            for predicate in self._arities
            if (facts := set(self.facts(predicate)))
        }
        theirs = {
            predicate: facts
            for predicate in other.predicates()
            if (facts := set(other.facts(predicate)))
        }
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}/{arity}:{self._count(name)}"
            for name, arity in sorted(self._arities.items())
        )
        return f"SQLiteDatabase({inner})"


class SQLiteBackend(StorageBackend):
    """Factory for :class:`SQLiteDatabase` sites.

    *path* of ``None`` means a private in-memory database per
    :meth:`create_database` call (the default — the durability story is
    the journal's, not the storage file's)."""

    name = "sqlite"

    def __init__(
        self,
        path: str | None = None,
        statement_cache_size: int = STATEMENT_CACHE_SIZE,
    ) -> None:
        self.path = path
        self.statement_cache_size = statement_cache_size

    def create_database(
        self, contents: Mapping[str, Iterable[tuple]] | Database | None = None
    ) -> SQLiteDatabase:
        return SQLiteDatabase(
            self.path or ":memory:",
            contents=contents,
            statement_cache_size=self.statement_cache_size,
        )
