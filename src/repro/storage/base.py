"""The pluggable storage-backend interface for a site's database.

A backend is a factory for database objects exposing the
:class:`~repro.datalog.database.Database` surface the sessions, engines,
and checkers consume: ``insert`` / ``delete`` / ``apply(delta)`` →
:class:`~repro.datalog.database.UndoToken` / ``undo(token)``,
``relation(predicate)`` (with ``lookup``), ``facts`` / ``contains`` /
``predicates`` / ``arity_of`` / ``size``, and the snapshot trio
``copy`` / ``snapshot`` / ``restricted_to``.  The in-memory engine is
the default and the semantic oracle; alternative backends must be
observationally equivalent (the backend-equivalence property test holds
them to byte-identical verdicts, drained verdicts, final state, and
stats gauges).

A backend database *may* additionally expose
``run_local_test(test, values, key)``: sessions detect the capability
and push compiled Theorem 5.3 local tests down to it instead of
materializing ``facts(predicate)`` per probe.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from repro.datalog.database import Database

__all__ = ["StorageBackend"]


class StorageBackend(ABC):
    """A named factory for site databases."""

    #: the CLI-facing backend name (``--backend <name>``)
    name: str = "abstract"

    @abstractmethod
    def create_database(
        self, contents: Mapping[str, Iterable[tuple]] | Database | None = None
    ):
        """A fresh database preloaded with *contents* (a mapping of
        predicate to fact tuples, an existing :class:`Database` to copy
        from, or ``None`` for empty)."""
