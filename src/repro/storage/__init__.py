"""Pluggable storage backends for site databases.

The in-memory :class:`~repro.datalog.database.Database` is the default
and the semantic oracle; :class:`~repro.storage.sqlite.SQLiteBackend`
stores base relations in indexed SQLite tables and pushes compiled
Theorem 5.3 local tests down to the query planner.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.storage.base import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SQLiteBackend, SQLiteDatabase, SQLiteRelation

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "SQLiteDatabase",
    "SQLiteRelation",
    "BACKENDS",
    "make_backend",
]

BACKENDS = {
    MemoryBackend.name: MemoryBackend,
    SQLiteBackend.name: SQLiteBackend,
}


def make_backend(name: str, **kwargs) -> StorageBackend:
    """Instantiate a backend by its CLI-facing name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown storage backend {name!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)
