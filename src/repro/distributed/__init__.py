"""Distributed-database simulation: metered sites, protocol, workloads."""

from repro.distributed.checker import DistributedChecker, ProtocolStats
from repro.distributed.site import AccessStats, Site, TwoSiteDatabase
from repro.distributed.workload import Workload, employee_workload, interval_workload

__all__ = [
    "AccessStats",
    "DistributedChecker",
    "ProtocolStats",
    "Site",
    "TwoSiteDatabase",
    "Workload",
    "employee_workload",
    "interval_workload",
]
