"""Distributed-database simulation: metered sites, protocol, workloads,
and the fault-tolerant remote link (faults, retries, circuit breaker)."""

from repro.distributed.checker import DistributedChecker, ProtocolStats
from repro.distributed.faults import FaultModel, UnreliableRemote, parse_outage
from repro.distributed.remote import (
    BreakerState,
    FetchPolicy,
    LinkStats,
    RemoteLink,
)
from repro.distributed.sharded import (
    KeyRangePartitioner,
    PredicatePartitioner,
    ShardedChecker,
)
from repro.distributed.site import AccessStats, Site, TwoSiteDatabase
from repro.distributed.workload import Workload, employee_workload, interval_workload

__all__ = [
    "AccessStats",
    "BreakerState",
    "DistributedChecker",
    "FaultModel",
    "FetchPolicy",
    "KeyRangePartitioner",
    "LinkStats",
    "PredicatePartitioner",
    "ProtocolStats",
    "RemoteLink",
    "ShardedChecker",
    "Site",
    "TwoSiteDatabase",
    "UnreliableRemote",
    "Workload",
    "employee_workload",
    "interval_workload",
    "parse_outage",
]
