"""Distributed-database simulation: metered sites, protocol, workloads,
and the fault-tolerant remote link (faults, retries, circuit breaker) —
generalized from two sites to an N-site federation with per-site links
and fan-out escalation."""

from repro.distributed.checker import (
    DistributedChecker,
    ProtocolStats,
    resolve_escalation_link,
)
from repro.distributed.faults import FaultModel, UnreliableRemote, parse_outage
from repro.distributed.rebalance import (
    RebalancePlan,
    RebalancePolicy,
    ShardLoadTracker,
)
from repro.distributed.remote import (
    BreakerState,
    FederationLink,
    FetchPolicy,
    LinkStats,
    RemoteLink,
)
from repro.distributed.sharded import (
    KeyRangePartitioner,
    PredicatePartitioner,
    ShardedChecker,
)
from repro.distributed.site import (
    AccessStats,
    FederatedDatabase,
    Site,
    TwoSiteDatabase,
)
from repro.distributed.workload import (
    Workload,
    employee_workload,
    federated_workload,
    interval_workload,
)

__all__ = [
    "AccessStats",
    "BreakerState",
    "DistributedChecker",
    "FaultModel",
    "FederatedDatabase",
    "FederationLink",
    "FetchPolicy",
    "KeyRangePartitioner",
    "LinkStats",
    "PredicatePartitioner",
    "ProtocolStats",
    "RebalancePlan",
    "RebalancePolicy",
    "RemoteLink",
    "ShardLoadTracker",
    "ShardedChecker",
    "Site",
    "TwoSiteDatabase",
    "UnreliableRemote",
    "Workload",
    "employee_workload",
    "federated_workload",
    "interval_workload",
    "parse_outage",
    "resolve_escalation_link",
]
