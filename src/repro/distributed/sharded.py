"""Sharded check sessions: partition the local site, keep the verdicts.

The paper's protocol distinguishes *local* data (cheap, always
reachable) from *remote* data (expensive, possibly unreachable).  A
large local site is itself often partitioned — by predicate, or by key
range within a predicate — across processes that each want to run the
Section 2 level pipeline over their own slice.  :class:`ShardedChecker`
does exactly that while preserving the protocol's verdicts:

* the local database is split into disjoint per-shard
  :class:`~repro.datalog.database.Database` slices
  (:meth:`~repro.distributed.site.Site.partition`), one
  :class:`~repro.core.session.CheckSession` per shard, all sharing one
  read-only :class:`~repro.core.compiler.ConstraintCompiler` (the
  subsumption analysis, level-1 verdict LRU, and local test plans are
  database-independent, hence shard-safe);
* every update is routed to its owning shard; constraints are
  classified **shard-local** (decidable inside one shard — the
  maintained-materialization fast path) vs **spanning** (site-local but
  crossing shards — settled against a lazily materialized cross-shard
  union view, still at ``WITH_LOCAL_DATA``, since sibling-shard data is
  part of the same site and can never defer) vs **remote** (escalating
  off-site exactly as unsharded);
* deferred verdicts keep their *global* ordering: the shard sessions
  share one sequence counter, so the drain quarantines optimistic facts
  newest-first and settles oldest-first **across** shards — byte-for-
  byte the unsharded FIFO semantics.

The win is maintenance locality: an update's delta pass touches only
its shard's materializations, so the summed per-shard maintenance work
is strictly below one session maintaining everything (measured by
``benchmarks/bench_sharded.py``).

With ``parallelism > 1`` the checker additionally converts shard
independence into wall-clock overlap: updates whose constraint
footprint is confined to their owning shard run concurrently on a
thread pool, one worker per shard, while updates that would read across
shards (spanning or mixed constraints, split predicates, cross-shard
modifications) act as **fences** — the scheduler drains the open
parallel segment first and runs them alone.  Verdicts stay byte-
identical to the serial checker (see DESIGN.md §9 for the fence
argument); ``benchmarks/bench_parallel.py`` measures the overlap.
"""

from __future__ import annotations

import itertools
import zlib
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import (
    MATERIALIZATION_LIMIT,
    CheckSession,
    PendingVerdict,
)
from repro.datalog.database import Database, UndoToken
from repro.distributed.checker import resolve_escalation_link
from repro.distributed.remote import RemoteLink
from repro.distributed.site import FederatedDatabase
from repro.distributed.stats import ProtocolStats, sync_session_gauges
from repro.errors import RemoteUnavailableError
from repro.updates.update import Insertion, Modification, Update

#: outcome severity for merging the two halves of a decomposed
#: cross-shard modification into one per-constraint report
_OUTCOME_SEVERITY = {
    Outcome.SATISFIED: 0,
    Outcome.UNKNOWN: 1,
    Outcome.DEFERRED: 2,
    Outcome.VIOLATED: 3,
}

__all__ = ["PredicatePartitioner", "KeyRangePartitioner", "ShardedChecker"]


class PredicatePartitioner:
    """Assign each site-local predicate wholly to one shard.

    Predicates known up front are dealt round-robin over their sorted
    order (balanced and deterministic); a predicate first seen later
    hashes to a stable slot.
    """

    def __init__(self, shards: int, predicates: Iterable[str] = ()) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._assigned: dict[str, int] = {
            predicate: index % shards
            for index, predicate in enumerate(sorted(predicates))
        }

    #: predicates split *across* shards by value (none for this class)
    @property
    def split_predicates(self) -> frozenset[str]:
        return frozenset()

    def owner(self, predicate: str, values: Optional[tuple] = None) -> int:
        """The shard index owning ``predicate(values)``."""
        slot = self._assigned.get(predicate)
        if slot is None:
            # Stable across processes (unlike the salted builtin hash).
            slot = zlib.crc32(predicate.encode("utf-8")) % self.shards
            self._assigned[predicate] = slot
        return slot

    def owned_predicates(self, predicates: Iterable[str]) -> list[set[str]]:
        """Partition *predicates* into per-shard ownership sets (split
        predicates belong to no single shard)."""
        owned: list[set[str]] = [set() for _ in range(self.shards)]
        for predicate in predicates:
            if predicate not in self.split_predicates:
                owned[self.owner(predicate)].add(predicate)
        return owned


class KeyRangePartitioner(PredicatePartitioner):
    """A :class:`PredicatePartitioner` that additionally splits selected
    predicates *across* shards by their first column.

    ``boundaries[pred]`` gives ``shards - 1`` sorted cut points; a fact
    with first value ``v`` lands in the shard whose range contains it
    (``bisect``).  A split predicate belongs to no single shard: every
    shard holds a slice, every session treats it as peer data, and
    constraints over it are settled against the cross-shard union view.
    """

    def __init__(
        self,
        shards: int,
        boundaries: dict[str, Sequence],
        predicates: Iterable[str] = (),
    ) -> None:
        super().__init__(shards, predicates)
        self._boundaries = {
            predicate: tuple(cuts) for predicate, cuts in boundaries.items()
        }
        for predicate, cuts in self._boundaries.items():
            if len(cuts) != shards - 1:
                raise ValueError(
                    f"key-range split of {predicate!r} needs {shards - 1} "
                    f"boundaries for {shards} shards, got {len(cuts)}"
                )
            if list(cuts) != sorted(cuts):
                raise ValueError(
                    f"key-range boundaries for {predicate!r} must be sorted"
                )

    @property
    def split_predicates(self) -> frozenset[str]:
        return frozenset(self._boundaries)

    def owner(self, predicate: str, values: Optional[tuple] = None) -> int:
        cuts = self._boundaries.get(predicate)
        if cuts is None:
            return super().owner(predicate, values)
        if not values:
            raise ValueError(
                f"{predicate!r} is key-range split: routing needs the fact"
            )
        return bisect_right(cuts, values[0])


class ShardedChecker:
    """Enforce constraints over a predicate-partitioned local site.

    The protocol-facing surface matches :class:`DistributedChecker`
    (``process`` / ``check_stream`` / ``resolve_pending`` / ``stats``),
    and the verdicts match a single unsharded
    :class:`~repro.core.session.CheckSession` over the union database:
    shard-local constraints take the maintained-materialization path,
    spanning constraints read the lazily built union view at the same
    ``WITH_LOCAL_DATA`` level, and remote escalation (including DEFERRED
    degradation and the drain) behaves identically because sibling-shard
    fetches can never fail.
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: FederatedDatabase,
        shards: int = 2,
        partitioner: Optional[PredicatePartitioner] = None,
        use_interval_datalog: bool = False,
        apply_on_unknown: bool = True,
        remote_link: Optional[RemoteLink] = None,
        max_materializations: Optional[int] = MATERIALIZATION_LIMIT,
        parallelism: int = 1,
        overlap_remote: bool = False,
        session_factory: Optional[Callable[..., CheckSession]] = None,
        remote_links: Optional[Mapping[str, RemoteLink]] = None,
        parallel_fanout: bool = True,
        snapshot_ttl: Optional[float] = None,
        site_ttls: Optional[Mapping[str, float]] = None,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        resolved = resolve_escalation_link(
            sites, remote_link, remote_links,
            parallel_fanout=parallel_fanout,
            snapshot_ttl=snapshot_ttl,
            site_ttls=site_ttls,
        )
        if overlap_remote and resolved is None:
            raise ValueError(
                "overlap_remote needs a RemoteLink (the raw site has no "
                "async fetch queue)"
            )
        self.sites = sites
        self.site_predicates = frozenset(sites.local_predicates)
        if partitioner is None:
            partitioner = PredicatePartitioner(shards, self.site_predicates)
        self.partitioner = partitioner
        self.shards = partitioner.shards
        self.compiler = ConstraintCompiler(
            constraints, self.site_predicates, use_interval_datalog,
            site_of=sites.site_of,
        )
        self.constraints = self.compiler.constraints
        self.apply_on_unknown = apply_on_unknown
        self.remote_link = resolved
        self.parallelism = parallelism
        self.overlap_remote = overlap_remote
        self.stats = ProtocolStats()

        self._shard_dbs = sites.local.partition(
            self.partitioner.owner, self.shards
        )
        owned = self.partitioner.owned_predicates(self.site_predicates)
        self._owned = [frozenset(preds) for preds in owned]
        #: (shard, predicate) -> does an update there fence the pipeline?
        self._fence_cache: dict[tuple[int, str], bool] = {}
        # One shared monotone arrival clock for PendingVerdict sequence
        # numbers: the drain's global newest-first quarantine /
        # oldest-first settle order is meaningful only on a cross-shard
        # timeline.  Each shard reads its own stamp cell, written just
        # before its session processes an update — under parallel
        # execution a shared next()-per-queue-call counter would hand
        # out numbers in settle-race order, not arrival order.
        self._arrival = itertools.count(1)
        self._seq_cells: list[list[int]] = [[0] for _ in range(self.shards)]
        if session_factory is None:
            session_factory = CheckSession
        self.sessions: list[CheckSession] = [
            session_factory(
                compiler=self.compiler,
                local_predicates=owned[index],
                local_db=self._shard_dbs[index],
                apply_on_unknown=apply_on_unknown,
                max_materializations=max_materializations,
                peer_predicates=self.site_predicates - owned[index],
                peer_source=self._peer_source(index),
                seq_source=(lambda cell=self._seq_cells[index]: cell[0]),
            )
            for index in range(self.shards)
        ]
        if parallelism > 1:
            # Force the per-constraint lazy engines/classifications on
            # this thread before any worker touches them.
            self.compiler.prewarm()

    # -- topology ---------------------------------------------------------------
    def _peer_source(self, index: int) -> Callable[..., Database]:
        """A fetch over every *sibling* shard's slice — the lazily
        materialized part of the cross-shard union view (the caller's
        own slice is already its ``local_db``)."""

        def fetch(predicates: Optional[Iterable[str]] = None) -> Database:
            merged = Database()
            wanted = set(predicates) if predicates is not None else None
            for sibling, db in enumerate(self._shard_dbs):
                if sibling == index:
                    continue
                names = (
                    db.predicates() if wanted is None
                    else wanted & db.predicates()
                )
                for predicate in names:
                    for fact in db.facts(predicate):
                        merged.insert(predicate, fact)
            return merged

        return fetch

    def shard_of(self, update: Update) -> int:
        """The shard that owns *update* — and the validity checks that
        keep the shards disjoint: only site-local predicates may be
        updated.  A modification that moves a fact between shards has no
        single owner; :meth:`process` and :meth:`check_stream` decompose
        it into its delete/insert halves instead (this method still
        raises, for callers that need one index)."""
        predicate = update.predicate
        if predicate not in self.site_predicates:
            raise ValueError(
                f"update targets non-local predicate {predicate!r}; a "
                f"sharded checker owns only the local site"
            )
        if isinstance(update, Modification):
            old = self.partitioner.owner(predicate, update.old_values)
            new = self.partitioner.owner(predicate, update.new_values)
            if old != new:
                raise ValueError(
                    f"modification moves {predicate!r} fact across shards "
                    f"({old} -> {new}); process()/check_stream() decompose "
                    f"it into -old / +new halves under a fence"
                )
            return old
        return self.partitioner.owner(predicate, update.values)

    def _cross_shard_modification(self, update: Update) -> Optional[tuple[int, int]]:
        """``(delete_shard, insert_shard)`` when *update* is a
        modification whose halves land in different shards, else None."""
        if not isinstance(update, Modification):
            return None
        predicate = update.predicate
        if predicate not in self.site_predicates:
            return None
        old = self.partitioner.owner(predicate, update.old_values)
        new = self.partitioner.owner(predicate, update.new_values)
        return (old, new) if old != new else None

    def shard_local_constraints(self) -> dict[str, int]:
        """Constraints decidable wholly inside one shard, by name."""
        placed: dict[str, int] = {}
        for index, session in enumerate(self.sessions):
            for constraint in self.constraints:
                if constraint.predicates() <= session.local_predicates:
                    placed[constraint.name] = index
        return placed

    def spanning_constraints(self) -> tuple[str, ...]:
        """Site-local constraints that cross shard boundaries — the only
        ones whose settlement reads the cross-shard union view."""
        placed = self.shard_local_constraints()
        return tuple(
            constraint.name
            for constraint in self.constraints
            if constraint.name not in placed
            and constraint.predicates() <= self.site_predicates
        )

    def remote_constraints(self) -> tuple[str, ...]:
        """Constraints mentioning true off-site predicates; these
        escalate (and may defer) exactly as in the unsharded protocol."""
        return tuple(
            constraint.name
            for constraint in self.constraints
            if not constraint.predicates() <= self.site_predicates
        )

    @property
    def remote_source(self) -> Callable[..., Database]:
        """Off-site escalation: the fault-tolerant link when configured,
        the raw metered remote site otherwise.  With ``overlap_remote``
        the in-stream source is the link's async queue — a slow-but-
        healthy fetch defers the update (future in tow) instead of
        stalling the stream."""
        if self.remote_link is not None:
            if self.overlap_remote:
                return self.remote_link.fetch_nowait
            return self.remote_link.fetch
        # No link resolves only in the single-remote case.
        return next(iter(self.sites.remotes.values())).snapshot

    @property
    def _drain_source(self) -> Callable[..., Database]:
        """The *blocking* fetch the drain settles against — never the
        async queue: a nowait raise mid-settle would leak an unconsumed
        future on the entry it was trying to settle."""
        if self.remote_link is not None:
            return self.remote_link.fetch
        return self.remote_source

    def local_database(self) -> Database:
        """The union of the shard slices — equal, update for update, to
        the single database an unsharded session would maintain."""
        merged = Database()
        for db in self._shard_dbs:
            for predicate in db.predicates():
                for fact in db.facts(predicate):
                    merged.insert(predicate, fact)
        return merged

    @property
    def pending_count(self) -> int:
        return sum(session.pending_count for session in self.sessions)

    # -- the protocol -----------------------------------------------------------
    def _process_on_shard(self, shard: int, update: Update) -> list[CheckReport]:
        """Stamp the shard's arrival cell and run one update through its
        session (main-thread path; workers go through
        :meth:`_run_shard_slice`)."""
        session = self.sessions[shard]
        self._seq_cells[shard][0] = next(self._arrival)
        before = session.stats.remote_fetches
        reports = session.process(update, remote=self.remote_source)
        self.stats.remote_round_trips += (
            session.stats.remote_fetches - before
        )
        return reports

    def process(self, update: Update) -> list[CheckReport]:
        """Route one update to its shard and run the level pipeline.

        A modification whose halves land in different shards is
        decomposed into its delete + insert halves (see
        :meth:`_process_split_modification`).
        """
        if self._cross_shard_modification(update) is not None:
            reports = self._process_split_modification(update)
        else:
            reports = self._process_on_shard(self.shard_of(update), update)
            self.stats.updates += 1
            self.stats.record_reports(reports, self.apply_on_unknown)
        self._sync_gauges()
        return reports

    def _process_split_modification(self, update: Update) -> list[CheckReport]:
        """Run a cross-shard modification as delete(old) then insert(new).

        The delete half runs first on the old fact's shard; if it is
        VIOLATED the modification is rejected whole and the insert half
        never runs.  Otherwise the insert half runs on the new fact's
        shard; if *it* is VIOLATED the already-applied delete is undone
        (the old fact is restored unchecked — removing a fact from the
        supported constraint classes cannot introduce a violation), so
        the modification stays atomic.  The restore is skipped when the
        delete half itself was DEFERRED or held: a deferred delete's
        token is owned by the pending queue and will be reconciled by
        the drain.  The per-constraint reports of both halves merge by
        outcome severity (VIOLATED > DEFERRED > UNKNOWN > SATISFIED).
        """
        del_shard, ins_shard = self._cross_shard_modification(update)
        predicate = update.predicate
        deletion, insertion = update.deletion, update.insertion
        was_present = update.old_values in self._shard_dbs[del_shard].facts(
            predicate
        )

        self.stats.updates += 1
        self.stats.cross_shard_modifications += 1
        del_reports = self._process_on_shard(del_shard, deletion)
        del_rejected = any(
            r.outcome is Outcome.VIOLATED for r in del_reports
        )
        if del_rejected:
            self.stats.record_reports(del_reports, self.apply_on_unknown)
            return del_reports
        del_deferred = any(
            r.outcome is Outcome.DEFERRED for r in del_reports
        )
        del_held = not self.apply_on_unknown and any(
            r.outcome in (Outcome.UNKNOWN, Outcome.DEFERRED)
            for r in del_reports
        )

        ins_reports = self._process_on_shard(ins_shard, insertion)
        ins_rejected = any(
            r.outcome is Outcome.VIOLATED for r in ins_reports
        )
        if ins_rejected and was_present and not (del_deferred or del_held):
            self.sessions[del_shard].apply_unchecked(
                Insertion(predicate, update.old_values)
            )

        merged: dict[str, CheckReport] = {r.constraint_name: r for r in del_reports}
        for report in ins_reports:
            other = merged[report.constraint_name]
            merged[report.constraint_name] = max(
                other,
                report,
                key=lambda r: (_OUTCOME_SEVERITY[r.outcome], r.level),
            )
        ordered = [merged[c.name] for c in self.constraints]
        self.stats.record_reports(ordered, self.apply_on_unknown)
        return ordered

    def check_stream(
        self,
        updates: Iterable[Update],
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Stream mode over the shards.

        Consecutive updates owned by the same shard form a run handed to
        that shard's :meth:`CheckSession.process_stream` — with a
        *batch_size*, coalesced maintenance batching (including the
        panic probe and exact replay) runs per shard.  A shard switch
        flushes the run first, so by the time a sibling's spanning check
        materializes the union view every earlier delta has already
        reached its slice (batched deltas hit the database eagerly);
        verdicts therefore match global per-update processing.
        Cross-shard modifications flush the run and decompose.

        With ``parallelism > 1`` the stream runs on the fence-scheduled
        thread pool instead (:meth:`_check_stream_parallel`); verdicts
        are identical either way.
        """
        if self.parallelism > 1:
            return self._check_stream_parallel(updates, batch_size)
        results: list[list[CheckReport]] = []
        run: list[Update] = []
        run_shard: Optional[int] = None

        def flush() -> None:
            if not run:
                return
            session = self.sessions[run_shard]
            cell = self._seq_cells[run_shard]
            items = tuple(run)

            def feed():
                # process_stream pulls one update at a time, so the
                # stamp written here is the one _queue_pending reads if
                # that update defers.
                for item in items:
                    cell[0] = next(self._arrival)
                    yield item

            before = session.stats.remote_fetches
            run_results = session.process_stream(
                feed(), remote=self.remote_source, batch_size=batch_size
            )
            self.stats.remote_round_trips += (
                session.stats.remote_fetches - before
            )
            for reports in run_results:
                self.stats.updates += 1
                self.stats.record_reports(reports, self.apply_on_unknown)
            results.extend(run_results)
            run.clear()

        for update in updates:
            if self._cross_shard_modification(update) is not None:
                flush()
                run_shard = None
                results.append(self._process_split_modification(update))
                continue
            shard = self.shard_of(update)
            if run_shard is not None and shard != run_shard:
                flush()
            run_shard = shard
            run.append(update)
        flush()
        self._sync_gauges()
        return results

    # -- parallel execution ------------------------------------------------------
    def _requires_fence(self, shard: int, predicate: str) -> bool:
        """Must an update of *predicate* on *shard* run alone?

        No fence is needed exactly when every non-subsumed constraint
        mentioning the predicate keeps its site-local footprint inside
        the owning shard: then the whole pipeline — including a remote
        escalation's ``own-slice + remote`` merge — reads nothing a
        concurrent sibling could be writing.  A constraint whose
        site-local part crosses shards (spanning, or remote-mixed)
        would materialize the cross-shard union view, so it fences;
        split predicates are owned by no shard and always fence.
        """
        key = (shard, predicate)
        cached = self._fence_cache.get(key)
        if cached is not None:
            return cached
        owned = self._owned[shard]
        fence = predicate not in owned
        if not fence:
            for constraint in self.constraints:
                if self.compiler.compiled(constraint).subsumed:
                    continue
                if predicate not in constraint.predicates():
                    continue
                site_part = constraint.predicates() & self.site_predicates
                if not site_part <= owned:
                    fence = True
                    break
        self._fence_cache[key] = fence
        return fence

    def _run_shard_slice(
        self,
        shard: int,
        items: Sequence[tuple[int, Update]],
        batch_size: Optional[int],
    ) -> tuple[list[tuple[int, list[CheckReport]]], int]:
        """Worker body: one shard's slice of a parallel segment.

        Runs on a pool thread.  Touches only this shard's session,
        database, and stamp cell (plus the locked shared compiler /
        link / sites), and returns ``(position, reports)`` pairs and the
        session's remote-fetch delta so the main thread folds protocol
        stats in stream order at the barrier — pool threads never mutate
        ``ProtocolStats``.
        """
        session = self.sessions[shard]
        cell = self._seq_cells[shard]

        def feed():
            for _pos, item in items:
                cell[0] = next(self._arrival)
                yield item

        before = session.stats.remote_fetches
        run_results = session.process_stream(
            feed(), remote=self.remote_source, batch_size=batch_size
        )
        pairs = [
            (pos, reports)
            for (pos, _item), reports in zip(items, run_results)
        ]
        return pairs, session.stats.remote_fetches - before

    def _check_stream_parallel(
        self,
        updates: Iterable[Update],
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Fence-scheduled parallel stream execution.

        Updates accumulate into a *segment* as long as none of them
        fences; a segment is executed by handing each shard's slice
        (stream order preserved within the shard) to the pool at once
        and waiting for all of them — shard databases are disjoint and
        fence-free updates by construction read nothing outside their
        shard, so the interleaving cannot change any verdict.  A fencing
        update drains the segment (a counted barrier) and then runs
        alone on this thread with every worker idle, exactly as in
        serial mode.  Stats are folded only at barriers, in stream
        order, so the counters match the serial run's.
        """
        results_map: dict[int, list[CheckReport]] = {}
        segment: list[tuple[int, int, Update]] = []  # (pos, shard, update)
        stats = self.stats
        with ThreadPoolExecutor(
            max_workers=min(self.parallelism, self.shards),
            thread_name_prefix="shard",
        ) as executor:

            def run_segment() -> None:
                if not segment:
                    return
                by_shard: dict[int, list[tuple[int, Update]]] = {}
                for pos, shard, item in segment:
                    by_shard.setdefault(shard, []).append((pos, item))
                segment.clear()
                stats.parallel_segments += 1
                futures = [
                    executor.submit(
                        self._run_shard_slice, shard, items, batch_size
                    )
                    for shard, items in by_shard.items()
                ]
                # Wait for every slice even if one fails: a worker must
                # never still be running once the barrier returns.
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append((future.result(), None))
                    except BaseException as exc:  # noqa: BLE001
                        outcomes.append((None, exc))
                errors = [exc for _out, exc in outcomes if exc is not None]
                recorded: list[tuple[int, list[CheckReport]]] = []
                for out, exc in outcomes:
                    if exc is not None:
                        continue
                    pairs, fetch_delta = out
                    stats.remote_round_trips += fetch_delta
                    recorded.extend(pairs)
                for pos, reports in sorted(recorded, key=lambda p: p[0]):
                    stats.updates += 1
                    stats.record_reports(reports, self.apply_on_unknown)
                    results_map[pos] = reports
                if errors:
                    raise errors[0]

            position = -1
            for position, update in enumerate(updates):
                if self._cross_shard_modification(update) is not None:
                    run_segment()
                    stats.fences += 1
                    results_map[position] = self._process_split_modification(
                        update
                    )
                    continue
                shard = self.shard_of(update)
                if self._requires_fence(shard, update.predicate):
                    run_segment()
                    stats.fences += 1
                    reports = self._process_on_shard(shard, update)
                    stats.updates += 1
                    stats.record_reports(reports, self.apply_on_unknown)
                    results_map[position] = reports
                    continue
                segment.append((position, shard, update))
            run_segment()
        self._sync_gauges()
        return [results_map[index] for index in range(position + 1)]

    def resolve_pending(self) -> list[tuple[Update, list[CheckReport]]]:
        """Drain every shard's deferred-verdict queue as one global FIFO.

        The single-session drain's soundness argument (quarantine all
        optimistic unverified facts, then settle oldest-first against
        verified state only) holds site-wide, not per shard: a spanning
        re-check reads sibling slices through the union view, so a
        sibling's unverified optimistic fact would contaminate it.  The
        drain therefore pins materializations and quarantines across
        **all** shards first (newest-first on the shared sequence
        clock) and settles globally oldest-first — always the smallest
        still-eligible sequence number among the shard queues.  Partial
        recovery works exactly as in the single-session drain: a fetch
        failure attributing its failed ``sites`` marks only those sites
        dark and the global walk continues, skipping entries that need a
        dark site or whose settle would not commute with an already
        skipped entry (the dark/blocked sets are shared across the
        shards — the compiler, and hence the commutation guard, is);
        an unattributed failure (an entry whose overlapped escalation
        future is still in flight counts: the drain must not settle from
        data it does not have yet) stops the walk as before.  Every
        still-queued reversal is re-applied on the way out.  The drain
        always settles through the *blocking* fetch source, never the
        async queue.
        Returns ``(update, final_reports)`` pairs in settle order; never
        raises on an unreachable remote.
        """
        sessions = self.sessions
        pinned = [session._pin_pending_materializations() for session in sessions]
        quarantined: list[dict[int, UndoToken]] = [{} for _ in sessions]
        settled: list[PendingVerdict] = []
        try:
            timeline = sorted(
                (
                    (entry.seq, index, entry)
                    for index, session in enumerate(sessions)
                    for entry in session._pending
                ),
                reverse=True,
            )
            for seq, index, entry in timeline:
                reversal = sessions[index]._quarantine_entry(entry)
                if reversal is not None:
                    quarantined[index][seq] = reversal
            dark: set[str] = set()
            blocked: set[str] = set()
            skipped: set[int] = set()
            while True:
                head = None
                for index, session in enumerate(sessions):
                    for position, entry in enumerate(session._pending):
                        if entry.seq in skipped:
                            continue
                        if head is None or entry.seq < head[0]:
                            head = (entry.seq, index, position, entry)
                if head is None:
                    break
                seq, index, position, entry = head
                session = sessions[index]
                if session._drain_blocked(entry, dark, blocked):
                    skipped.add(seq)
                    blocked.add(entry.update.predicate)
                    continue
                before = session.stats.remote_fetches
                try:
                    entry = session._settle_at(
                        position,
                        self._drain_source,
                        CheckLevel.FULL_DATABASE,
                        quarantined[index],
                    )
                except RemoteUnavailableError as exc:
                    failed = set(exc.sites) or session._entry_site_needs(entry)
                    if not failed:
                        break
                    dark |= failed
                    skipped.add(seq)
                    blocked.add(entry.update.predicate)
                    continue
                self.stats.remote_round_trips += (
                    session.stats.remote_fetches - before
                )
                settled.append(entry)
        finally:
            # Shard databases are disjoint, so per-shard redo order is
            # physically equivalent to the global one.
            for index, session in enumerate(sessions):
                session._redo_quarantined(quarantined[index])
                session._unpin_materializations(pinned[index])
        results: list[tuple[Update, list[CheckReport]]] = []
        for entry in settled:
            reports = entry.ordered_reports(self.constraints)
            self.stats.deferred_resolved += 1
            deciding = (
                max(report.level for report in reports)
                if reports
                else CheckLevel.CONSTRAINTS_ONLY
            )
            self.stats.resolved_at_level[deciding] += 1
            if any(r.outcome is Outcome.VIOLATED for r in reports):
                self.stats.rejected += 1
            results.append((entry.update, reports))
        self._sync_gauges()
        return results

    def _sync_gauges(self) -> None:
        sync_session_gauges(
            self.stats, self.sessions, self.compiler, self.remote_link
        )
        self.stats.deferred_rolled_back = sum(
            session.stats.deferred_rolled_back for session in self.sessions
        )
