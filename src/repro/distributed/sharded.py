"""Sharded check sessions: partition the local site, keep the verdicts.

The paper's protocol distinguishes *local* data (cheap, always
reachable) from *remote* data (expensive, possibly unreachable).  A
large local site is itself often partitioned — by predicate, or by key
range within a predicate — across processes that each want to run the
Section 2 level pipeline over their own slice.  :class:`ShardedChecker`
does exactly that while preserving the protocol's verdicts:

* the local database is split into disjoint per-shard
  :class:`~repro.datalog.database.Database` slices
  (:meth:`~repro.distributed.site.Site.partition`), one
  :class:`~repro.core.session.CheckSession` per shard, all sharing one
  read-only :class:`~repro.core.compiler.ConstraintCompiler` (the
  subsumption analysis, level-1 verdict LRU, and local test plans are
  database-independent, hence shard-safe);
* every update is routed to its owning shard; constraints are
  classified **shard-local** (decidable inside one shard — the
  maintained-materialization fast path) vs **spanning** (site-local but
  crossing shards — settled against a lazily materialized cross-shard
  union view, still at ``WITH_LOCAL_DATA``, since sibling-shard data is
  part of the same site and can never defer) vs **remote** (escalating
  off-site exactly as unsharded);
* deferred verdicts keep their *global* ordering: the shard sessions
  share one sequence counter, so the drain quarantines optimistic facts
  newest-first and settles oldest-first **across** shards — byte-for-
  byte the unsharded FIFO semantics.

The win is maintenance locality: an update's delta pass touches only
its shard's materializations, so the summed per-shard maintenance work
is strictly below one session maintaining everything (measured by
``benchmarks/bench_sharded.py``).

With ``parallelism > 1`` the checker additionally converts shard
independence into wall-clock overlap: updates whose constraint
footprint is confined to their owning shard run concurrently on a
thread pool, one worker per shard, while updates that would read across
shards (spanning or mixed constraints, split predicates, cross-shard
modifications) act as **fences** — the scheduler drains the open
parallel segment first and runs them alone.  Verdicts stay byte-
identical to the serial checker (see DESIGN.md §9 for the fence
argument); ``benchmarks/bench_parallel.py`` measures the overlap.
"""

from __future__ import annotations

import itertools
import zlib
from bisect import bisect_right
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.terms import Variable
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import (
    MATERIALIZATION_LIMIT,
    CheckSession,
    PendingVerdict,
)
from repro.datalog.database import Database, UndoToken
from repro.distributed.checker import resolve_escalation_link
from repro.distributed.rebalance import (
    RebalancePlan,
    RebalancePolicy,
    ShardLoadTracker,
    extract_range,
    inject_range,
    propose_split,
    routing_values,
)
from repro.distributed.faults import CrashInjector
from repro.distributed.remote import RemoteLink
from repro.distributed.site import FederatedDatabase
from repro.distributed.stats import ProtocolStats, sync_session_gauges
from repro.errors import RemoteUnavailableError, ReproError
from repro.updates.update import Insertion, Modification, Update

#: outcome severity for merging the two halves of a decomposed
#: cross-shard modification into one per-constraint report
_OUTCOME_SEVERITY = {
    Outcome.SATISFIED: 0,
    Outcome.UNKNOWN: 1,
    Outcome.DEFERRED: 2,
    Outcome.VIOLATED: 3,
}

__all__ = ["PredicatePartitioner", "KeyRangePartitioner", "ShardedChecker"]


class PredicatePartitioner:
    """Assign each site-local predicate wholly to one shard.

    Predicates known up front are dealt round-robin over their sorted
    order (balanced and deterministic); a predicate first seen later
    hashes to a stable slot.
    """

    def __init__(self, shards: int, predicates: Iterable[str] = ()) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._assigned: dict[str, int] = {
            predicate: index % shards
            for index, predicate in enumerate(sorted(predicates))
        }

    #: predicates split *across* shards by value (none for this class)
    @property
    def split_predicates(self) -> frozenset[str]:
        return frozenset()

    def owner(self, predicate: str, values: Optional[tuple] = None) -> int:
        """The shard index owning ``predicate(values)``."""
        slot = self._assigned.get(predicate)
        if slot is None:
            # Stable across processes (unlike the salted builtin hash).
            slot = zlib.crc32(predicate.encode("utf-8")) % self.shards
            self._assigned[predicate] = slot
        return slot

    def owned_predicates(self, predicates: Iterable[str]) -> list[set[str]]:
        """Partition *predicates* into per-shard ownership sets (split
        predicates belong to no single shard)."""
        owned: list[set[str]] = [set() for _ in range(self.shards)]
        for predicate in predicates:
            if predicate not in self.split_predicates:
                owned[self.owner(predicate)].add(predicate)
        return owned


class KeyRangePartitioner(PredicatePartitioner):
    """A :class:`PredicatePartitioner` that additionally splits selected
    predicates *across* shards by their first column.

    ``boundaries[pred]`` gives ``shards - 1`` sorted cut points; a fact
    with first value ``v`` lands in the shard whose range contains it
    (``bisect``).  A split predicate belongs to no single shard: every
    shard holds a slice, every session treats it as peer data, and
    constraints over it are settled against the cross-shard union view.
    """

    def __init__(
        self,
        shards: int,
        boundaries: dict[str, Sequence],
        predicates: Iterable[str] = (),
    ) -> None:
        super().__init__(shards, predicates)
        self._boundaries: dict[str, tuple] = {}
        for predicate, cuts in boundaries.items():
            self.set_boundaries(predicate, cuts)

    def set_boundaries(self, predicate: str, cuts: Sequence) -> None:
        """Install (or replace) the cut vector of a split predicate.

        Live rebalancing moves cut points at a fence; the routing
        contract is the constructor's: ``shards - 1`` sorted cuts.
        """
        cuts = tuple(cuts)
        if len(cuts) != self.shards - 1:
            raise ValueError(
                f"key-range split of {predicate!r} needs {self.shards - 1} "
                f"boundaries for {self.shards} shards, got {len(cuts)}"
            )
        if list(cuts) != sorted(cuts):
            raise ValueError(
                f"key-range boundaries for {predicate!r} must be sorted"
            )
        self._boundaries[predicate] = cuts

    def boundaries(self, predicate: str) -> tuple:
        """The current cut vector of a split predicate."""
        return self._boundaries[predicate]

    @property
    def split_predicates(self) -> frozenset[str]:
        return frozenset(self._boundaries)

    def owner(self, predicate: str, values: Optional[tuple] = None) -> int:
        cuts = self._boundaries.get(predicate)
        if cuts is None:
            return super().owner(predicate, values)
        if not values:
            raise ValueError(
                f"{predicate!r} is key-range split: routing needs the fact"
            )
        return bisect_right(cuts, values[0])


class _StagedEffectLog:
    """Per-shard ``CheckSession.effect_log`` for thread-parallel journaling.

    A pool-thread session emits effect records at settle time, but the
    journal must commit them in contiguous stream order — so this stand-in
    stages each record into the shared
    :class:`~repro.durability.journal.OrderedJournalCommitter` under the
    stream position the driver queued for it (:meth:`begin_slice`), and
    the committer flushes whatever prefix the races have made contiguous.
    ``safe_point`` is a no-op: the committer accounts sync/checkpoint
    cadence per *committed* record, not per settled one.
    """

    __slots__ = ("committer", "_positions")

    def __init__(self, committer) -> None:
        self.committer = committer
        self._positions: deque[int] = deque()

    def begin_slice(self, positions: Iterable[int]) -> None:
        """Queue the journal positions of the slice about to stream."""
        self._positions.extend(positions)

    def record_update(self, update, reports, applied, token, entry) -> None:
        if self._positions:
            pos = self._positions.popleft()
        else:
            # Positionless path (direct ``process()`` between streams):
            # synchronous, so the next unstaged position is this record's.
            pos = self.committer.reserve_next()
        self.committer.stage(
            pos, ("u", update, list(reports), applied, token, entry)
        )

    def safe_point(self) -> None:
        pass


class ShardedChecker:
    """Enforce constraints over a predicate-partitioned local site.

    The protocol-facing surface matches :class:`DistributedChecker`
    (``process`` / ``check_stream`` / ``resolve_pending`` / ``stats``),
    and the verdicts match a single unsharded
    :class:`~repro.core.session.CheckSession` over the union database:
    shard-local constraints take the maintained-materialization path,
    spanning constraints read the lazily built union view at the same
    ``WITH_LOCAL_DATA`` level, and remote escalation (including DEFERRED
    degradation and the drain) behaves identically because sibling-shard
    fetches can never fail.
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: FederatedDatabase,
        shards: int = 2,
        partitioner: Optional[PredicatePartitioner] = None,
        use_interval_datalog: bool = False,
        apply_on_unknown: bool = True,
        remote_link: Optional[RemoteLink] = None,
        max_materializations: Optional[int] = MATERIALIZATION_LIMIT,
        parallelism: int = 1,
        overlap_remote: bool = False,
        session_factory: Optional[Callable[..., CheckSession]] = None,
        remote_links: Optional[Mapping[str, RemoteLink]] = None,
        parallel_fanout: bool = True,
        snapshot_ttl: Optional[float] = None,
        site_ttls: Optional[Mapping[str, float]] = None,
        executor: str = "thread",
        rebalance: Optional[RebalancePolicy | bool] = None,
        chaos: Optional[CrashInjector] = None,
        max_worker_restarts: int = 2,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if executor == "process":
            if overlap_remote:
                raise ValueError(
                    "overlap_remote requires the thread executor: an async "
                    "fetch future cannot cross the process boundary"
                )
            if session_factory is not None:
                raise ValueError(
                    "session_factory requires the thread executor: live "
                    "sessions cannot cross the process boundary"
                )
        resolved = resolve_escalation_link(
            sites, remote_link, remote_links,
            parallel_fanout=parallel_fanout,
            snapshot_ttl=snapshot_ttl,
            site_ttls=site_ttls,
        )
        if overlap_remote and resolved is None:
            raise ValueError(
                "overlap_remote needs a RemoteLink (the raw site has no "
                "async fetch queue)"
            )
        self.sites = sites
        self.site_predicates = frozenset(sites.local_predicates)
        if partitioner is None:
            partitioner = PredicatePartitioner(shards, self.site_predicates)
        self.partitioner = partitioner
        self.shards = partitioner.shards
        self.compiler = ConstraintCompiler(
            constraints, self.site_predicates, use_interval_datalog,
            site_of=sites.site_of,
        )
        self.constraints = self.compiler.constraints
        self.apply_on_unknown = apply_on_unknown
        self.max_materializations = max_materializations
        self.remote_link = resolved
        self.parallelism = parallelism
        self.overlap_remote = overlap_remote
        self.executor = executor
        self.stats = ProtocolStats()
        #: named crash-point injector (chaos testing; see faults.py)
        self.chaos = chaos
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be non-negative")
        #: process-executor supervision: worker respawns allowed per
        #: shard before ShardWorkerCrashed propagates
        self.max_worker_restarts = max_worker_restarts
        #: attached durability sink (see :meth:`attach_effect_log`)
        self._effect_log = None
        #: ordered commit front for parallel/process journaling
        self._committer = None

        self._shard_dbs = sites.local.partition(
            self.partitioner.owner, self.shards
        )
        owned = self.partitioner.owned_predicates(self.site_predicates)
        self._owned = [frozenset(preds) for preds in owned]
        #: split predicates whose constraints confine every derivation
        #: to one key range — local to *every* shard, never fencing
        self.key_aligned: frozenset[str] = self._compute_key_aligned()
        #: (shard, predicate) -> does an update there fence the pipeline?
        self._fence_cache: dict[tuple[int, str], bool] = {}
        #: predicate -> could an update there escalate off-site?
        self._escalation_cache: dict[str, bool] = {}
        if rebalance is True:
            rebalance = RebalancePolicy()
        self.rebalance_policy: Optional[RebalancePolicy] = rebalance or None
        if self.rebalance_policy and not self.partitioner.split_predicates:
            raise ValueError(
                "rebalancing moves key-range cut points; the partitioner "
                "has no split predicates to move them on"
            )
        self._load_tracker = (
            ShardLoadTracker(self.shards, self.rebalance_policy)
            if self.rebalance_policy
            else None
        )
        self._since_rebalance = 0
        # One shared monotone arrival clock for PendingVerdict sequence
        # numbers: the drain's global newest-first quarantine /
        # oldest-first settle order is meaningful only on a cross-shard
        # timeline.  Each shard reads its own stamp cell, written just
        # before its session processes an update — under parallel
        # execution a shared next()-per-queue-call counter would hand
        # out numbers in settle-race order, not arrival order.
        self._arrival = itertools.count(1)
        self._seq_cells: list[list[int]] = [[0] for _ in range(self.shards)]
        self._procpool = None
        if executor == "process":
            # No parent-side sessions: the worker processes rebuild them
            # from ShardConfig pickles and the parent keeps only the
            # protocol surface (routing, fences, stats, the link).
            self.sessions: list[CheckSession] = []
            from repro.distributed.procpool import ProcessShardRunner

            self._procpool = ProcessShardRunner(self)
            # The slices were handed off; keeping them here would leave a
            # stale copy silently available to future code.
            self._shard_dbs = None
        else:
            if session_factory is None:
                session_factory = CheckSession
            self.sessions = [
                session_factory(
                    compiler=self.compiler,
                    local_predicates=owned[index] | self.key_aligned,
                    local_db=self._shard_dbs[index],
                    apply_on_unknown=apply_on_unknown,
                    max_materializations=max_materializations,
                    peer_predicates=(
                        self.site_predicates - owned[index] - self.key_aligned
                    ),
                    peer_source=self._peer_source(index),
                    seq_source=(lambda cell=self._seq_cells[index]: cell[0]),
                )
                for index in range(self.shards)
            ]
        if parallelism > 1 or executor == "process":
            # Force the per-constraint lazy engines/classifications on
            # this thread before any worker touches them (segment driver
            # threads consult the parent compiler in process mode too).
            self.compiler.prewarm()

    # -- topology ---------------------------------------------------------------
    def _compute_key_aligned(self) -> frozenset[str]:
        """Split predicates whose every derivation is confined to one
        key — hence to one shard's slice.

        A split predicate ``P`` is *key-aligned* when every non-subsumed
        constraint mentioning it (i) is a single rule, (ii) has
        site-local predicate footprint exactly ``{P}``, and (iii) keeps
        one shared key: every ``P``-literal in the rule — positive or
        negated — carries the same column-0 variable, bound by at least
        one positive ``P``-atom.  Any violation derivation then joins
        only ``P``-facts of a single key value, all of which live in the
        key's owning shard, so that shard's slice alone decides the
        constraint: the sessions treat ``P`` as *local* (maintained
        materializations, no union view) and updates on it never fence.
        A negated ``P``-literal is safe because its key variable is
        bound by a positive ``P``-atom against the own slice, so absence
        is only ever tested for keys the shard owns completely.
        """
        aligned: set[str] = set()
        for predicate in self.partitioner.split_predicates:
            if self._key_confined(predicate):
                aligned.add(predicate)
        return frozenset(aligned)

    def _key_confined(self, predicate: str) -> bool:
        for constraint in self.constraints:
            if predicate not in constraint.predicates():
                continue
            if self.compiler.compiled(constraint).subsumed:
                continue
            if not constraint.is_single_rule:
                return False
            site_part = constraint.predicates() & self.site_predicates
            if site_part != {predicate}:
                return False
            keys: set = set()
            positive_keys: set = set()
            for literal in constraint.as_rule().body:
                if isinstance(literal, Comparison):
                    continue
                if literal.predicate != predicate:
                    continue
                if not literal.args:
                    return False
                keys.add(literal.args[0])
                if isinstance(literal, Atom):
                    positive_keys.add(literal.args[0])
            if len(keys) != 1:
                return False
            (key,) = keys
            if not isinstance(key, Variable) or key not in positive_keys:
                return False
        return True

    def _peer_source(self, index: int) -> Callable[..., Database]:
        """A fetch over every *sibling* shard's slice — the lazily
        materialized part of the cross-shard union view (the caller's
        own slice is already its ``local_db``)."""

        def fetch(predicates: Optional[Iterable[str]] = None) -> Database:
            merged = Database()
            wanted = set(predicates) if predicates is not None else None
            for sibling, db in enumerate(self._shard_dbs):
                if sibling == index:
                    continue
                names = (
                    db.predicates() if wanted is None
                    else wanted & db.predicates()
                )
                for predicate in names:
                    for fact in db.facts(predicate):
                        merged.insert(predicate, fact)
            return merged

        return fetch

    def shard_of(self, update: Update) -> int:
        """The shard that owns *update* — and the validity checks that
        keep the shards disjoint: only site-local predicates may be
        updated.  A modification that moves a fact between shards has no
        single owner; :meth:`process` and :meth:`check_stream` decompose
        it into its delete/insert halves instead (this method still
        raises, for callers that need one index)."""
        predicate = update.predicate
        if predicate not in self.site_predicates:
            raise ValueError(
                f"update targets non-local predicate {predicate!r}; a "
                f"sharded checker owns only the local site"
            )
        if isinstance(update, Modification):
            old = self.partitioner.owner(predicate, update.old_values)
            new = self.partitioner.owner(predicate, update.new_values)
            if old != new:
                raise ValueError(
                    f"modification moves {predicate!r} fact across shards "
                    f"({old} -> {new}); process()/check_stream() decompose "
                    f"it into -old / +new halves under a fence"
                )
            return old
        return self.partitioner.owner(predicate, update.values)

    def _cross_shard_modification(self, update: Update) -> Optional[tuple[int, int]]:
        """``(delete_shard, insert_shard)`` when *update* is a
        modification whose halves land in different shards, else None."""
        if not isinstance(update, Modification):
            return None
        predicate = update.predicate
        if predicate not in self.site_predicates:
            return None
        old = self.partitioner.owner(predicate, update.old_values)
        new = self.partitioner.owner(predicate, update.new_values)
        return (old, new) if old != new else None

    def shard_local_constraints(self) -> dict[str, int]:
        """Constraints decidable wholly inside one shard, by name."""
        placed: dict[str, int] = {}
        for index in range(self.shards):
            local = self._owned[index] | self.key_aligned
            for constraint in self.constraints:
                if constraint.predicates() <= local:
                    placed[constraint.name] = index
        return placed

    def spanning_constraints(self) -> tuple[str, ...]:
        """Site-local constraints that cross shard boundaries — the only
        ones whose settlement reads the cross-shard union view."""
        placed = self.shard_local_constraints()
        return tuple(
            constraint.name
            for constraint in self.constraints
            if constraint.name not in placed
            and constraint.predicates() <= self.site_predicates
        )

    def remote_constraints(self) -> tuple[str, ...]:
        """Constraints mentioning true off-site predicates; these
        escalate (and may defer) exactly as in the unsharded protocol."""
        return tuple(
            constraint.name
            for constraint in self.constraints
            if not constraint.predicates() <= self.site_predicates
        )

    @property
    def remote_source(self) -> Callable[..., Database]:
        """Off-site escalation: the fault-tolerant link when configured,
        the raw metered remote site otherwise.  With ``overlap_remote``
        the in-stream source is the link's async queue — a slow-but-
        healthy fetch defers the update (future in tow) instead of
        stalling the stream."""
        if self.remote_link is not None:
            if self.overlap_remote:
                return self.remote_link.fetch_nowait
            return self.remote_link.fetch
        # No link resolves only in the single-remote case.
        return next(iter(self.sites.remotes.values())).snapshot

    @property
    def _drain_source(self) -> Callable[..., Database]:
        """The *blocking* fetch the drain settles against — never the
        async queue: a nowait raise mid-settle would leak an unconsumed
        future on the entry it was trying to settle."""
        if self.remote_link is not None:
            return self.remote_link.fetch
        return self.remote_source

    def local_database(self) -> Database:
        """The union of the shard slices — equal, update for update, to
        the single database an unsharded session would maintain."""
        if self._procpool is not None:
            return self._procpool.local_facts()
        merged = Database()
        for db in self._shard_dbs:
            for predicate in db.predicates():
                for fact in db.facts(predicate):
                    merged.insert(predicate, fact)
        return merged

    @property
    def pending_count(self) -> int:
        if self._procpool is not None:
            return self._procpool.pending_count()
        return sum(session.pending_count for session in self.sessions)

    def close(self) -> None:
        """Shut down the process-pool workers (thread mode: no-op).  The
        checker is unusable afterwards."""
        if self._procpool is not None:
            self._procpool.close()

    def __enter__(self) -> "ShardedChecker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- durability / chaos ------------------------------------------------------
    def _chaos_hit(self, name: str) -> None:
        """Visit a named crash point (no-op without an injector)."""
        if self.chaos is not None:
            self.chaos.hit(name)

    def attach_effect_log(self, writer) -> None:
        """Journal this checker's stream through *writer* (the
        ``CheckSession.effect_log`` protocol — see
        :class:`repro.durability.journal.JournalWriter`).

        The serial in-process configuration shares the writer across the
        shard sessions directly (updates settle in arrival order).  With
        ``parallelism > 1`` or the process executor, effects instead go
        through an :class:`~repro.durability.journal.OrderedJournalCommitter`
        — pool threads (or the process runner's drivers) stage records at
        settle time and the committer flushes the contiguous stream
        prefix; fence/flush barriers assert the prefix whole and cut any
        due checkpoint manifest (:meth:`_journal_barrier`).  Rebalances
        journal their cut-vector changes (:meth:`_apply_rebalance`); a
        cross-shard split modification is rejected at runtime because its
        delete/insert halves would write two journal records for one
        stream update.
        """
        self._effect_log = writer
        if self.parallelism > 1 or self._procpool is not None:
            from repro.durability.journal import OrderedJournalCommitter

            self._committer = OrderedJournalCommitter(writer)
            if self._procpool is not None:
                self._procpool.attach_journal(self._committer)
            else:
                for session in self.sessions:
                    session.effect_log = _StagedEffectLog(self._committer)
        else:
            for session in self.sessions:
                session.effect_log = writer

    def _journal_barrier(self) -> None:
        """Journal bookkeeping at a fence/flush barrier: every staged
        record must now be committed, and a deferred checkpoint cadence
        may fire (the in-memory state equals the committed prefix exactly
        here)."""
        if self._committer is not None:
            self._committer.barrier()

    # -- the protocol -----------------------------------------------------------
    def _process_on_shard(
        self,
        shard: int,
        update: Update,
        journal_pos: Optional[int] = None,
    ) -> list[CheckReport]:
        """Stamp the shard's arrival cell and run one update through its
        session (main-thread path; workers go through
        :meth:`_run_shard_slice`).  *journal_pos* is the stream position
        the update's journal record commits under when a parallel-mode
        journal is attached (``None`` routes through the positionless
        fallback)."""
        if self._procpool is not None:
            return self._procpool.run_one(shard, update, journal_pos=journal_pos)
        session = self.sessions[shard]
        if journal_pos is not None and isinstance(
            session.effect_log, _StagedEffectLog
        ):
            session.effect_log.begin_slice((journal_pos,))
        self._seq_cells[shard][0] = next(self._arrival)
        before = session.stats.remote_fetches
        reports = session.process(update, remote=self.remote_source)
        self.stats.remote_round_trips += (
            session.stats.remote_fetches - before
        )
        return reports

    def _backend_contains(
        self, shard: int, predicate: str, values: tuple
    ) -> bool:
        if self._procpool is not None:
            return self._procpool.contains(shard, predicate, values)
        return values in self._shard_dbs[shard].facts(predicate)

    def _backend_apply_unchecked(self, shard: int, update: Update) -> None:
        if self._procpool is not None:
            self._procpool.apply_unchecked(shard, update)
        else:
            self.sessions[shard].apply_unchecked(update)

    def process(self, update: Update) -> list[CheckReport]:
        """Route one update to its shard and run the level pipeline.

        A modification whose halves land in different shards is
        decomposed into its delete + insert halves (see
        :meth:`_process_split_modification`).
        """
        if self._rebalance_due:
            # process() is synchronous: between calls *is* a fence.
            self.maybe_rebalance()
        if self._cross_shard_modification(update) is not None:
            reports = self._process_split_modification(update)
        else:
            shard = self.shard_of(update)
            self._observe(shard, update)
            reports = self._process_on_shard(shard, update)
            self.stats.updates += 1
            self.stats.record_reports(reports, self.apply_on_unknown)
        self._sync_gauges()
        return reports

    def _process_split_modification(self, update: Update) -> list[CheckReport]:
        """Run a cross-shard modification as delete(old) then insert(new).

        The delete half runs first on the old fact's shard; if it is
        VIOLATED the modification is rejected whole and the insert half
        never runs.  Otherwise the insert half runs on the new fact's
        shard; if *it* is VIOLATED the already-applied delete is undone
        (the old fact is restored unchecked — removing a fact from the
        supported constraint classes cannot introduce a violation), so
        the modification stays atomic.  The restore is skipped when the
        delete half itself was DEFERRED or held: a deferred delete's
        token is owned by the pending queue and will be reconciled by
        the drain.  The per-constraint reports of both halves merge by
        outcome severity (VIOLATED > DEFERRED > UNKNOWN > SATISFIED).
        """
        if self._effect_log is not None:
            raise ReproError(
                f"cannot journal cross-shard modification {update}: its "
                "delete/insert halves would write two journal records for "
                "one stream update"
            )
        del_shard, ins_shard = self._cross_shard_modification(update)
        predicate = update.predicate
        deletion, insertion = update.deletion, update.insertion
        was_present = self._backend_contains(
            del_shard, predicate, update.old_values
        )

        self.stats.updates += 1
        self.stats.cross_shard_modifications += 1
        del_reports = self._process_on_shard(del_shard, deletion)
        del_rejected = any(
            r.outcome is Outcome.VIOLATED for r in del_reports
        )
        if del_rejected:
            self.stats.record_reports(del_reports, self.apply_on_unknown)
            return del_reports
        del_deferred = any(
            r.outcome is Outcome.DEFERRED for r in del_reports
        )
        del_held = not self.apply_on_unknown and any(
            r.outcome in (Outcome.UNKNOWN, Outcome.DEFERRED)
            for r in del_reports
        )

        ins_reports = self._process_on_shard(ins_shard, insertion)
        ins_rejected = any(
            r.outcome is Outcome.VIOLATED for r in ins_reports
        )
        if ins_rejected and was_present and not (del_deferred or del_held):
            self._backend_apply_unchecked(
                del_shard, Insertion(predicate, update.old_values)
            )

        merged: dict[str, CheckReport] = {r.constraint_name: r for r in del_reports}
        for report in ins_reports:
            other = merged[report.constraint_name]
            merged[report.constraint_name] = max(
                other,
                report,
                key=lambda r: (_OUTCOME_SEVERITY[r.outcome], r.level),
            )
        ordered = [merged[c.name] for c in self.constraints]
        self.stats.record_reports(ordered, self.apply_on_unknown)
        return ordered

    def check_stream(
        self,
        updates: Iterable[Update],
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Stream mode over the shards.

        Consecutive updates owned by the same shard form a run handed to
        that shard's :meth:`CheckSession.process_stream` — with a
        *batch_size*, coalesced maintenance batching (including the
        panic probe and exact replay) runs per shard.  A shard switch
        flushes the run first, so by the time a sibling's spanning check
        materializes the union view every earlier delta has already
        reached its slice (batched deltas hit the database eagerly);
        verdicts therefore match global per-update processing.
        Cross-shard modifications flush the run and decompose.

        With ``parallelism > 1`` — or the process executor, whose
        parallelism lives in the worker pool itself — the stream runs on
        the fence-scheduled path instead
        (:meth:`_check_stream_parallel`); verdicts are identical either
        way.
        """
        if self.parallelism > 1 or self._procpool is not None:
            return self._check_stream_parallel(updates, batch_size)
        results: list[list[CheckReport]] = []
        run: list[Update] = []
        run_shard: Optional[int] = None

        def flush() -> None:
            if not run:
                return
            session = self.sessions[run_shard]
            cell = self._seq_cells[run_shard]
            items = tuple(run)

            def feed():
                # process_stream pulls one update at a time, so the
                # stamp written here is the one _queue_pending reads if
                # that update defers.
                for item in items:
                    cell[0] = next(self._arrival)
                    yield item

            before = session.stats.remote_fetches
            run_results = session.process_stream(
                feed(), remote=self.remote_source, batch_size=batch_size
            )
            self.stats.remote_round_trips += (
                session.stats.remote_fetches - before
            )
            for reports in run_results:
                self.stats.updates += 1
                self.stats.record_reports(reports, self.apply_on_unknown)
            results.extend(run_results)
            run.clear()

        for update in updates:
            if self._rebalance_due:
                # Flush first: a rebalance changes routing, and the
                # accumulated run was routed under the old cuts.
                flush()
                run_shard = None
                self.maybe_rebalance()
            if self._cross_shard_modification(update) is not None:
                flush()
                run_shard = None
                results.append(self._process_split_modification(update))
                continue
            shard = self.shard_of(update)
            self._observe(shard, update)
            if run_shard is not None and shard != run_shard:
                flush()
            run_shard = shard
            run.append(update)
        flush()
        self._sync_gauges()
        return results

    # -- live rebalancing --------------------------------------------------------
    def _observe(self, shard: int, update: Update) -> None:
        """Feed the load gauges: one call per routed update, at routing
        time on the main thread (workers never touch the tracker)."""
        if self._load_tracker is None:
            return
        key = None
        if update.predicate in self.partitioner.split_predicates:
            values = routing_values(update)
            key = values[0] if values else None
        self._load_tracker.observe(shard, update.predicate, key)
        self._since_rebalance += 1

    @property
    def _rebalance_due(self) -> bool:
        return (
            self._load_tracker is not None
            and self._since_rebalance >= self.rebalance_policy.interval
        )

    def maybe_rebalance(self) -> Optional[RebalancePlan]:
        """Inspect the load gauges and, when one shard runs hot, move a
        cut point: split the hot shard's range at the median of its
        sampled keys and merge the coldest adjacent range pair
        (:func:`~repro.distributed.rebalance.propose_split`).

        Must only be called at a fence — no open parallel segment, no
        accumulated serial run — because routing and shard data change
        together (the stream drivers call it between segments; direct
        callers get the same guarantee from ``process()`` being
        synchronous).  Returns the applied plan, or None when the load
        is even or no productive cut exists.
        """
        if self._load_tracker is None:
            return None
        self._since_rebalance = 0
        tracker = self._load_tracker
        hot = tracker.hot_shard()
        if hot is None:
            return None
        loads = tracker.loads()
        plan = None
        for predicate in sorted(self.partitioner.split_predicates):
            plan = propose_split(
                predicate,
                self.partitioner.boundaries(predicate),
                hot,
                tracker.keys(predicate, hot),
                loads,
            )
            if plan is not None:
                break
        if plan is None:
            return None
        self._apply_rebalance(plan)
        return plan

    def _apply_rebalance(self, plan: RebalancePlan) -> None:
        """The two-phase fence handoff: migrate every key range whose
        owner changes, then install the new cut vector.  Data moves
        before routing changes, so a crash between the phases leaves
        facts findable under the *old* routing — never orphaned."""
        moved = 0
        for lo, hi, source, target in plan.moves:
            moved += self._migrate_range(plan.predicate, lo, hi, source, target)
        # Chaos point: data has moved but the old routing is still live
        # — the window the two-phase argument above is about.
        self._chaos_hit("mid-rebalance")
        self.partitioner.set_boundaries(plan.predicate, plan.new_cuts)
        self.stats.rebalances += 1
        self.stats.rebalance_moved_facts += moved
        if self._effect_log is not None:
            self._effect_log.record_rebalance(plan.predicate, plan.new_cuts)
        # The window describes the topology that no longer exists.
        self._load_tracker.reset()

    def _migrate_range(
        self, predicate: str, lo, hi, source: int, target: int
    ) -> int:
        """Move the half-open key range ``[lo, hi)`` of *predicate* from
        *source* to *target*: verified facts plus reversed pending
        entries out, replayed in sequence order on the other side.
        Returns the number of facts moved."""
        if source == target:
            return 0
        if self._procpool is not None:
            return self._procpool.migrate_range(
                predicate, lo, hi, source, target
            )
        out = extract_range(self.sessions[source], predicate, lo, hi)
        inject_range(
            self.sessions[target], predicate, out["facts"], out["entries"]
        )
        return len(out["facts"])

    # -- parallel execution ------------------------------------------------------
    def _requires_fence(self, shard: int, predicate: str) -> bool:
        """Must an update of *predicate* on *shard* run alone?

        No fence is needed exactly when every non-subsumed constraint
        mentioning the predicate keeps its site-local footprint inside
        the owning shard: then the whole pipeline — including a remote
        escalation's ``own-slice + remote`` merge — reads nothing a
        concurrent sibling could be writing.  A constraint whose
        site-local part crosses shards (spanning, or remote-mixed)
        would materialize the cross-shard union view, so it fences;
        split predicates are owned by no shard and fence *unless* they
        are key-aligned (see :meth:`_compute_key_aligned`), in which
        case the owning shard's slice already decides every constraint
        and the update is as parallel-safe as a shard-local one.
        """
        key = (shard, predicate)
        cached = self._fence_cache.get(key)
        if cached is not None:
            return cached
        owned = self._owned[shard] | self.key_aligned
        fence = predicate not in owned
        if not fence:
            for constraint in self.constraints:
                if self.compiler.compiled(constraint).subsumed:
                    continue
                if predicate not in constraint.predicates():
                    continue
                site_part = constraint.predicates() & self.site_predicates
                if not site_part <= owned:
                    fence = True
                    break
        self._fence_cache[key] = fence
        return fence

    def _escalation_capable(self, predicate: str) -> bool:
        """Could an update of *predicate* escalate off-site?  True when
        some non-subsumed constraint mentioning it reads beyond the
        local site.  The process executor runs such updates as singleton
        commands: a worker stream must never defer mid-slice."""
        cached = self._escalation_cache.get(predicate)
        if cached is not None:
            return cached
        capable = False
        for constraint in self.constraints:
            if self.compiler.compiled(constraint).subsumed:
                continue
            if predicate not in constraint.predicates():
                continue
            if not constraint.predicates() <= self.site_predicates:
                capable = True
                break
        self._escalation_cache[predicate] = capable
        return capable

    def _run_shard_slice(
        self,
        shard: int,
        items: Sequence[tuple[int, Update]],
        batch_size: Optional[int],
        journal_base: Optional[int] = None,
    ) -> tuple[list[tuple[int, list[CheckReport]]], int]:
        """Worker body: one shard's slice of a parallel segment.

        Runs on a pool thread.  Touches only this shard's session,
        database, and stamp cell (plus the locked shared compiler /
        link / sites), and returns ``(position, reports)`` pairs and the
        session's remote-fetch delta so the main thread folds protocol
        stats in stream order at the barrier — pool threads never mutate
        ``ProtocolStats``.  When a journal is attached, *journal_base* is
        the committed stream position before this stream started: each
        slice item at enumerate position ``pos`` journals at
        ``journal_base + pos + 1``, emitted here at settle time and
        committed by the shared reorder buffer in stream order.
        """
        if self._procpool is not None:
            return self._procpool.run_slice(
                shard, items, batch_size, journal_base=journal_base
            )
        session = self.sessions[shard]
        if journal_base is not None and isinstance(
            session.effect_log, _StagedEffectLog
        ):
            session.effect_log.begin_slice(
                journal_base + pos + 1 for pos, _item in items
            )
        cell = self._seq_cells[shard]

        def feed():
            for _pos, item in items:
                cell[0] = next(self._arrival)
                yield item

        before = session.stats.remote_fetches
        run_results = session.process_stream(
            feed(), remote=self.remote_source, batch_size=batch_size
        )
        pairs = [
            (pos, reports)
            for (pos, _item), reports in zip(items, run_results)
        ]
        return pairs, session.stats.remote_fetches - before

    def _check_stream_parallel(
        self,
        updates: Iterable[Update],
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Fence-scheduled parallel stream execution.

        Updates accumulate into a *segment* as long as none of them
        fences; a segment is executed by handing each shard's slice
        (stream order preserved within the shard) to the pool at once
        and waiting for all of them — shard databases are disjoint and
        fence-free updates by construction read nothing outside their
        shard, so the interleaving cannot change any verdict.  A fencing
        update drains the segment (a counted barrier) and then runs
        alone on this thread with every worker idle, exactly as in
        serial mode.  Stats are folded only at barriers, in stream
        order, so the counters match the serial run's.
        """
        results_map: dict[int, list[CheckReport]] = {}
        segment: list[tuple[int, int, Update]] = []  # (pos, shard, update)
        stats = self.stats
        # Journal base: stream position already committed before this
        # stream starts (0 fresh, the recovered pos on --resume); slice
        # item `pos` journals at `jbase + pos + 1`.
        jbase = (
            self._committer.prefix_pos if self._committer is not None else None
        )
        # Thread mode: the pool threads *are* the parallelism.  Process
        # mode: they are cheap drivers blocking on worker futures, one
        # per shard, so the worker processes all stream concurrently.
        workers = (
            self.shards
            if self._procpool is not None
            else min(self.parallelism, self.shards)
        )
        with ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="shard",
        ) as executor:

            def run_segment() -> None:
                if not segment:
                    return
                by_shard: dict[int, list[tuple[int, Update]]] = {}
                for pos, shard, item in segment:
                    by_shard.setdefault(shard, []).append((pos, item))
                segment.clear()
                stats.parallel_segments += 1
                # Chaos point: the segment is about to fan out — nothing
                # of it has run, the journal prefix ends at the previous
                # barrier.
                self._chaos_hit("segment-dispatch")
                futures = [
                    executor.submit(
                        self._run_shard_slice, shard, items, batch_size, jbase
                    )
                    for shard, items in by_shard.items()
                ]
                # Wait for every slice even if one fails: a worker must
                # never still be running once the barrier returns.
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append((future.result(), None))
                    except BaseException as exc:  # noqa: BLE001
                        outcomes.append((None, exc))
                errors = [exc for _out, exc in outcomes if exc is not None]
                # Chaos point: every slice has settled (and journalled),
                # but the barrier has not folded stats or checkpointed.
                self._chaos_hit("barrier-fold")
                recorded: list[tuple[int, list[CheckReport]]] = []
                for out, exc in outcomes:
                    if exc is not None:
                        continue
                    pairs, fetch_delta = out
                    stats.remote_round_trips += fetch_delta
                    recorded.extend(pairs)
                for pos, reports in sorted(recorded, key=lambda p: p[0]):
                    stats.updates += 1
                    stats.record_reports(reports, self.apply_on_unknown)
                    results_map[pos] = reports
                if errors:
                    raise errors[0]
                self._journal_barrier()

            position = -1
            for position, update in enumerate(updates):
                if self._rebalance_due:
                    # Barrier first: the open segment was routed under
                    # the old cuts and must land before they move.
                    run_segment()
                    self.maybe_rebalance()
                if self._cross_shard_modification(update) is not None:
                    run_segment()
                    stats.fences += 1
                    self._chaos_hit("fence")
                    results_map[position] = self._process_split_modification(
                        update
                    )
                    continue
                shard = self.shard_of(update)
                self._observe(shard, update)
                if self._requires_fence(shard, update.predicate):
                    run_segment()
                    stats.fences += 1
                    # Chaos point: the segment barrier has drained but
                    # the fencing update has not run yet.
                    self._chaos_hit("fence")
                    reports = self._process_on_shard(
                        shard, update,
                        journal_pos=(
                            None if jbase is None else jbase + position + 1
                        ),
                    )
                    stats.updates += 1
                    stats.record_reports(reports, self.apply_on_unknown)
                    results_map[position] = reports
                    self._journal_barrier()
                    continue
                segment.append((position, shard, update))
            run_segment()
        self._sync_gauges()
        return [results_map[index] for index in range(position + 1)]

    def resolve_pending(self) -> list[tuple[Update, list[CheckReport]]]:
        """Drain every shard's deferred-verdict queue as one global FIFO.

        The single-session drain's soundness argument (quarantine all
        optimistic unverified facts, then settle oldest-first against
        verified state only) holds site-wide, not per shard: a spanning
        re-check reads sibling slices through the union view, so a
        sibling's unverified optimistic fact would contaminate it.  The
        drain therefore pins materializations and quarantines across
        **all** shards first (newest-first on the shared sequence
        clock) and settles globally oldest-first — always the smallest
        still-eligible sequence number among the shard queues.  Partial
        recovery works exactly as in the single-session drain: a fetch
        failure attributing its failed ``sites`` marks only those sites
        dark and the global walk continues, skipping entries that need a
        dark site or whose settle would not commute with an already
        skipped entry (the dark/blocked sets are shared across the
        shards — the compiler, and hence the commutation guard, is);
        an unattributed failure (an entry whose overlapped escalation
        future is still in flight counts: the drain must not settle from
        data it does not have yet) stops the walk as before.  Every
        still-queued reversal is re-applied on the way out.  The drain
        always settles through the *blocking* fetch source, never the
        async queue.
        Returns ``(update, final_reports)`` pairs in settle order; never
        raises on an unreachable remote.

        With the process executor the same walk runs parent-coordinated
        over the worker queues
        (:meth:`~repro.distributed.procpool.ProcessShardRunner.resolve_pending`).
        """
        if self._procpool is not None:
            results = self._procpool.resolve_pending()
            for _update, reports in results:
                self._record_resolved(reports)
            self._sync_gauges()
            return results
        sessions = self.sessions
        quarantined: list[dict[int, UndoToken]] = [{} for _ in sessions]
        settled: list[PendingVerdict] = []
        with ExitStack() as pins:
            for session in sessions:
                pins.enter_context(session._pinned_pending_materializations())
            try:
                timeline = sorted(
                    (
                        (entry.seq, index, entry)
                        for index, session in enumerate(sessions)
                        for entry in session._pending
                    ),
                    reverse=True,
                )
                for seq, index, entry in timeline:
                    reversal = sessions[index]._quarantine_entry(entry)
                    if reversal is not None:
                        quarantined[index][seq] = reversal
                # Chaos point: every optimistic fact is reversed but
                # nothing has settled — a hard kill here must resume to
                # the pre-drain state and re-drain from scratch.
                self._chaos_hit("mid-drain")
                dark: set[str] = set()
                blocked: set[str] = set()
                skipped: set[int] = set()
                while True:
                    head = None
                    for index, session in enumerate(sessions):
                        for position, entry in enumerate(session._pending):
                            if entry.seq in skipped:
                                continue
                            if head is None or entry.seq < head[0]:
                                head = (entry.seq, index, position, entry)
                    if head is None:
                        break
                    seq, index, position, entry = head
                    session = sessions[index]
                    if session._drain_blocked(entry, dark, blocked):
                        skipped.add(seq)
                        blocked.add(entry.update.predicate)
                        continue
                    before = session.stats.remote_fetches
                    try:
                        entry = session._settle_at(
                            position,
                            self._drain_source,
                            CheckLevel.FULL_DATABASE,
                            quarantined[index],
                        )
                    except RemoteUnavailableError as exc:
                        failed = set(exc.sites) or session._entry_site_needs(entry)
                        if not failed:
                            break
                        dark |= failed
                        skipped.add(seq)
                        blocked.add(entry.update.predicate)
                        continue
                    self.stats.remote_round_trips += (
                        session.stats.remote_fetches - before
                    )
                    settled.append(entry)
            finally:
                # Shard databases are disjoint, so per-shard redo order is
                # physically equivalent to the global one.
                for index, session in enumerate(sessions):
                    session._redo_quarantined(quarantined[index])
        results: list[tuple[Update, list[CheckReport]]] = []
        for entry in settled:
            reports = entry.ordered_reports(self.constraints)
            self._record_resolved(reports)
            results.append((entry.update, reports))
        self._sync_gauges()
        return results

    def _record_resolved(self, reports: list[CheckReport]) -> None:
        """Fold one settled entry's final reports into the protocol
        stats (shared by the thread- and process-mode drains)."""
        self.stats.deferred_resolved += 1
        deciding = (
            max(report.level for report in reports)
            if reports
            else CheckLevel.CONSTRAINTS_ONLY
        )
        self.stats.resolved_at_level[deciding] += 1
        if any(r.outcome is Outcome.VIOLATED for r in reports):
            self.stats.rejected += 1

    def _sync_gauges(self) -> None:
        if self._procpool is not None:
            sessions, compiler = self._procpool.stats_view()
        else:
            sessions, compiler = self.sessions, self.compiler
        sync_session_gauges(
            self.stats, sessions, compiler, self.remote_link
        )
        self.stats.deferred_rolled_back = sum(
            session.stats.deferred_rolled_back for session in sessions
        )
