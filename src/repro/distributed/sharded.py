"""Sharded check sessions: partition the local site, keep the verdicts.

The paper's protocol distinguishes *local* data (cheap, always
reachable) from *remote* data (expensive, possibly unreachable).  A
large local site is itself often partitioned — by predicate, or by key
range within a predicate — across processes that each want to run the
Section 2 level pipeline over their own slice.  :class:`ShardedChecker`
does exactly that while preserving the protocol's verdicts:

* the local database is split into disjoint per-shard
  :class:`~repro.datalog.database.Database` slices
  (:meth:`~repro.distributed.site.Site.partition`), one
  :class:`~repro.core.session.CheckSession` per shard, all sharing one
  read-only :class:`~repro.core.compiler.ConstraintCompiler` (the
  subsumption analysis, level-1 verdict LRU, and local test plans are
  database-independent, hence shard-safe);
* every update is routed to its owning shard; constraints are
  classified **shard-local** (decidable inside one shard — the
  maintained-materialization fast path) vs **spanning** (site-local but
  crossing shards — settled against a lazily materialized cross-shard
  union view, still at ``WITH_LOCAL_DATA``, since sibling-shard data is
  part of the same site and can never defer) vs **remote** (escalating
  off-site exactly as unsharded);
* deferred verdicts keep their *global* ordering: the shard sessions
  share one sequence counter, so the drain quarantines optimistic facts
  newest-first and settles oldest-first **across** shards — byte-for-
  byte the unsharded FIFO semantics.

The win is maintenance locality: an update's delta pass touches only
its shard's materializations, so the summed per-shard maintenance work
is strictly below one session maintaining everything (measured by
``benchmarks/bench_sharded.py``).
"""

from __future__ import annotations

import itertools
import zlib
from bisect import bisect_right
from typing import Callable, Iterable, Optional, Sequence

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import (
    MATERIALIZATION_LIMIT,
    CheckSession,
    PendingVerdict,
)
from repro.datalog.database import Database, UndoToken
from repro.distributed.checker import ProtocolStats, sync_session_gauges
from repro.distributed.remote import RemoteLink
from repro.distributed.site import TwoSiteDatabase
from repro.errors import RemoteUnavailableError
from repro.updates.update import Modification, Update

__all__ = ["PredicatePartitioner", "KeyRangePartitioner", "ShardedChecker"]


class PredicatePartitioner:
    """Assign each site-local predicate wholly to one shard.

    Predicates known up front are dealt round-robin over their sorted
    order (balanced and deterministic); a predicate first seen later
    hashes to a stable slot.
    """

    def __init__(self, shards: int, predicates: Iterable[str] = ()) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._assigned: dict[str, int] = {
            predicate: index % shards
            for index, predicate in enumerate(sorted(predicates))
        }

    #: predicates split *across* shards by value (none for this class)
    @property
    def split_predicates(self) -> frozenset[str]:
        return frozenset()

    def owner(self, predicate: str, values: Optional[tuple] = None) -> int:
        """The shard index owning ``predicate(values)``."""
        slot = self._assigned.get(predicate)
        if slot is None:
            # Stable across processes (unlike the salted builtin hash).
            slot = zlib.crc32(predicate.encode("utf-8")) % self.shards
            self._assigned[predicate] = slot
        return slot

    def owned_predicates(self, predicates: Iterable[str]) -> list[set[str]]:
        """Partition *predicates* into per-shard ownership sets (split
        predicates belong to no single shard)."""
        owned: list[set[str]] = [set() for _ in range(self.shards)]
        for predicate in predicates:
            if predicate not in self.split_predicates:
                owned[self.owner(predicate)].add(predicate)
        return owned


class KeyRangePartitioner(PredicatePartitioner):
    """A :class:`PredicatePartitioner` that additionally splits selected
    predicates *across* shards by their first column.

    ``boundaries[pred]`` gives ``shards - 1`` sorted cut points; a fact
    with first value ``v`` lands in the shard whose range contains it
    (``bisect``).  A split predicate belongs to no single shard: every
    shard holds a slice, every session treats it as peer data, and
    constraints over it are settled against the cross-shard union view.
    """

    def __init__(
        self,
        shards: int,
        boundaries: dict[str, Sequence],
        predicates: Iterable[str] = (),
    ) -> None:
        super().__init__(shards, predicates)
        self._boundaries = {
            predicate: tuple(cuts) for predicate, cuts in boundaries.items()
        }
        for predicate, cuts in self._boundaries.items():
            if len(cuts) != shards - 1:
                raise ValueError(
                    f"key-range split of {predicate!r} needs {shards - 1} "
                    f"boundaries for {shards} shards, got {len(cuts)}"
                )
            if list(cuts) != sorted(cuts):
                raise ValueError(
                    f"key-range boundaries for {predicate!r} must be sorted"
                )

    @property
    def split_predicates(self) -> frozenset[str]:
        return frozenset(self._boundaries)

    def owner(self, predicate: str, values: Optional[tuple] = None) -> int:
        cuts = self._boundaries.get(predicate)
        if cuts is None:
            return super().owner(predicate, values)
        if not values:
            raise ValueError(
                f"{predicate!r} is key-range split: routing needs the fact"
            )
        return bisect_right(cuts, values[0])


class ShardedChecker:
    """Enforce constraints over a predicate-partitioned local site.

    The protocol-facing surface matches :class:`DistributedChecker`
    (``process`` / ``check_stream`` / ``resolve_pending`` / ``stats``),
    and the verdicts match a single unsharded
    :class:`~repro.core.session.CheckSession` over the union database:
    shard-local constraints take the maintained-materialization path,
    spanning constraints read the lazily built union view at the same
    ``WITH_LOCAL_DATA`` level, and remote escalation (including DEFERRED
    degradation and the drain) behaves identically because sibling-shard
    fetches can never fail.
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: TwoSiteDatabase,
        shards: int = 2,
        partitioner: Optional[PredicatePartitioner] = None,
        use_interval_datalog: bool = False,
        apply_on_unknown: bool = True,
        remote_link: Optional[RemoteLink] = None,
        max_materializations: Optional[int] = MATERIALIZATION_LIMIT,
    ) -> None:
        self.sites = sites
        self.site_predicates = frozenset(sites.local_predicates)
        if partitioner is None:
            partitioner = PredicatePartitioner(shards, self.site_predicates)
        self.partitioner = partitioner
        self.shards = partitioner.shards
        self.compiler = ConstraintCompiler(
            constraints, self.site_predicates, use_interval_datalog
        )
        self.constraints = self.compiler.constraints
        self.apply_on_unknown = apply_on_unknown
        self.remote_link = remote_link
        self.stats = ProtocolStats()

        self._shard_dbs = sites.local.partition(
            self.partitioner.owner, self.shards
        )
        owned = self.partitioner.owned_predicates(self.site_predicates)
        # One shared monotone clock for PendingVerdict sequence numbers:
        # the drain's global newest-first quarantine / oldest-first settle
        # order is meaningful only on a cross-shard timeline.
        self._seq = itertools.count(1)
        seq_source = lambda: next(self._seq)  # noqa: E731
        self.sessions: list[CheckSession] = [
            CheckSession(
                compiler=self.compiler,
                local_predicates=owned[index],
                local_db=self._shard_dbs[index],
                apply_on_unknown=apply_on_unknown,
                max_materializations=max_materializations,
                peer_predicates=self.site_predicates - owned[index],
                peer_source=self._peer_source(index),
                seq_source=seq_source,
            )
            for index in range(self.shards)
        ]

    # -- topology ---------------------------------------------------------------
    def _peer_source(self, index: int) -> Callable[..., Database]:
        """A fetch over every *sibling* shard's slice — the lazily
        materialized part of the cross-shard union view (the caller's
        own slice is already its ``local_db``)."""

        def fetch(predicates: Optional[Iterable[str]] = None) -> Database:
            merged = Database()
            wanted = set(predicates) if predicates is not None else None
            for sibling, db in enumerate(self._shard_dbs):
                if sibling == index:
                    continue
                names = (
                    db.predicates() if wanted is None
                    else wanted & db.predicates()
                )
                for predicate in names:
                    for fact in db.facts(predicate):
                        merged.insert(predicate, fact)
            return merged

        return fetch

    def shard_of(self, update: Update) -> int:
        """The shard that owns *update* — and the validity checks that
        keep the shards disjoint: only site-local predicates may be
        updated, and a modification may not move a fact between shards
        (split it into an explicit deletion + insertion instead)."""
        predicate = update.predicate
        if predicate not in self.site_predicates:
            raise ValueError(
                f"update targets non-local predicate {predicate!r}; a "
                f"sharded checker owns only the local site"
            )
        if isinstance(update, Modification):
            old = self.partitioner.owner(predicate, update.old_values)
            new = self.partitioner.owner(predicate, update.new_values)
            if old != new:
                raise ValueError(
                    f"modification moves {predicate!r} fact across shards "
                    f"({old} -> {new}); split it into -old / +new updates"
                )
            return old
        return self.partitioner.owner(predicate, update.values)

    def shard_local_constraints(self) -> dict[str, int]:
        """Constraints decidable wholly inside one shard, by name."""
        placed: dict[str, int] = {}
        for index, session in enumerate(self.sessions):
            for constraint in self.constraints:
                if constraint.predicates() <= session.local_predicates:
                    placed[constraint.name] = index
        return placed

    def spanning_constraints(self) -> tuple[str, ...]:
        """Site-local constraints that cross shard boundaries — the only
        ones whose settlement reads the cross-shard union view."""
        placed = self.shard_local_constraints()
        return tuple(
            constraint.name
            for constraint in self.constraints
            if constraint.name not in placed
            and constraint.predicates() <= self.site_predicates
        )

    def remote_constraints(self) -> tuple[str, ...]:
        """Constraints mentioning true off-site predicates; these
        escalate (and may defer) exactly as in the unsharded protocol."""
        return tuple(
            constraint.name
            for constraint in self.constraints
            if not constraint.predicates() <= self.site_predicates
        )

    @property
    def remote_source(self) -> Callable[..., Database]:
        """Off-site escalation: the fault-tolerant link when configured,
        the raw metered remote site otherwise."""
        if self.remote_link is not None:
            return self.remote_link.fetch
        return self.sites.remote.snapshot

    def local_database(self) -> Database:
        """The union of the shard slices — equal, update for update, to
        the single database an unsharded session would maintain."""
        merged = Database()
        for db in self._shard_dbs:
            for predicate in db.predicates():
                for fact in db.facts(predicate):
                    merged.insert(predicate, fact)
        return merged

    @property
    def pending_count(self) -> int:
        return sum(session.pending_count for session in self.sessions)

    # -- the protocol -----------------------------------------------------------
    def process(self, update: Update) -> list[CheckReport]:
        """Route one update to its shard and run the level pipeline."""
        session = self.sessions[self.shard_of(update)]
        before = session.stats.remote_fetches
        reports = session.process(update, remote=self.remote_source)
        self.stats.updates += 1
        self.stats.remote_round_trips += (
            session.stats.remote_fetches - before
        )
        self.stats.record_reports(reports, self.apply_on_unknown)
        self._sync_gauges()
        return reports

    def check_stream(
        self,
        updates: Iterable[Update],
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Stream mode over the shards.

        Consecutive updates owned by the same shard form a run handed to
        that shard's :meth:`CheckSession.process_stream` — with a
        *batch_size*, coalesced maintenance batching (including the
        panic probe and exact replay) runs per shard.  A shard switch
        flushes the run first, so by the time a sibling's spanning check
        materializes the union view every earlier delta has already
        reached its slice (batched deltas hit the database eagerly);
        verdicts therefore match global per-update processing.
        """
        results: list[list[CheckReport]] = []
        run: list[Update] = []
        run_shard: Optional[int] = None

        def flush() -> None:
            if not run:
                return
            session = self.sessions[run_shard]
            before = session.stats.remote_fetches
            run_results = session.process_stream(
                run, remote=self.remote_source, batch_size=batch_size
            )
            self.stats.remote_round_trips += (
                session.stats.remote_fetches - before
            )
            for reports in run_results:
                self.stats.updates += 1
                self.stats.record_reports(reports, self.apply_on_unknown)
            results.extend(run_results)
            run.clear()

        for update in updates:
            shard = self.shard_of(update)
            if run_shard is not None and shard != run_shard:
                flush()
            run_shard = shard
            run.append(update)
        flush()
        self._sync_gauges()
        return results

    def resolve_pending(self) -> list[tuple[Update, list[CheckReport]]]:
        """Drain every shard's deferred-verdict queue as one global FIFO.

        The single-session drain's soundness argument (quarantine all
        optimistic unverified facts, then settle oldest-first against
        verified state only) holds site-wide, not per shard: a spanning
        re-check reads sibling slices through the union view, so a
        sibling's unverified optimistic fact would contaminate it.  The
        drain therefore pins materializations and quarantines across
        **all** shards first (newest-first on the shared sequence
        clock), settles globally oldest-first — always the smallest head
        sequence number among the shard queues — and stops at the first
        unreachable fetch, re-applying every still-queued reversal.
        Returns ``(update, final_reports)`` pairs in settle order; never
        raises on an unreachable remote.
        """
        sessions = self.sessions
        pinned = [session._pin_pending_materializations() for session in sessions]
        quarantined: list[dict[int, UndoToken]] = [{} for _ in sessions]
        settled: list[PendingVerdict] = []
        try:
            timeline = sorted(
                (
                    (entry.seq, index, entry)
                    for index, session in enumerate(sessions)
                    for entry in session._pending
                ),
                reverse=True,
            )
            for seq, index, entry in timeline:
                reversal = sessions[index]._quarantine_entry(entry)
                if reversal is not None:
                    quarantined[index][seq] = reversal
            while True:
                heads = [
                    (session._pending[0].seq, index)
                    for index, session in enumerate(sessions)
                    if session._pending
                ]
                if not heads:
                    break
                _, index = min(heads)
                session = sessions[index]
                before = session.stats.remote_fetches
                try:
                    entry = session._settle_head(
                        self.remote_source,
                        CheckLevel.FULL_DATABASE,
                        quarantined[index],
                    )
                except RemoteUnavailableError:
                    break
                self.stats.remote_round_trips += (
                    session.stats.remote_fetches - before
                )
                settled.append(entry)
        finally:
            # Shard databases are disjoint, so per-shard redo order is
            # physically equivalent to the global one.
            for index, session in enumerate(sessions):
                session._redo_quarantined(quarantined[index])
                session._unpin_materializations(pinned[index])
        results: list[tuple[Update, list[CheckReport]]] = []
        for entry in settled:
            reports = entry.ordered_reports(self.constraints)
            self.stats.deferred_resolved += 1
            deciding = (
                max(report.level for report in reports)
                if reports
                else CheckLevel.CONSTRAINTS_ONLY
            )
            self.stats.resolved_at_level[deciding] += 1
            if any(r.outcome is Outcome.VIOLATED for r in reports):
                self.stats.rejected += 1
            results.append((entry.update, reports))
        self._sync_gauges()
        return results

    def _sync_gauges(self) -> None:
        sync_session_gauges(
            self.stats, self.sessions, self.compiler, self.remote_link
        )
        self.stats.deferred_rolled_back = sum(
            session.stats.deferred_rolled_back for session in self.sessions
        )
