"""Injectable fault models for the simulated remote site.

The paper's premise — "accessing remote data may be expensive or
impossible" (Section 1) — has so far only been *expensive* in this
reproduction (``Site.cost_per_read``).  This module adds *impossible*:
an :class:`UnreliableRemote` wraps a :class:`~repro.distributed.site.Site`
behind a :class:`FaultModel` that injects, deterministically from a
seeded RNG:

* **latency** per attempt (base + uniform jitter), charged to the
  simulated clock rather than slept;
* **transient failures** at a configurable per-attempt rate;
* **hard-outage windows** over the attempt index, during which every
  attempt fails regardless of the transient rate;
* **stale snapshots** at a configurable rate: the previous successful
  snapshot is served instead of a fresh read, modelling a lagging
  replica.

Every failure raises :class:`~repro.errors.RemoteUnavailableError` with a
``reason`` tag, so the retry/breaker policy in
:mod:`repro.distributed.remote` and the statistics layer can classify
them.  Nothing here sleeps; determinism makes fault scenarios replayable
in tests and benchmarks.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.datalog.database import Database
from repro.distributed.site import Site
from repro.errors import InjectedCrash, RemoteUnavailableError

__all__ = [
    "CrashInjector",
    "CrashPoint",
    "FaultModel",
    "UnreliableRemote",
    "parse_outage",
    "parse_crash_point",
]


def parse_outage(spec: str) -> tuple[int, int]:
    """Parse an outage window ``"START:LENGTH"`` into ``(start, end)``
    attempt indices (half-open)."""
    try:
        start_text, length_text = spec.split(":", 1)
        start, length = int(start_text), int(length_text)
    except ValueError as exc:
        raise ValueError(
            f"outage window must look like START:LENGTH, got {spec!r}"
        ) from exc
    if start < 0 or length <= 0:
        raise ValueError(f"outage window must be non-negative with positive length: {spec!r}")
    return (start, start + length)


#: crash-point names the checkers recognise; anything else in a
#: :class:`CrashPoint` is silently never hit.
KNOWN_CRASH_POINTS = (
    "update",
    "fence",
    "mid-drain",
    "mid-rebalance",
    "segment-dispatch",
    "barrier-fold",
    "worker-revive",
)


@dataclass(frozen=True)
class CrashPoint:
    """A named place in the protocol where an injected crash fires.

    The checkers call :meth:`CrashInjector.hit` at a handful of
    well-known points — ``"update"`` (the journal writer's safe point
    after an update is fully recorded), ``"fence"`` (the parallel
    barrier), ``"mid-drain"`` (between the quarantine and settle phases
    of ``resolve_pending``), ``"mid-rebalance"`` (between the two
    migration phases of a rebalance), ``"segment-dispatch"`` (as a
    parallel segment is about to fan out to the executor, before any of
    it runs), ``"barrier-fold"`` (inside the barrier, after the slices
    settled but before their stats/records fold), and
    ``"worker-revive"`` (after a crashed process-pool worker has been
    respawned and rehydrated, before its interrupted command is
    retried).  The point fires on its
    *occurrence*-th visit (1-based), once.  ``hard=True`` delivers a
    real ``SIGKILL`` to the current process — the honest model of a
    crash, used by the CLI and the kill-and-resume smoke test;
    ``hard=False`` raises :class:`~repro.errors.InjectedCrash` instead,
    which in-process tests can catch.
    """

    name: str
    occurrence: int = 1
    hard: bool = False

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1: {self.occurrence}")


def parse_crash_point(spec: str, hard: bool = False) -> CrashPoint:
    """Parse ``"POINT"`` or ``"POINT:N"`` into a :class:`CrashPoint`."""
    name, _, occurrence_text = spec.partition(":")
    occurrence = 1
    if occurrence_text:
        try:
            occurrence = int(occurrence_text)
        except ValueError as exc:
            raise ValueError(
                f"crash point must look like POINT or POINT:N, got {spec!r}"
            ) from exc
    if name not in KNOWN_CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {name!r}; known: {', '.join(KNOWN_CRASH_POINTS)}"
        )
    return CrashPoint(name, occurrence, hard)


class CrashInjector:
    """Counts visits to named crash points and fires the armed ones.

    One injector is shared per checker run; each
    :class:`CrashPoint` fires at most once (so a resumed run that
    passes the same point again does not re-crash — the CLI arms a
    fresh injector only when ``--crash-at`` is given, never on
    ``--resume``).
    """

    def __init__(self, points: Iterable[CrashPoint] = ()) -> None:
        self.points = list(points)
        self._visits: dict[str, int] = {}
        self._fired: set[tuple[str, int]] = set()
        #: called (if set) immediately before a hard kill, so the
        #: journal writer can flush its buffered tail first — a hard
        #: crash loses *unsynced* work by design, but the CLI smoke
        #: wants the crash point itself to be a clean boundary.
        self.pre_kill = None

    def hit(self, name: str) -> None:
        """Record one visit to *name*; crash if an armed point matches."""
        count = self._visits.get(name, 0) + 1
        self._visits[name] = count
        for point in self.points:
            key = (point.name, point.occurrence)
            if point.name != name or key in self._fired:
                continue
            if count != point.occurrence:
                continue
            self._fired.add(key)
            if point.hard:
                if self.pre_kill is not None:
                    self.pre_kill()
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedCrash(name, count)

    def visits(self, name: str) -> int:
        return self._visits.get(name, 0)


@dataclass(frozen=True)
class FaultModel:
    """What can go wrong on one remote attempt, and how often.

    All randomness flows from ``seed``; two runs with the same model and
    the same attempt sequence inject identical faults.

    Parameters
    ----------
    failure_rate:
        Probability in ``[0, 1]`` that an attempt fails transiently.
    latency / latency_jitter:
        Simulated seconds each attempt takes: ``latency`` plus a uniform
        draw from ``[0, latency_jitter]``.  Compared against the fetch
        policy's per-attempt timeout; never slept.
    outages:
        ``(start, end)`` half-open windows over the *attempt index*
        (0-based count of snapshot attempts against this remote).  Inside
        a window every attempt hard-fails — the model of a link that is
        down, not merely lossy.
    stale_rate:
        Probability that a *successful* attempt serves the previously
        fetched snapshot instead of a fresh read (a lagging replica).
        Off by default; staleness can legitimately change verdicts.
    seed:
        RNG seed; the model is deterministic given it.
    """

    failure_rate: float = 0.0
    latency: float = 0.0
    latency_jitter: float = 0.0
    outages: tuple[tuple[int, int], ...] = ()
    stale_rate: float = 0.0
    seed: int = 0
    #: named protocol points where an injected crash fires (chaos
    #: testing; see :class:`CrashPoint`) — not a network fault, but the
    #: same "what can go wrong" configuration surface
    crash_points: tuple[CrashPoint, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1]: {self.failure_rate}")
        if not 0.0 <= self.stale_rate <= 1.0:
            raise ValueError(f"stale_rate must be in [0, 1]: {self.stale_rate}")
        if self.latency < 0 or self.latency_jitter < 0:
            raise ValueError("latency and latency_jitter must be non-negative")
        for window in self.outages:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise ValueError(f"malformed outage window: {window!r}")

    def in_outage(self, attempt: int) -> bool:
        return any(start <= attempt < end for start, end in self.outages)


class UnreliableRemote:
    """A remote :class:`Site` seen through a faulty network.

    Each :meth:`snapshot` call is one attempt: it draws a latency, checks
    the outage windows and the transient-failure rate, and either raises
    :class:`~repro.errors.RemoteUnavailableError` or returns the site's
    (possibly predicate-restricted, possibly stale) snapshot.  Failures
    are decided *before* the site is touched, so a failed attempt meters
    nothing — the request never arrived.

    Attributes
    ----------
    attempts / failures / stale_served:
        Attempt-level accounting (the retry/breaker policy keeps its own
        fetch-level statistics).
    last_latency:
        The latency drawn for the most recent attempt, successful or not;
        the link adds it to the simulated clock.
    """

    def __init__(self, site: Site, faults: Optional[FaultModel] = None) -> None:
        self.site = site
        self.faults = faults if faults is not None else FaultModel()
        self._rng = random.Random(self.faults.seed)
        self.attempts = 0
        self.failures = 0
        self.stale_served = 0
        self.last_latency = 0.0
        self._last_good: Optional[Database] = None

    def snapshot(
        self,
        predicates: Iterable[str] | None = None,
        timeout: Optional[float] = None,
    ) -> Database:
        """One attempt at fetching a remote snapshot.

        Raises :class:`~repro.errors.RemoteUnavailableError` with reason
        ``"outage"``, ``"transient"``, or ``"timeout"``; otherwise
        returns the snapshot (restricted to *predicates* when given).
        """
        attempt = self.attempts
        self.attempts += 1
        faults = self.faults
        self.last_latency = faults.latency
        if faults.latency_jitter:
            self.last_latency += self._rng.uniform(0.0, faults.latency_jitter)
        if faults.in_outage(attempt):
            self.failures += 1
            raise RemoteUnavailableError(
                f"remote {self.site.name!r} is down (outage window, attempt {attempt})",
                reason="outage",
            )
        if faults.failure_rate and self._rng.random() < faults.failure_rate:
            self.failures += 1
            raise RemoteUnavailableError(
                f"transient failure reaching remote {self.site.name!r} "
                f"(attempt {attempt})",
                reason="transient",
            )
        if timeout is not None and self.last_latency > timeout:
            self.failures += 1
            raise RemoteUnavailableError(
                f"remote {self.site.name!r} answered in {self.last_latency:.3f}s "
                f"> timeout {timeout:.3f}s (attempt {attempt})",
                reason="timeout",
            )
        if (
            faults.stale_rate
            and self._last_good is not None
            and self._rng.random() < faults.stale_rate
        ):
            self.stale_served += 1
            stale = self._last_good
            if predicates is not None:
                return stale.restricted_to(set(predicates))
            return stale.copy()
        fresh = self.site.snapshot(predicates=predicates)
        # Cache a full snapshot only when one was taken; a restricted
        # fetch must not masquerade as the whole remote state later.
        if predicates is None:
            self._last_good = fresh.copy()
        return fresh

    def predicates(self) -> set[str]:
        return self.site.predicates()

    def state_dict(self) -> dict:
        """JSON-serializable mutable state for checkpoint manifests.

        The fault RNG state is the Mersenne Twister triple from
        ``random.Random.getstate()``; restoring it replays the exact
        same latency/failure/staleness draws, which is what makes a
        resumed faulted run byte-identical to an uninterrupted one.
        The cached last-good snapshot is stored as plain fact lists.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss_next],
            "attempts": self.attempts,
            "failures": self.failures,
            "stale_served": self.stale_served,
            "last_latency": self.last_latency,
            "last_good": (
                None
                if self._last_good is None
                else {
                    predicate: sorted(
                        (list(fact) for fact in self._last_good.facts(predicate)),
                        key=repr,
                    )
                    for predicate in sorted(self._last_good.predicates())
                }
            ),
        }

    def restore_state(self, state: dict) -> None:
        version, internal, gauss_next = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss_next))
        self.attempts = state["attempts"]
        self.failures = state["failures"]
        self.stale_served = state["stale_served"]
        self.last_latency = state["last_latency"]
        last_good = state["last_good"]
        self._last_good = (
            None
            if last_good is None
            else Database(
                {
                    predicate: [tuple(fact) for fact in facts]
                    for predicate, facts in last_good.items()
                }
            )
        )

    def __repr__(self) -> str:
        return f"UnreliableRemote({self.site!r}, {self.faults!r})"
