"""Injectable fault models for the simulated remote site.

The paper's premise — "accessing remote data may be expensive or
impossible" (Section 1) — has so far only been *expensive* in this
reproduction (``Site.cost_per_read``).  This module adds *impossible*:
an :class:`UnreliableRemote` wraps a :class:`~repro.distributed.site.Site`
behind a :class:`FaultModel` that injects, deterministically from a
seeded RNG:

* **latency** per attempt (base + uniform jitter), charged to the
  simulated clock rather than slept;
* **transient failures** at a configurable per-attempt rate;
* **hard-outage windows** over the attempt index, during which every
  attempt fails regardless of the transient rate;
* **stale snapshots** at a configurable rate: the previous successful
  snapshot is served instead of a fresh read, modelling a lagging
  replica.

Every failure raises :class:`~repro.errors.RemoteUnavailableError` with a
``reason`` tag, so the retry/breaker policy in
:mod:`repro.distributed.remote` and the statistics layer can classify
them.  Nothing here sleeps; determinism makes fault scenarios replayable
in tests and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.datalog.database import Database
from repro.distributed.site import Site
from repro.errors import RemoteUnavailableError

__all__ = ["FaultModel", "UnreliableRemote", "parse_outage"]


def parse_outage(spec: str) -> tuple[int, int]:
    """Parse an outage window ``"START:LENGTH"`` into ``(start, end)``
    attempt indices (half-open)."""
    try:
        start_text, length_text = spec.split(":", 1)
        start, length = int(start_text), int(length_text)
    except ValueError as exc:
        raise ValueError(
            f"outage window must look like START:LENGTH, got {spec!r}"
        ) from exc
    if start < 0 or length <= 0:
        raise ValueError(f"outage window must be non-negative with positive length: {spec!r}")
    return (start, start + length)


@dataclass(frozen=True)
class FaultModel:
    """What can go wrong on one remote attempt, and how often.

    All randomness flows from ``seed``; two runs with the same model and
    the same attempt sequence inject identical faults.

    Parameters
    ----------
    failure_rate:
        Probability in ``[0, 1]`` that an attempt fails transiently.
    latency / latency_jitter:
        Simulated seconds each attempt takes: ``latency`` plus a uniform
        draw from ``[0, latency_jitter]``.  Compared against the fetch
        policy's per-attempt timeout; never slept.
    outages:
        ``(start, end)`` half-open windows over the *attempt index*
        (0-based count of snapshot attempts against this remote).  Inside
        a window every attempt hard-fails — the model of a link that is
        down, not merely lossy.
    stale_rate:
        Probability that a *successful* attempt serves the previously
        fetched snapshot instead of a fresh read (a lagging replica).
        Off by default; staleness can legitimately change verdicts.
    seed:
        RNG seed; the model is deterministic given it.
    """

    failure_rate: float = 0.0
    latency: float = 0.0
    latency_jitter: float = 0.0
    outages: tuple[tuple[int, int], ...] = ()
    stale_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1]: {self.failure_rate}")
        if not 0.0 <= self.stale_rate <= 1.0:
            raise ValueError(f"stale_rate must be in [0, 1]: {self.stale_rate}")
        if self.latency < 0 or self.latency_jitter < 0:
            raise ValueError("latency and latency_jitter must be non-negative")
        for window in self.outages:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise ValueError(f"malformed outage window: {window!r}")

    def in_outage(self, attempt: int) -> bool:
        return any(start <= attempt < end for start, end in self.outages)


class UnreliableRemote:
    """A remote :class:`Site` seen through a faulty network.

    Each :meth:`snapshot` call is one attempt: it draws a latency, checks
    the outage windows and the transient-failure rate, and either raises
    :class:`~repro.errors.RemoteUnavailableError` or returns the site's
    (possibly predicate-restricted, possibly stale) snapshot.  Failures
    are decided *before* the site is touched, so a failed attempt meters
    nothing — the request never arrived.

    Attributes
    ----------
    attempts / failures / stale_served:
        Attempt-level accounting (the retry/breaker policy keeps its own
        fetch-level statistics).
    last_latency:
        The latency drawn for the most recent attempt, successful or not;
        the link adds it to the simulated clock.
    """

    def __init__(self, site: Site, faults: Optional[FaultModel] = None) -> None:
        self.site = site
        self.faults = faults if faults is not None else FaultModel()
        self._rng = random.Random(self.faults.seed)
        self.attempts = 0
        self.failures = 0
        self.stale_served = 0
        self.last_latency = 0.0
        self._last_good: Optional[Database] = None

    def snapshot(
        self,
        predicates: Iterable[str] | None = None,
        timeout: Optional[float] = None,
    ) -> Database:
        """One attempt at fetching a remote snapshot.

        Raises :class:`~repro.errors.RemoteUnavailableError` with reason
        ``"outage"``, ``"transient"``, or ``"timeout"``; otherwise
        returns the snapshot (restricted to *predicates* when given).
        """
        attempt = self.attempts
        self.attempts += 1
        faults = self.faults
        self.last_latency = faults.latency
        if faults.latency_jitter:
            self.last_latency += self._rng.uniform(0.0, faults.latency_jitter)
        if faults.in_outage(attempt):
            self.failures += 1
            raise RemoteUnavailableError(
                f"remote {self.site.name!r} is down (outage window, attempt {attempt})",
                reason="outage",
            )
        if faults.failure_rate and self._rng.random() < faults.failure_rate:
            self.failures += 1
            raise RemoteUnavailableError(
                f"transient failure reaching remote {self.site.name!r} "
                f"(attempt {attempt})",
                reason="transient",
            )
        if timeout is not None and self.last_latency > timeout:
            self.failures += 1
            raise RemoteUnavailableError(
                f"remote {self.site.name!r} answered in {self.last_latency:.3f}s "
                f"> timeout {timeout:.3f}s (attempt {attempt})",
                reason="timeout",
            )
        if (
            faults.stale_rate
            and self._last_good is not None
            and self._rng.random() < faults.stale_rate
        ):
            self.stale_served += 1
            stale = self._last_good
            if predicates is not None:
                return stale.restricted_to(set(predicates))
            return stale.copy()
        fresh = self.site.snapshot(predicates=predicates)
        # Cache a full snapshot only when one was taken; a restricted
        # fetch must not masquerade as the whole remote state later.
        if predicates is None:
            self._last_good = fresh.copy()
        return fresh

    def predicates(self) -> set[str]:
        return self.site.predicates()

    def __repr__(self) -> str:
        return f"UnreliableRemote({self.site!r}, {self.faults!r})"
