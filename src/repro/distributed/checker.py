"""The distributed checking protocol: local first, remote only if needed.

"Only if this test is inconclusive do we need to make a second test that
looks at the remote data" (Section 1).  :class:`DistributedChecker` runs
the :class:`~repro.core.engine.PartialInfoChecker` pipeline against the
local site and escalates to the metered remote site only on UNKNOWN,
recording per-level statistics — the measurements behind the M1
benchmark.

Two driving modes share one compiled constraint set:

* :meth:`DistributedChecker.process` — the original per-update protocol,
  stateless between calls;
* :meth:`DistributedChecker.check_stream` — stream mode, built on an
  incremental :class:`~repro.core.session.CheckSession` that maintains
  constraint materializations by delta instead of re-evaluating, and
  reports reuse counters through :class:`ProtocolStats`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Union

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.engine import PartialInfoChecker
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import CheckSession, PendingVerdict
from repro.core.transaction import Transaction
from repro.datalog.database import Database, UndoToken
from repro.distributed.remote import FederationLink, RemoteLink
from repro.distributed.site import FederatedDatabase, Site, TwoSiteDatabase
from repro.distributed.stats import (  # noqa: F401  (re-exported)
    _SESSION_GAUGES,
    ProtocolStats,
    sync_session_gauges,
)
from repro.errors import RemoteUnavailableError
from repro.updates.update import Update

__all__ = [
    "ProtocolStats",
    "DistributedChecker",
    "sync_session_gauges",
    "resolve_escalation_link",
]

#: the escalation surface a checker fetches through — one link or a
#: whole-federation fan-out (both expose fetch / fetch_nowait /
#: wait_inflight / close / stats)
EscalationLink = Union[RemoteLink, FederationLink]


def resolve_escalation_link(
    sites: FederatedDatabase,
    remote_link: Optional[RemoteLink] = None,
    remote_links: Optional[Mapping[str, RemoteLink]] = None,
    parallel_fanout: bool = True,
    snapshot_ttl: Optional[float] = None,
    site_ttls: Optional[Mapping[str, float]] = None,
) -> Optional[EscalationLink]:
    """Resolve the escalation link for a (possibly federated) database.

    With a single remote the legacy surface is preserved exactly: the
    scalar *remote_link* (or the one entry of *remote_links*) is used
    as-is, and ``None`` means the checker falls back to the raw metered
    ``remote.snapshot`` path.  With several remotes the result is always
    a :class:`~repro.distributed.remote.FederationLink` — each site gets
    its entry from *remote_links* or, when absent, a default fault-free
    :class:`~repro.distributed.remote.RemoteLink` wrapper; a scalar
    *remote_link* is rejected as ambiguous.
    """
    remotes = sites.remotes
    if remote_links is not None:
        unknown = set(remote_links) - set(remotes)
        if unknown:
            raise ValueError(
                f"remote_links names unknown sites: {sorted(unknown)}"
            )
    if len(remotes) == 1:
        only = next(iter(remotes))
        if remote_link is not None and remote_links:
            raise ValueError("pass remote_link or remote_links, not both")
        if remote_links:
            return remote_links.get(only)
        return remote_link
    if remote_link is not None:
        raise ValueError(
            "a federated database has several remotes; pass per-site "
            "remote_links instead of a single remote_link"
        )
    links = {
        name: (remote_links or {}).get(name) or RemoteLink(site)
        for name, site in remotes.items()
    }
    return FederationLink(
        links,
        sites.site_of,
        parallel=parallel_fanout,
        snapshot_ttl=snapshot_ttl,
        site_ttls=site_ttls,
    )


class DistributedChecker:
    """Enforce constraints at the local site of a federated database.

    *sites* may be the classic :class:`TwoSiteDatabase` or any
    :class:`FederatedDatabase`; with several remotes every escalation
    fetch fans out across the involved sites through a
    :class:`~repro.distributed.remote.FederationLink` (see
    :func:`resolve_escalation_link` for how *remote_link* /
    *remote_links* resolve).
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: FederatedDatabase,
        use_interval_datalog: bool = False,
        apply_on_unknown: bool = True,
        remote_link: Optional[RemoteLink] = None,
        overlap_remote: bool = False,
        remote_links: Optional[Mapping[str, RemoteLink]] = None,
        parallel_fanout: bool = True,
        snapshot_ttl: Optional[float] = None,
        site_ttls: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.sites = sites
        resolved = resolve_escalation_link(
            sites, remote_link, remote_links,
            parallel_fanout=parallel_fanout,
            snapshot_ttl=snapshot_ttl,
            site_ttls=site_ttls,
        )
        if overlap_remote and resolved is None:
            raise ValueError(
                "overlap_remote needs a RemoteLink (the raw site has no "
                "async fetch queue)"
            )
        self.checker = PartialInfoChecker(
            constraints,
            local_predicates=sites.local_predicates,
            use_interval_datalog=use_interval_datalog,
            site_of=sites.site_of,
        )
        self.apply_on_unknown = apply_on_unknown
        #: when set, every remote fetch goes through the link's
        #: retry/backoff/breaker policy (a FederationLink's per-site
        #: policies with several remotes); exhausted fetches degrade the
        #: verdict to DEFERRED instead of raising
        self.remote_link: Optional[EscalationLink] = resolved
        #: issue in-stream escalation fetches through the link's async
        #: queue: the update defers immediately (future in tow) and the
        #: stream keeps flowing while the fetch is in flight
        self.overlap_remote = overlap_remote
        self.stats = ProtocolStats()
        self._session: Optional[CheckSession] = None

    @property
    def session(self) -> CheckSession:
        """The lazily created stream session; shares the checker's
        compiled constraints and operates directly on the local site."""
        if self._session is None:
            self._session = CheckSession(
                compiler=self.checker.compiler,
                local_db=self.sites.local.unmetered(),
                apply_on_unknown=self.apply_on_unknown,
            )
        return self._session

    @property
    def remote_source(self) -> Callable[..., Database]:
        """The escalation fetch function: the fault-tolerant link when
        configured, the raw metered site otherwise.  Both accept a
        ``predicates=`` restriction so escalations ship only the remote
        relations the unresolved constraints mention.  With
        ``overlap_remote`` this is the link's async queue."""
        if self.remote_link is not None:
            if self.overlap_remote:
                return self.remote_link.fetch_nowait
            return self.remote_link.fetch
        # No link resolves only in the single-remote case.
        return next(iter(self.sites.remotes.values())).snapshot

    @property
    def _drain_source(self) -> Callable[..., Database]:
        """The *blocking* fetch :meth:`resolve_pending` settles against —
        never the async queue, whose raise mid-settle would leak an
        unconsumed future."""
        if self.remote_link is not None:
            return self.remote_link.fetch
        return self.remote_source

    @property
    def pending_count(self) -> int:
        """Deferred verdicts still waiting for a reachable remote."""
        return self._session.pending_count if self._session is not None else 0

    def _escalation_predicates(
        self, unresolved: Iterable[CheckReport]
    ) -> set[str]:
        local = self.checker.compiler.local_predicates
        needed: set[str] = set()
        for report in unresolved:
            constraint = self.checker.constraints[report.constraint_name]
            needed |= constraint.predicates() - local
        return needed

    def process(
        self,
        update: Update,
        apply_when_safe: bool = True,
        transaction: Optional[Transaction] = None,
    ) -> list[CheckReport]:
        """Run the protocol for one update.

        Levels 0-2 consult only the local site.  On any UNKNOWN the
        protocol fetches a remote snapshot restricted to the predicates
        the unresolved constraints mention (one metered round trip) and
        re-checks them at level 3.  If the fetch fails — a configured
        :class:`~repro.distributed.remote.RemoteLink` exhausted its
        retries or its breaker is open — the unresolved verdicts degrade
        to DEFERRED and the update is queued for
        :meth:`resolve_pending` instead of the stream crashing.  The
        update is applied to the local site when *apply_when_safe* is
        true, no verdict is VIOLATED, and — unless the checker was built
        with ``apply_on_unknown=True`` (the default, optimistic policy)
        — every verdict is SATISFIED.  When *transaction* is given, an
        applied update's effective changes are recorded there so the
        sequence can be rolled back exactly.
        """
        self.stats.updates += 1
        local_db = self.sites.local.unmetered()
        reports = self.checker.check(
            update, local_db, remote_db=None, max_level=CheckLevel.WITH_LOCAL_DATA
        )
        unresolved = [r for r in reports if r.outcome is Outcome.UNKNOWN]
        defer_future = None
        defer_future_predicates = None
        if unresolved:
            needed = self._escalation_predicates(unresolved)
            try:
                remote_db = self.remote_source(
                    predicates=sorted(needed) if needed else None
                )
            except RemoteUnavailableError as exc:
                # An overlapped link raises with the fetch still in
                # flight; the future rides on the queued entry so the
                # drain settles from its result instead of re-fetching.
                defer_future = getattr(exc, "future", None)
                if defer_future is not None:
                    defer_future_predicates = getattr(exc, "predicates", None)
                reports = [
                    CheckReport(
                        report.constraint_name, Outcome.DEFERRED, report.level,
                        remote_accessed=False,
                        detail=f"remote unreachable: {exc}",
                    )
                    if report.outcome is Outcome.UNKNOWN
                    else report
                    for report in reports
                ]
            else:
                self.stats.remote_round_trips += 1
                resolved: list[CheckReport] = []
                for report in reports:
                    if report.outcome is not Outcome.UNKNOWN:
                        resolved.append(report)
                        continue
                    resolved.append(
                        self.checker.check_constraint(
                            self.checker.constraints[report.constraint_name],
                            update,
                            local_db,
                            remote_db,
                            max_level=CheckLevel.FULL_DATABASE,
                        )
                    )
                reports = resolved

        self._record(reports)
        deferred = tuple(
            r.constraint_name for r in reports if r.outcome is Outcome.DEFERRED
        )
        safe = not any(report.outcome is Outcome.VIOLATED for report in reports)
        if not self.apply_on_unknown:
            safe = safe and not any(
                report.outcome in (Outcome.UNKNOWN, Outcome.DEFERRED)
                for report in reports
            )
        report_map = {r.constraint_name: r for r in reports}
        if safe and apply_when_safe:
            token, mat_undos = self._apply_local(update)
            if transaction is not None:
                transaction.record(token, mat_undos)
            if deferred and transaction is None:
                # Optimistically applied with a pending level-3 verdict:
                # queue it (with the effective token) so resolve_pending
                # can re-check and, if VIOLATED, reverse it exactly.
                # Inside a transaction nothing is queued — the DEFERRED
                # verdict aborts the transaction instead.
                session = self.session
                session.stats.deferred_remote += 1
                session._queue_pending(
                    update, deferred, report_map, applied=True, token=token,
                    future=defer_future,
                    future_predicates=defer_future_predicates,
                )
        elif (
            deferred
            and apply_when_safe
            and transaction is None
            and not any(r.outcome is Outcome.VIOLATED for r in reports)
        ):
            # Pessimistic policy: the update is held back entirely until
            # the link recovers; resolve_pending retries it end to end.
            session = self.session
            session.stats.deferred_remote += 1
            session._queue_pending(
                update, deferred, report_map, applied=False,
                future=defer_future,
                future_predicates=defer_future_predicates,
            )
        if self.remote_link is not None:
            self._sync_reuse_stats()
        return reports

    def check_stream(
        self,
        updates: Iterable[Update],
        apply_when_safe: bool = True,
        batch_size: Optional[int] = None,
        transaction: Optional[Transaction] = None,
    ) -> list[list[CheckReport]]:
        """Stream mode: process a sequence of updates incrementally.

        Each update flows through a persistent
        :class:`~repro.core.session.CheckSession`, so purely-local
        constraint evaluations are *maintained* across the stream by
        delta rules instead of recomputed, and level-1 verdicts hit the
        compiler's LRU.  The remote site is fetched lazily (one metered
        round trip) only when an update stays unresolved at level 2.
        Safe updates are applied to the local site as they pass.

        With a *batch_size*, consecutive safe violation-monotone updates
        are coalesced into one composed delta with a single maintenance
        pass per batch (see :meth:`CheckSession.process_stream`);
        verdicts and final state are identical to per-update processing.
        Batched mode always applies safe updates.

        With a *transaction*, every applied update's effective changes
        are recorded there, so streamed safe updates can be rolled back
        exactly.  Combining *batch_size* and *transaction* is rejected:
        a coalesced batch has no per-update abort point.
        """
        if batch_size and transaction is not None:
            raise ValueError(
                "batch_size and transaction cannot be combined: a coalesced "
                "batch has no per-update abort point"
            )
        session = self.session
        before_fetches = session.stats.remote_fetches
        if batch_size:
            if not apply_when_safe:
                raise ValueError(
                    "batched stream mode always applies safe updates"
                )
            results = session.process_stream(
                updates,
                remote=self.remote_source,
                batch_size=batch_size,
            )
            for reports in results:
                self.stats.updates += 1
                self._record(reports)
        else:
            results = []
            for update in updates:
                reports = session.process(
                    update,
                    remote=self.remote_source,
                    apply_when_safe=apply_when_safe,
                    transaction=transaction,
                )
                self.stats.updates += 1
                self._record(reports)
                results.append(reports)
        self.stats.remote_round_trips += (
            session.stats.remote_fetches - before_fetches
        )
        self._sync_reuse_stats()
        return results

    def resolve_pending(self) -> list[tuple[Update, list[CheckReport]]]:
        """Re-run the queued level-3 checks now that the link may have
        recovered.

        Drains the deferred-verdict queue oldest-first through the
        session (both the ``process`` and ``check_stream`` paths queue
        there): held updates are retried end to end, optimistically
        applied ones have their unresolved constraints re-checked and are
        reversed exactly on a VIOLATED resolution.  Returns
        ``(update, final_reports)`` pairs, in queue order, for the
        entries settled; entries stay queued while the remote keeps
        failing, and the call never raises.
        """
        session = self.session
        before_fetches = session.stats.remote_fetches
        before_rolled_back = session.stats.deferred_rolled_back
        entries = session.resolve_pending(self._drain_source)
        self.stats.remote_round_trips += (
            session.stats.remote_fetches - before_fetches
        )
        self.stats.deferred_rolled_back += (
            session.stats.deferred_rolled_back - before_rolled_back
        )
        results: list[tuple[Update, list[CheckReport]]] = []
        for entry in entries:
            reports = entry.ordered_reports(self.checker.constraints)
            self.stats.deferred_resolved += 1
            # Settling re-runs the whole pipeline, so the deciding level
            # may even be local if today's state resolves what the defer-
            # time state could not.
            deciding = (
                max(report.level for report in reports)
                if reports
                else CheckLevel.CONSTRAINTS_ONLY
            )
            self.stats.resolved_at_level[deciding] += 1
            if any(r.outcome is Outcome.VIOLATED for r in reports):
                self.stats.rejected += 1
            results.append((entry.update, reports))
        self._sync_reuse_stats()
        return results

    def _record(self, reports: list[CheckReport]) -> None:
        self.stats.record_reports(reports, self.apply_on_unknown)

    def _sync_reuse_stats(self) -> None:
        sync_session_gauges(
            self.stats, [self._session], self.checker.compiler, self.remote_link
        )

    def _apply_local(
        self, update: Update
    ) -> tuple[UndoToken, list[tuple[object, object]]]:
        """Apply *update* through the metered local site, returning the
        *effective* changes as an :class:`UndoToken` plus the
        materialization undos from keeping stream-mode state current —
        exactly what a :class:`Transaction` needs to roll back."""
        delta = update.as_delta()
        token = UndoToken({}, {})
        for predicate, facts in delta.deletions.items():
            for fact in facts:
                if self.sites.local.delete(predicate, fact):
                    token.deletions.setdefault(predicate, set()).add(fact)
        for predicate, facts in delta.insertions.items():
            for fact in facts:
                if self.sites.local.insert(predicate, fact):
                    token.insertions.setdefault(predicate, set()).add(fact)
        # Stream-mode materializations watch the same database; keep them
        # current even when the mutation came through this path.
        mat_undos: list[tuple[object, object]] = []
        if self._session is not None:
            mat_undos = self._session._propagate(token.as_delta())
        return token, mat_undos

    def process_transaction(
        self, updates: Iterable[Update]
    ) -> tuple[bool, list[list[CheckReport]]]:
        """Process a sequence of updates atomically.

        Each update is checked against the local state left by its
        predecessors; if any update is rejected — or stays UNKNOWN while
        the checker applies only on SATISFIED, or comes back DEFERRED
        because the remote was unreachable (a transaction cannot commit
        with an unverified member) — the recorded *effective*
        :class:`~repro.datalog.database.UndoToken`\\ s are replayed in
        reverse, restoring the local site (and any stream-mode
        materializations) to the exact pre-transaction state.  Inverting
        the requested updates instead would destroy pre-existing facts:
        a redundant insertion's inverse deletes a fact the transaction
        never added.

        Returns ``(committed, reports_per_update)``; processing stops at
        the aborting update.
        """
        self.stats.transactions += 1
        txn = Transaction(
            self.sites.local,
            lambda: (
                list(self._session._materializations.values())
                if self._session is not None
                else []
            ),
        )
        all_reports: list[list[CheckReport]] = []
        for update in updates:
            reports = self.process(update, transaction=txn)
            all_reports.append(reports)
            aborted = any(
                report.outcome in (Outcome.VIOLATED, Outcome.DEFERRED)
                for report in reports
            ) or (
                not self.apply_on_unknown
                and any(report.outcome is Outcome.UNKNOWN for report in reports)
            )
            if aborted:
                txn.rollback()
                self.stats.transactions_rolled_back += 1
                return False, all_reports
        txn.commit()
        return True, all_reports
