"""The distributed checking protocol: local first, remote only if needed.

"Only if this test is inconclusive do we need to make a second test that
looks at the remote data" (Section 1).  :class:`DistributedChecker` runs
the :class:`~repro.core.engine.PartialInfoChecker` pipeline against the
local site and escalates to the metered remote site only on UNKNOWN,
recording per-level statistics — the measurements behind the M1
benchmark.

Two driving modes share one compiled constraint set:

* :meth:`DistributedChecker.process` — the original per-update protocol,
  stateless between calls;
* :meth:`DistributedChecker.check_stream` — stream mode, built on an
  incremental :class:`~repro.core.session.CheckSession` that maintains
  constraint materializations by delta instead of re-evaluating, and
  reports reuse counters through :class:`ProtocolStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.engine import PartialInfoChecker
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import CheckSession
from repro.core.transaction import Transaction
from repro.datalog.database import UndoToken
from repro.distributed.site import Site, TwoSiteDatabase
from repro.updates.update import Update

__all__ = ["ProtocolStats", "DistributedChecker"]


@dataclass
class ProtocolStats:
    """Aggregated statistics across processed updates."""

    updates: int = 0
    resolved_at_level: dict[CheckLevel, int] = field(
        default_factory=lambda: {level: 0 for level in CheckLevel}
    )
    remote_round_trips: int = 0
    rejected: int = 0
    #: updates withheld because a verdict stayed UNKNOWN while the
    #: checker runs with ``apply_on_unknown=False``
    deferred_unknown: int = 0
    #: stream mode: constraint materializations built from scratch
    materializations_built: int = 0
    #: stream mode: checks answered from a maintained materialization
    materialization_reuses: int = 0
    #: stream mode: materializations dropped by the size/recency policy
    materializations_evicted: int = 0
    #: stream mode: delta-maintenance passes over materializations
    incremental_deltas: int = 0
    #: batched stream mode: coalesced maintenance flushes / updates
    #: settled inside a batch / batches replayed / probe vetoes
    batches_flushed: int = 0
    batched_updates: int = 0
    batch_replays: int = 0
    batch_probe_vetoes: int = 0
    #: transactions started / aborted via exact token rollback
    transactions: int = 0
    transactions_rolled_back: int = 0
    #: level-1 verdict LRU accounting (shared by both modes)
    level1_cache_hits: int = 0
    level1_cache_misses: int = 0

    @property
    def resolved_locally(self) -> int:
        return (
            self.resolved_at_level[CheckLevel.CONSTRAINTS_ONLY]
            + self.resolved_at_level[CheckLevel.WITH_UPDATE]
            + self.resolved_at_level[CheckLevel.WITH_LOCAL_DATA]
        )

    @property
    def local_resolution_rate(self) -> float:
        if self.updates == 0:
            return 1.0
        return self.resolved_locally / self.updates

    def summary_rows(self) -> list[tuple[str, object]]:
        rows: list[tuple[str, object]] = [("updates", self.updates)]
        rows.extend(
            (f"resolved at {level}", self.resolved_at_level[level])
            for level in CheckLevel
        )
        rows.append(("remote round trips", self.remote_round_trips))
        rows.append(("rejected (violations)", self.rejected))
        rows.append(("deferred on unknown", self.deferred_unknown))
        rows.append(("local resolution rate", round(self.local_resolution_rate, 4)))
        rows.append(("materializations built", self.materializations_built))
        rows.append(("materialization reuses", self.materialization_reuses))
        rows.append(("materializations evicted", self.materializations_evicted))
        rows.append(("incremental deltas", self.incremental_deltas))
        rows.append(("batches flushed", self.batches_flushed))
        rows.append(("batched updates", self.batched_updates))
        rows.append(("batch replays", self.batch_replays))
        rows.append(("batch probe vetoes", self.batch_probe_vetoes))
        rows.append(("transactions", self.transactions))
        rows.append(("transactions rolled back", self.transactions_rolled_back))
        rows.append(("level-1 cache hits", self.level1_cache_hits))
        rows.append(("level-1 cache misses", self.level1_cache_misses))
        return rows


class DistributedChecker:
    """Enforce constraints at the local site of a two-site database."""

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: TwoSiteDatabase,
        use_interval_datalog: bool = False,
        apply_on_unknown: bool = True,
    ) -> None:
        self.sites = sites
        self.checker = PartialInfoChecker(
            constraints,
            local_predicates=sites.local_predicates,
            use_interval_datalog=use_interval_datalog,
        )
        self.apply_on_unknown = apply_on_unknown
        self.stats = ProtocolStats()
        self._session: Optional[CheckSession] = None

    @property
    def session(self) -> CheckSession:
        """The lazily created stream session; shares the checker's
        compiled constraints and operates directly on the local site."""
        if self._session is None:
            self._session = CheckSession(
                compiler=self.checker.compiler,
                local_db=self.sites.local.unmetered(),
                apply_on_unknown=self.apply_on_unknown,
            )
        return self._session

    def process(
        self,
        update: Update,
        apply_when_safe: bool = True,
        transaction: Optional[Transaction] = None,
    ) -> list[CheckReport]:
        """Run the protocol for one update.

        Levels 0-2 consult only the local site.  On any UNKNOWN the
        protocol fetches a remote snapshot (one metered round trip) and
        re-checks the unresolved constraints at level 3.  The update is
        applied to the local site when *apply_when_safe* is true, no
        verdict is VIOLATED, and — unless the checker was built with
        ``apply_on_unknown=True`` (the default, optimistic policy) —
        every verdict is SATISFIED.  When *transaction* is given, an
        applied update's effective changes are recorded there so the
        sequence can be rolled back exactly.
        """
        self.stats.updates += 1
        local_db = self.sites.local.unmetered()
        reports = self.checker.check(
            update, local_db, remote_db=None, max_level=CheckLevel.WITH_LOCAL_DATA
        )
        unresolved = [r for r in reports if r.outcome is Outcome.UNKNOWN]
        if unresolved:
            remote_db = self.sites.remote.snapshot()
            self.stats.remote_round_trips += 1
            resolved: list[CheckReport] = []
            for report in reports:
                if report.outcome is not Outcome.UNKNOWN:
                    resolved.append(report)
                    continue
                resolved.append(
                    self.checker.check_constraint(
                        self.checker.constraints[report.constraint_name],
                        update,
                        local_db,
                        remote_db,
                        max_level=CheckLevel.FULL_DATABASE,
                    )
                )
            reports = resolved

        self._record(reports)
        safe = not any(report.outcome is Outcome.VIOLATED for report in reports)
        if not self.apply_on_unknown:
            safe = safe and not any(
                report.outcome is Outcome.UNKNOWN for report in reports
            )
        if safe and apply_when_safe:
            token, mat_undos = self._apply_local(update)
            if transaction is not None:
                transaction.record(token, mat_undos)
        return reports

    def check_stream(
        self,
        updates: Iterable[Update],
        apply_when_safe: bool = True,
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Stream mode: process a sequence of updates incrementally.

        Each update flows through a persistent
        :class:`~repro.core.session.CheckSession`, so purely-local
        constraint evaluations are *maintained* across the stream by
        delta rules instead of recomputed, and level-1 verdicts hit the
        compiler's LRU.  The remote site is fetched lazily (one metered
        round trip) only when an update stays unresolved at level 2.
        Safe updates are applied to the local site as they pass.

        With a *batch_size*, consecutive safe violation-monotone updates
        are coalesced into one composed delta with a single maintenance
        pass per batch (see :meth:`CheckSession.process_stream`);
        verdicts and final state are identical to per-update processing.
        Batched mode always applies safe updates.
        """
        session = self.session
        before_fetches = session.stats.remote_fetches
        if batch_size:
            if not apply_when_safe:
                raise ValueError(
                    "batched stream mode always applies safe updates"
                )
            results = session.process_stream(
                updates,
                remote=self.sites.remote.snapshot,
                batch_size=batch_size,
            )
            for reports in results:
                self.stats.updates += 1
                self._record(reports)
        else:
            results = []
            for update in updates:
                reports = session.process(
                    update,
                    remote=self.sites.remote.snapshot,
                    apply_when_safe=apply_when_safe,
                )
                self.stats.updates += 1
                self._record(reports)
                results.append(reports)
        self.stats.remote_round_trips += (
            session.stats.remote_fetches - before_fetches
        )
        self._sync_reuse_stats()
        return results

    def _record(self, reports: list[CheckReport]) -> None:
        deciding = (
            max(report.level for report in reports)
            if reports
            else CheckLevel.CONSTRAINTS_ONLY
        )
        self.stats.resolved_at_level[deciding] += 1
        if any(report.outcome is Outcome.VIOLATED for report in reports):
            self.stats.rejected += 1
        elif not self.apply_on_unknown and any(
            report.outcome is Outcome.UNKNOWN for report in reports
        ):
            self.stats.deferred_unknown += 1

    def _sync_reuse_stats(self) -> None:
        """Copy the session/compiler reuse counters into the protocol
        stats (they are cumulative gauges, not per-call increments)."""
        if self._session is not None:
            s = self._session.stats
            self.stats.materializations_built = s.materializations_built
            self.stats.materialization_reuses = s.materialization_reuses
            self.stats.materializations_evicted = s.materializations_evicted
            self.stats.incremental_deltas = s.incremental_deltas
            self.stats.batches_flushed = s.batches_flushed
            self.stats.batched_updates = s.batched_updates
            self.stats.batch_replays = s.batch_replays
            self.stats.batch_probe_vetoes = s.batch_probe_vetoes
        info = self.checker.compiler.level1_cache_info()
        self.stats.level1_cache_hits = info["hits"]
        self.stats.level1_cache_misses = info["misses"]

    def _apply_local(
        self, update: Update
    ) -> tuple[UndoToken, list[tuple[object, object]]]:
        """Apply *update* through the metered local site, returning the
        *effective* changes as an :class:`UndoToken` plus the
        materialization undos from keeping stream-mode state current —
        exactly what a :class:`Transaction` needs to roll back."""
        delta = update.as_delta()
        token = UndoToken({}, {})
        for predicate, facts in delta.deletions.items():
            for fact in facts:
                if self.sites.local.delete(predicate, fact):
                    token.deletions.setdefault(predicate, set()).add(fact)
        for predicate, facts in delta.insertions.items():
            for fact in facts:
                if self.sites.local.insert(predicate, fact):
                    token.insertions.setdefault(predicate, set()).add(fact)
        # Stream-mode materializations watch the same database; keep them
        # current even when the mutation came through this path.
        mat_undos: list[tuple[object, object]] = []
        if self._session is not None:
            mat_undos = self._session._propagate(token.as_delta())
        return token, mat_undos

    def process_transaction(
        self, updates: Iterable[Update]
    ) -> tuple[bool, list[list[CheckReport]]]:
        """Process a sequence of updates atomically.

        Each update is checked against the local state left by its
        predecessors; if any update is rejected — or stays UNKNOWN while
        the checker applies only on SATISFIED — the recorded *effective*
        :class:`~repro.datalog.database.UndoToken`\\ s are replayed in
        reverse, restoring the local site (and any stream-mode
        materializations) to the exact pre-transaction state.  Inverting
        the requested updates instead would destroy pre-existing facts:
        a redundant insertion's inverse deletes a fact the transaction
        never added.

        Returns ``(committed, reports_per_update)``; processing stops at
        the aborting update.
        """
        self.stats.transactions += 1
        txn = Transaction(
            self.sites.local,
            lambda: (
                list(self._session._materializations.values())
                if self._session is not None
                else []
            ),
        )
        all_reports: list[list[CheckReport]] = []
        for update in updates:
            reports = self.process(update, transaction=txn)
            all_reports.append(reports)
            aborted = any(
                report.outcome is Outcome.VIOLATED for report in reports
            ) or (
                not self.apply_on_unknown
                and any(report.outcome is Outcome.UNKNOWN for report in reports)
            )
            if aborted:
                txn.rollback()
                self.stats.transactions_rolled_back += 1
                return False, all_reports
        txn.commit()
        return True, all_reports
