"""The distributed checking protocol: local first, remote only if needed.

"Only if this test is inconclusive do we need to make a second test that
looks at the remote data" (Section 1).  :class:`DistributedChecker` runs
the :class:`~repro.core.engine.PartialInfoChecker` pipeline against the
local site and escalates to the metered remote site only on UNKNOWN,
recording per-level statistics — the measurements behind the M1
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.engine import PartialInfoChecker
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.distributed.site import Site, TwoSiteDatabase
from repro.updates.update import Insertion, Modification, Update

__all__ = ["ProtocolStats", "DistributedChecker"]


@dataclass
class ProtocolStats:
    """Aggregated statistics across processed updates."""

    updates: int = 0
    resolved_at_level: dict[CheckLevel, int] = field(
        default_factory=lambda: {level: 0 for level in CheckLevel}
    )
    remote_round_trips: int = 0
    rejected: int = 0

    @property
    def resolved_locally(self) -> int:
        return (
            self.resolved_at_level[CheckLevel.CONSTRAINTS_ONLY]
            + self.resolved_at_level[CheckLevel.WITH_UPDATE]
            + self.resolved_at_level[CheckLevel.WITH_LOCAL_DATA]
        )

    @property
    def local_resolution_rate(self) -> float:
        if self.updates == 0:
            return 1.0
        return self.resolved_locally / self.updates

    def summary_rows(self) -> list[tuple[str, object]]:
        rows: list[tuple[str, object]] = [("updates", self.updates)]
        rows.extend(
            (f"resolved at {level}", self.resolved_at_level[level])
            for level in CheckLevel
        )
        rows.append(("remote round trips", self.remote_round_trips))
        rows.append(("rejected (violations)", self.rejected))
        rows.append(("local resolution rate", round(self.local_resolution_rate, 4)))
        return rows


class DistributedChecker:
    """Enforce constraints at the local site of a two-site database."""

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: TwoSiteDatabase,
        use_interval_datalog: bool = False,
    ) -> None:
        self.sites = sites
        self.checker = PartialInfoChecker(
            constraints,
            local_predicates=sites.local_predicates,
            use_interval_datalog=use_interval_datalog,
        )
        self.stats = ProtocolStats()

    def process(self, update: Update, apply_when_safe: bool = True) -> list[CheckReport]:
        """Run the protocol for one update.

        Levels 0-2 consult only the local site.  On any UNKNOWN the
        protocol fetches a remote snapshot (one metered round trip) and
        re-checks the unresolved constraints at level 3.  When every
        verdict is SATISFIED (and *apply_when_safe*), the update is
        applied to the local site.
        """
        self.stats.updates += 1
        local_db = self.sites.local.unmetered()
        reports = self.checker.check(
            update, local_db, remote_db=None, max_level=CheckLevel.WITH_LOCAL_DATA
        )
        unresolved = [r for r in reports if r.outcome is Outcome.UNKNOWN]
        if unresolved:
            remote_db = self.sites.remote.snapshot()
            self.stats.remote_round_trips += 1
            resolved: list[CheckReport] = []
            for report in reports:
                if report.outcome is not Outcome.UNKNOWN:
                    resolved.append(report)
                    continue
                resolved.append(
                    self.checker.check_constraint(
                        self.checker.constraints[report.constraint_name],
                        update,
                        local_db,
                        remote_db,
                        max_level=CheckLevel.FULL_DATABASE,
                    )
                )
            reports = resolved

        deciding = max(report.level for report in reports) if reports else CheckLevel.CONSTRAINTS_ONLY
        self.stats.resolved_at_level[deciding] += 1

        if any(report.outcome is Outcome.VIOLATED for report in reports):
            self.stats.rejected += 1
        elif apply_when_safe:
            self._apply_local(update)
        return reports

    def _apply_local(self, update: Update) -> None:
        if isinstance(update, Insertion):
            self.sites.local.insert(update.predicate, update.values)
        elif isinstance(update, Modification):
            self.sites.local.delete(update.predicate, update.old_values)
            self.sites.local.insert(update.predicate, update.new_values)
        else:
            self.sites.local.delete(update.predicate, update.values)

    def process_transaction(
        self, updates: Iterable[Update]
    ) -> tuple[bool, list[list[CheckReport]]]:
        """Process a sequence of updates atomically.

        Each update is checked against the local state left by its
        predecessors; if any update is rejected, every previously applied
        update of the transaction is rolled back (constraints are
        invariants of the *committed* state, so intra-transaction checks
        still run update-by-update — the standard deferred-abort model).

        Returns ``(committed, reports_per_update)``.
        """
        applied: list[Update] = []
        all_reports: list[list[CheckReport]] = []
        for update in updates:
            reports = self.process(update)
            all_reports.append(reports)
            if any(report.outcome is Outcome.VIOLATED for report in reports):
                for done in reversed(applied):
                    self._apply_local(done.inverted())
                return False, all_reports
            applied.append(update)
        return True, all_reports
