"""The distributed checking protocol: local first, remote only if needed.

"Only if this test is inconclusive do we need to make a second test that
looks at the remote data" (Section 1).  :class:`DistributedChecker` runs
the :class:`~repro.core.engine.PartialInfoChecker` pipeline against the
local site and escalates to the metered remote site only on UNKNOWN,
recording per-level statistics — the measurements behind the M1
benchmark.

Two driving modes share one compiled constraint set:

* :meth:`DistributedChecker.process` — the original per-update protocol,
  stateless between calls;
* :meth:`DistributedChecker.check_stream` — stream mode, built on an
  incremental :class:`~repro.core.session.CheckSession` that maintains
  constraint materializations by delta instead of re-evaluating, and
  reports reuse counters through :class:`ProtocolStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.engine import PartialInfoChecker
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import CheckSession
from repro.datalog.database import Delta
from repro.distributed.site import Site, TwoSiteDatabase
from repro.updates.update import Insertion, Modification, Update

__all__ = ["ProtocolStats", "DistributedChecker"]


@dataclass
class ProtocolStats:
    """Aggregated statistics across processed updates."""

    updates: int = 0
    resolved_at_level: dict[CheckLevel, int] = field(
        default_factory=lambda: {level: 0 for level in CheckLevel}
    )
    remote_round_trips: int = 0
    rejected: int = 0
    #: stream mode: constraint materializations built from scratch
    materializations_built: int = 0
    #: stream mode: checks answered from a maintained materialization
    materialization_reuses: int = 0
    #: stream mode: delta-maintenance passes over materializations
    incremental_deltas: int = 0
    #: level-1 verdict LRU accounting (shared by both modes)
    level1_cache_hits: int = 0
    level1_cache_misses: int = 0

    @property
    def resolved_locally(self) -> int:
        return (
            self.resolved_at_level[CheckLevel.CONSTRAINTS_ONLY]
            + self.resolved_at_level[CheckLevel.WITH_UPDATE]
            + self.resolved_at_level[CheckLevel.WITH_LOCAL_DATA]
        )

    @property
    def local_resolution_rate(self) -> float:
        if self.updates == 0:
            return 1.0
        return self.resolved_locally / self.updates

    def summary_rows(self) -> list[tuple[str, object]]:
        rows: list[tuple[str, object]] = [("updates", self.updates)]
        rows.extend(
            (f"resolved at {level}", self.resolved_at_level[level])
            for level in CheckLevel
        )
        rows.append(("remote round trips", self.remote_round_trips))
        rows.append(("rejected (violations)", self.rejected))
        rows.append(("local resolution rate", round(self.local_resolution_rate, 4)))
        rows.append(("materializations built", self.materializations_built))
        rows.append(("materialization reuses", self.materialization_reuses))
        rows.append(("incremental deltas", self.incremental_deltas))
        rows.append(("level-1 cache hits", self.level1_cache_hits))
        rows.append(("level-1 cache misses", self.level1_cache_misses))
        return rows


class DistributedChecker:
    """Enforce constraints at the local site of a two-site database."""

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        sites: TwoSiteDatabase,
        use_interval_datalog: bool = False,
    ) -> None:
        self.sites = sites
        self.checker = PartialInfoChecker(
            constraints,
            local_predicates=sites.local_predicates,
            use_interval_datalog=use_interval_datalog,
        )
        self.stats = ProtocolStats()
        self._session: Optional[CheckSession] = None

    @property
    def session(self) -> CheckSession:
        """The lazily created stream session; shares the checker's
        compiled constraints and operates directly on the local site."""
        if self._session is None:
            self._session = CheckSession(
                compiler=self.checker.compiler,
                local_db=self.sites.local.unmetered(),
            )
        return self._session

    def process(self, update: Update, apply_when_safe: bool = True) -> list[CheckReport]:
        """Run the protocol for one update.

        Levels 0-2 consult only the local site.  On any UNKNOWN the
        protocol fetches a remote snapshot (one metered round trip) and
        re-checks the unresolved constraints at level 3.  When every
        verdict is SATISFIED (and *apply_when_safe*), the update is
        applied to the local site.
        """
        self.stats.updates += 1
        local_db = self.sites.local.unmetered()
        reports = self.checker.check(
            update, local_db, remote_db=None, max_level=CheckLevel.WITH_LOCAL_DATA
        )
        unresolved = [r for r in reports if r.outcome is Outcome.UNKNOWN]
        if unresolved:
            remote_db = self.sites.remote.snapshot()
            self.stats.remote_round_trips += 1
            resolved: list[CheckReport] = []
            for report in reports:
                if report.outcome is not Outcome.UNKNOWN:
                    resolved.append(report)
                    continue
                resolved.append(
                    self.checker.check_constraint(
                        self.checker.constraints[report.constraint_name],
                        update,
                        local_db,
                        remote_db,
                        max_level=CheckLevel.FULL_DATABASE,
                    )
                )
            reports = resolved

        self._record(reports)
        if not any(report.outcome is Outcome.VIOLATED for report in reports):
            if apply_when_safe:
                self._apply_local(update)
        return reports

    def check_stream(
        self, updates: Iterable[Update], apply_when_safe: bool = True
    ) -> list[list[CheckReport]]:
        """Stream mode: process a sequence of updates incrementally.

        Each update flows through a persistent
        :class:`~repro.core.session.CheckSession`, so purely-local
        constraint evaluations are *maintained* across the stream by
        delta rules instead of recomputed, and level-1 verdicts hit the
        compiler's LRU.  The remote site is fetched lazily (one metered
        round trip) only when an update stays unresolved at level 2.
        Safe updates are applied to the local site as they pass.
        """
        session = self.session
        results: list[list[CheckReport]] = []
        for update in updates:
            before_fetches = session.stats.remote_fetches
            reports = session.process(
                update,
                remote=self.sites.remote.snapshot,
                apply_when_safe=apply_when_safe,
            )
            self.stats.updates += 1
            self.stats.remote_round_trips += (
                session.stats.remote_fetches - before_fetches
            )
            self._record(reports)
            results.append(reports)
        self._sync_reuse_stats()
        return results

    def _record(self, reports: list[CheckReport]) -> None:
        deciding = (
            max(report.level for report in reports)
            if reports
            else CheckLevel.CONSTRAINTS_ONLY
        )
        self.stats.resolved_at_level[deciding] += 1
        if any(report.outcome is Outcome.VIOLATED for report in reports):
            self.stats.rejected += 1

    def _sync_reuse_stats(self) -> None:
        """Copy the session/compiler reuse counters into the protocol
        stats (they are cumulative gauges, not per-call increments)."""
        if self._session is not None:
            s = self._session.stats
            self.stats.materializations_built = s.materializations_built
            self.stats.materialization_reuses = s.materialization_reuses
            self.stats.incremental_deltas = s.incremental_deltas
        info = self.checker.compiler.level1_cache_info()
        self.stats.level1_cache_hits = info["hits"]
        self.stats.level1_cache_misses = info["misses"]

    def _apply_local(self, update: Update) -> None:
        delta = update.as_delta()
        effective = Delta()
        for predicate, facts in delta.deletions.items():
            for fact in facts:
                if self.sites.local.delete(predicate, fact):
                    effective.delete(predicate, fact)
        for predicate, facts in delta.insertions.items():
            for fact in facts:
                if self.sites.local.insert(predicate, fact):
                    effective.insert(predicate, fact)
        # Stream-mode materializations watch the same database; keep them
        # current even when the mutation came through this path.
        if self._session is not None:
            self._session._propagate(effective)

    def process_transaction(
        self, updates: Iterable[Update]
    ) -> tuple[bool, list[list[CheckReport]]]:
        """Process a sequence of updates atomically.

        Each update is checked against the local state left by its
        predecessors; if any update is rejected, every previously applied
        update of the transaction is rolled back (constraints are
        invariants of the *committed* state, so intra-transaction checks
        still run update-by-update — the standard deferred-abort model).

        Returns ``(committed, reports_per_update)``.
        """
        applied: list[Update] = []
        all_reports: list[list[CheckReport]] = []
        for update in updates:
            reports = self.process(update)
            all_reports.append(reports)
            if any(report.outcome is Outcome.VIOLATED for report in reports):
                for done in reversed(applied):
                    self._apply_local(done.inverted())
                return False, all_reports
            applied.append(update)
        return True, all_reports
