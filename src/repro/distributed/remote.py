"""Fault-tolerant access to a remote site: retries, backoff, breaker.

A :class:`RemoteLink` is the only thing the checking protocol sees of the
network.  It wraps anything with a ``snapshot(predicates=None)`` method —
a plain metered :class:`~repro.distributed.site.Site` or an
:class:`~repro.distributed.faults.UnreliableRemote` — behind a
:class:`FetchPolicy`:

* a **retry budget** of ``max_attempts`` per fetch, with **bounded
  exponential backoff** between attempts (base × factor^n, capped, with
  seeded deterministic jitter so synchronized retries don't stampede);
* a **per-attempt timeout** forwarded to fault-aware remotes;
* a **circuit breaker**: after ``failure_threshold`` *consecutive*
  failed attempts the breaker opens and fetches fast-fail without
  touching the remote at all; after ``cooldown_fetches`` fast-failed
  fetches it half-opens and risks exactly one probe attempt — success
  recloses it, failure re-opens it.

On an exhausted budget (or an open breaker) :meth:`RemoteLink.fetch`
raises :class:`~repro.errors.RemoteUnavailableError`; the protocol layer
degrades to a DEFERRED verdict instead of crashing the stream.  Nothing
sleeps — backoff waits and attempt latencies accumulate on a simulated
clock, which the benchmarks read as verdict latency.

Two concurrency affordances sit on top of that policy:

* the link is **thread-safe**: breaker state, statistics, and the clock
  are guarded by one lock, while the actual ``snapshot`` calls are
  serialized on a separate I/O lock — the link models one connection to
  one remote site, so attempts form a total order (which is also what
  makes "consecutive failures" well-defined) and the wrapped remote
  never sees concurrent access;
* :meth:`RemoteLink.fetch_nowait` is the **async escalation queue**: it
  submits the fetch to a small worker pool and raises
  :class:`RemoteFetchInFlight` (a :class:`RemoteUnavailableError`
  carrying the future) immediately, so a slow-but-healthy remote no
  longer blocks the stream — covered updates keep flowing and the
  deferred entry settles from the future's result in arrival order
  through the ordinary ``PendingVerdict`` / ``resolve_pending``
  machinery.
"""

from __future__ import annotations

import enum
import random
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass, fields
from typing import Callable, Iterable, Mapping, Optional, Protocol

from repro.constraints.classify import group_predicates_by_site
from repro.datalog.database import Database
from repro.errors import RemoteUnavailableError

__all__ = [
    "BreakerState",
    "FederationLink",
    "FetchPolicy",
    "LinkStats",
    "RemoteFetchInFlight",
    "RemoteLink",
    "RemoteSite",
]


class RemoteFetchInFlight(RemoteUnavailableError):
    """The fetch was *issued* but has not completed — data unavailable now.

    Raised by :meth:`RemoteLink.fetch_nowait` as soon as the fetch is on
    the async pool: semantically the caller cannot have the snapshot
    *yet*, so the protocol layer takes its ordinary DEFERRED path, but
    :attr:`future` rides along on the queued
    :class:`~repro.core.session.PendingVerdict` and the drain settles
    from its result (or discards it, if the settle needs more predicates
    than :attr:`predicates` covered) instead of re-fetching.
    """

    def __init__(
        self,
        message: str,
        future: "Future[Database]",
        predicates: Iterable[str] | None = None,
    ) -> None:
        super().__init__(message, reason="in-flight")
        self.future = future
        self.predicates = (
            frozenset(predicates) if predicates is not None else None
        )


class RemoteSite(Protocol):
    """Anything the link can snapshot — a Site or an UnreliableRemote."""

    def snapshot(self, predicates: Iterable[str] | None = None) -> Database: ...


class BreakerState(enum.Enum):
    """Classic three-state circuit breaker."""

    CLOSED = "closed"        # normal operation
    OPEN = "open"            # fast-failing, remote not touched
    HALF_OPEN = "half-open"  # one probe in flight

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FetchPolicy:
    """How hard one :meth:`RemoteLink.fetch` tries before giving up."""

    #: attempts per fetch (1 initial + max_attempts-1 retries)
    max_attempts: int = 4
    #: per-attempt timeout in simulated seconds (None = no timeout);
    #: honoured by fault-aware remotes that accept a ``timeout=`` kwarg
    attempt_timeout: Optional[float] = None
    #: backoff before retry n (1-based): min(base * factor**(n-1), max),
    #: multiplied by a jitter factor drawn from [1-jitter, 1+jitter]
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.5
    #: consecutive failed attempts (across fetches) that open the breaker
    failure_threshold: int = 5
    #: fast-failed fetches while open before the breaker half-opens
    cooldown_fetches: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_fetches < 0:
            raise ValueError("cooldown_fetches must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if min(self.backoff_base, self.backoff_factor, self.backoff_max) < 0:
            raise ValueError("backoff parameters must be non-negative")

    def backoff(self, retry: int, rng: random.Random) -> float:
        """The simulated wait before *retry* (1-based)."""
        wait = min(self.backoff_base * self.backoff_factor ** (retry - 1),
                   self.backoff_max)
        if self.backoff_jitter:
            wait *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return wait


@dataclass
class LinkStats:
    """Fetch-level accounting for one :class:`RemoteLink`."""

    fetches: int = 0
    fetches_ok: int = 0
    #: fetches that exhausted the retry budget (or died half-open)
    fetches_failed: int = 0
    #: fetches rejected instantly by an open breaker (remote untouched)
    fetches_fast_failed: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    #: fetches issued asynchronously via :meth:`RemoteLink.fetch_nowait`
    #: (each also counts as an ordinary fetch when its worker runs)
    fetches_async: int = 0
    #: simulated seconds spent waiting in backoff
    backoff_waited: float = 0.0
    #: simulated seconds spent on attempt latency
    attempt_latency: float = 0.0

    def summary_rows(self) -> list[tuple[str, object]]:
        return [
            ("remote fetches", self.fetches),
            ("remote fetches async (overlapped)", self.fetches_async),
            ("remote fetches ok", self.fetches_ok),
            ("remote fetches failed", self.fetches_failed),
            ("remote fast-fails (breaker open)", self.fetches_fast_failed),
            ("remote attempts", self.attempts),
            ("remote retries", self.retries),
            ("remote attempt failures", self.failures),
            ("remote timeouts", self.timeouts),
            ("breaker opens", self.breaker_opens),
            ("breaker half-opens", self.breaker_half_opens),
            ("breaker closes", self.breaker_closes),
            ("simulated backoff wait", round(self.backoff_waited, 4)),
            ("simulated attempt latency", round(self.attempt_latency, 4)),
        ]

    def to_dict(self) -> dict:
        """Plain-dict form for checkpoint manifests (JSON-safe)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "LinkStats":
        return cls(**payload)


class RemoteLink:
    """A remote site behind a retry/backoff/breaker fetch policy.

    ``fetch(predicates=...)`` either returns a snapshot or raises
    :class:`~repro.errors.RemoteUnavailableError`; it never raises
    anything else and never blocks forever.  The simulated ``clock``
    advances by attempt latencies and backoff waits, so benchmarks can
    report verdict latency without sleeping.

    The link is safe to call from multiple threads.  Breaker state,
    statistics, the rng, and the clock live under one re-entrant lock;
    the wrapped remote's ``snapshot`` calls are serialized on a separate
    I/O lock (one link ~ one connection), so attempt outcomes form a
    total order and "consecutive failures" keeps its serial meaning.
    ``fetch_nowait`` overlaps a fetch with the caller's own work by
    running ``fetch`` on a small internal worker pool.
    """

    def __init__(
        self,
        remote: RemoteSite,
        policy: Optional[FetchPolicy] = None,
        seed: int = 0,
        async_workers: int = 2,
    ) -> None:
        if async_workers < 1:
            raise ValueError("async_workers must be at least 1")
        self.remote = remote
        self.policy = policy if policy is not None else FetchPolicy()
        self.stats = LinkStats()
        self.clock = 0.0
        self._rng = random.Random(seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._open_fetches = 0
        # Fault-aware remotes take a per-attempt timeout; plain Sites don't.
        self._supports_timeout = hasattr(remote, "last_latency")
        #: guards breaker/stats/clock/rng bookkeeping (re-entrant: the
        #: in-flight condition below shares it)
        self._lock = threading.RLock()
        #: serializes the actual ``remote.snapshot`` calls
        self._io_lock = threading.Lock()
        self._async_workers = async_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._inflight = 0
        self._inflight_cond = threading.Condition(self._lock)

    # -- breaker ----------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    @property
    def available(self) -> bool:
        """Would a fetch right now at least try the remote?"""
        with self._lock:
            return self._state is not BreakerState.OPEN or (
                self._open_fetches >= self.policy.cooldown_fetches
            )

    def _transition(self, state: BreakerState) -> None:
        # Callers hold self._lock.
        if state is self._state:
            return
        self._state = state
        if state is BreakerState.OPEN:
            self.stats.breaker_opens += 1
            self._open_fetches = 0
        elif state is BreakerState.HALF_OPEN:
            self.stats.breaker_half_opens += 1
        else:
            self.stats.breaker_closes += 1
            self._consecutive_failures = 0

    # -- fetching ---------------------------------------------------------------
    def _attempt(self, predicates: Iterable[str] | None) -> Database:
        # The remote itself is not assumed thread-safe; one connection,
        # one snapshot at a time.  last_latency is read while we still
        # hold the I/O lock so a concurrent attempt can't clobber it.
        with self._io_lock:
            if self._supports_timeout:
                try:
                    return self.remote.snapshot(
                        predicates=predicates, timeout=self.policy.attempt_timeout
                    )
                finally:
                    latency = getattr(self.remote, "last_latency", 0.0)
                    with self._lock:
                        self.clock += latency
                        self.stats.attempt_latency += latency
            return self.remote.snapshot(predicates=predicates)

    def fetch(self, predicates: Iterable[str] | None = None) -> Database:
        """Fetch a (possibly predicate-restricted) remote snapshot.

        Raises :class:`~repro.errors.RemoteUnavailableError` when the
        breaker is open (reason ``"circuit-open"``) or the retry budget
        is exhausted (reason ``"exhausted"``).
        """
        policy = self.policy
        with self._lock:
            self.stats.fetches += 1
            if self._state is BreakerState.OPEN:
                if self._open_fetches < policy.cooldown_fetches:
                    self._open_fetches += 1
                    self.stats.fetches_fast_failed += 1
                    raise RemoteUnavailableError(
                        f"circuit breaker open ({self._open_fetches}/"
                        f"{policy.cooldown_fetches} of cooldown)",
                        reason="circuit-open",
                    )
                self._transition(BreakerState.HALF_OPEN)

            # Half-open risks exactly one probe; closed gets the full budget.
            budget = (
                1 if self._state is BreakerState.HALF_OPEN else policy.max_attempts
            )
        last_error: Optional[RemoteUnavailableError] = None
        for attempt in range(budget):
            with self._lock:
                if attempt:
                    wait = policy.backoff(attempt, self._rng)
                    self.clock += wait
                    self.stats.backoff_waited += wait
                    self.stats.retries += 1
                self.stats.attempts += 1
            try:
                snapshot = self._attempt(predicates)
            except RemoteUnavailableError as exc:
                last_error = exc
                with self._lock:
                    self.stats.failures += 1
                    if exc.reason == "timeout":
                        self.stats.timeouts += 1
                    self._consecutive_failures += 1
                    if (
                        self._state is BreakerState.HALF_OPEN
                        or self._consecutive_failures >= policy.failure_threshold
                    ):
                        self._transition(BreakerState.OPEN)
                        opened = True
                    else:
                        opened = False
                if opened:
                    break
                continue
            with self._lock:
                self._consecutive_failures = 0
                if self._state is not BreakerState.CLOSED:
                    self._transition(BreakerState.CLOSED)
                self.stats.fetches_ok += 1
            return snapshot

        with self._lock:
            self.stats.fetches_failed += 1
            state = self._state
            attempts = self.stats.attempts
        raise RemoteUnavailableError(
            f"remote fetch failed after {attempts} cumulative "
            f"attempts (breaker {state}): {last_error}",
            reason="exhausted",
        )

    # -- overlapped (async) fetching --------------------------------------------
    def fetch_nowait(
        self, predicates: Iterable[str] | None = None
    ) -> Database:
        """Issue a fetch without waiting for it; always raises.

        An open, still-cooling breaker fast-fails synchronously exactly
        like :meth:`fetch` (queueing a fetch the breaker would reject is
        pointless).  Otherwise the fetch is submitted to the link's
        worker pool and :class:`RemoteFetchInFlight` is raised carrying
        the future — the caller defers the update and the drain settles
        it from the future's result.  Drains themselves must use the
        blocking :meth:`fetch` as their source, never this method.
        """
        predicates = frozenset(predicates) if predicates is not None else None
        policy = self.policy
        with self._lock:
            if self._closed:
                # A closed link must not resurrect its worker pool: the
                # caller raced close() and loses deterministically, with
                # the same degrade-to-DEFERRED surface as any other
                # unavailability.
                raise RemoteUnavailableError(
                    "remote link is closed", reason="closed"
                )
            if (
                self._state is BreakerState.OPEN
                and self._open_fetches < policy.cooldown_fetches
            ):
                self.stats.fetches += 1
                self._open_fetches += 1
                self.stats.fetches_fast_failed += 1
                raise RemoteUnavailableError(
                    f"circuit breaker open ({self._open_fetches}/"
                    f"{policy.cooldown_fetches} of cooldown)",
                    reason="circuit-open",
                )
            self.stats.fetches_async += 1
            self._inflight += 1
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._async_workers,
                    thread_name_prefix="remote-fetch",
                )
            # Submit while still holding the lock: close() swaps the pool
            # handle out under the same lock before shutting it down, so
            # a submit can never hit an already-shut-down executor
            # (previously a RuntimeError escaping the link's surface).
            try:
                future = self._pool.submit(self.fetch, predicates=predicates)
            except BaseException:
                self._inflight -= 1
                self._inflight_cond.notify_all()
                raise
        future.add_done_callback(self._fetch_settled)
        raise RemoteFetchInFlight(
            "escalation fetch issued asynchronously; result pending",
            future,
            predicates,
        )

    def _fetch_settled(self, _future: "Future[Database]") -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        """Async fetches issued but not yet completed."""
        with self._lock:
            return self._inflight

    def wait_inflight(self, timeout: Optional[float] = None) -> bool:
        """Block until every async fetch has completed (or timeout)."""
        with self._inflight_cond:
            return self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    # -- durability --------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable mutable state for checkpoint manifests.

        Captures everything a resumed run needs to continue the fetch
        sequence exactly where the crashed run left off: breaker state
        and counters, the simulated clock, the backoff-jitter RNG, the
        fetch statistics, and — when the wrapped remote is an
        :class:`~repro.distributed.faults.UnreliableRemote` — its fault
        RNG and attempt counters, so outage windows and transient draws
        line up attempt-for-attempt after recovery.
        """
        with self._lock:
            version, internal, gauss_next = self._rng.getstate()
            state = {
                "breaker": self._state.value,
                "consecutive_failures": self._consecutive_failures,
                "open_fetches": self._open_fetches,
                "clock": self.clock,
                "rng": [version, list(internal), gauss_next],
                "stats": self.stats.to_dict(),
            }
            if hasattr(self.remote, "state_dict"):
                state["remote"] = self.remote.state_dict()
            return state

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self._state = BreakerState(state["breaker"])
            self._consecutive_failures = state["consecutive_failures"]
            self._open_fetches = state["open_fetches"]
            self.clock = state["clock"]
            version, internal, gauss_next = state["rng"]
            self._rng.setstate((version, tuple(internal), gauss_next))
            self.stats = LinkStats.from_dict(state["stats"])
            if "remote" in state and hasattr(self.remote, "restore_state"):
                self.remote.restore_state(state["remote"])

    def close(self) -> None:
        """Shut down the async worker pool, waiting for in-flight fetches.

        Deterministic under concurrent :meth:`fetch_nowait` callers: a
        caller that acquired the lock before the close got its fetch
        submitted and ``close`` **waits** for it (already-queued fetches
        run to completion, so their futures settle normally and every
        stats write happens before ``close`` returns); a caller that
        arrives after the close is rejected with reason ``"closed"`` —
        the pool is never lazily resurrected on a closed link.
        Idempotent: the pool handle is swapped out under the lock before
        shutdown, so a second (or concurrent) close finds nothing to do.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class FederationLink:
    """Fan-out escalation across N per-site :class:`RemoteLink`\\ s.

    The protocol layer keeps seeing one remote-source surface —
    ``fetch(predicates=...)`` / ``fetch_nowait`` / ``wait_inflight`` /
    ``close`` — while underneath each fetch is *split by owning site*
    (via the federation's placement) and issued to every involved site's
    own link, each with its own retry/backoff/breaker policy and fault
    model.  Three things distinguish the federated surface:

    * **parallel fan-out** (default): the per-site fetches of one
      escalation ride each link's existing ``fetch_nowait`` worker pool
      concurrently, so one slow site no longer serializes the others.
      On the simulated clock the escalation costs the *maximum* of the
      per-site latency deltas instead of their sum (``parallel=False``
      keeps the sequential sum, for comparison — the M7 benchmark
      measures the gap).
    * **partial-failure attribution**: when some sites answer and others
      do not, the raised :class:`~repro.errors.RemoteUnavailableError`
      carries ``sites`` naming exactly the failed ones, and the answers
      that did arrive are still cached — the partial-recovery drain in
      :meth:`~repro.core.session.CheckSession.resolve_pending` marks
      only those sites dark.
    * a **verified-snapshot cache** with per-site staleness bounds:
      a successful per-site fetch is remembered for ``snapshot_ttl``
      simulated seconds on *that site's* link clock (``site_ttls``
      overrides per site), and a later escalation whose needs are
      covered is served from the cache without touching the site.  The
      default (``None``) disables caching, preserving exact fetch-for-
      fetch equivalence with the unfederated link.
    """

    def __init__(
        self,
        links: Mapping[str, RemoteLink],
        site_of: Callable[[str], Optional[str]],
        parallel: bool = True,
        snapshot_ttl: Optional[float] = None,
        site_ttls: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not links:
            raise ValueError("a federation link needs at least one site link")
        self.links: dict[str, RemoteLink] = dict(links)
        self.site_of = site_of
        self.parallel = parallel
        self.snapshot_ttl = snapshot_ttl
        self.site_ttls = dict(site_ttls or {})
        unknown = set(self.site_ttls) - set(self.links)
        if unknown:
            raise ValueError(f"site_ttls names unknown sites: {sorted(unknown)}")
        #: simulated federation clock: each escalation adds the max of
        #: its per-site latency deltas when parallel, the sum otherwise
        self.clock = 0.0
        #: multi-site escalations issued / per-site fetches they fanned
        #: out to / snapshot-cache accounting
        self.fanouts = 0
        self.fanout_fetches = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._lock = threading.Lock()
        #: site -> (link clock at fetch, covered predicates or None, db)
        self._cache: dict[str, tuple[float, Optional[frozenset], Database]] = {}
        self._composites: set[Future] = set()

    # -- plumbing ---------------------------------------------------------------
    def _ttl(self, site: str) -> Optional[float]:
        return self.site_ttls.get(site, self.snapshot_ttl)

    def _split(self, predicates: Iterable[str] | None) -> dict[str, Optional[frozenset]]:
        """The fan-out plan: site -> predicate restriction (``None`` =
        unrestricted).  An unrestricted fetch involves every site."""
        if predicates is None:
            return {name: None for name in self.links}
        default = next(iter(self.links))
        groups = group_predicates_by_site(
            predicates, self.site_of, default_site=default
        )
        unknown = set(groups) - set(self.links)
        if unknown:
            raise ValueError(
                f"placement routes predicates to unknown sites: {sorted(unknown)}"
            )
        return {site: frozenset(wanted) for site, wanted in groups.items()}

    def _serve_cached(
        self, groups: dict[str, Optional[frozenset]]
    ) -> tuple[dict[str, Database], list[str]]:
        """Split the plan into cache-served answers and remaining sites."""
        results: dict[str, Database] = {}
        misses: list[str] = []
        for site, wanted in groups.items():
            hit = self._cached(site, wanted)
            if hit is not None:
                results[site] = hit
            else:
                misses.append(site)
        return results, misses

    def _cached(self, site: str, wanted: Optional[frozenset]) -> Optional[Database]:
        ttl = self._ttl(site)
        if ttl is None:
            return None
        with self._lock:
            entry = self._cache.get(site)
            link = self.links[site]
            if entry is not None:
                fetched_at, covered, db = entry
                fresh = link.clock - fetched_at <= ttl
                covers = covered is None or (
                    wanted is not None and wanted <= covered
                )
                if fresh and covers:
                    self.cache_hits += 1
                    if wanted is not None and covered != wanted:
                        return db.restricted_to(set(wanted))
                    return db
            self.cache_misses += 1
            return None

    def _store(self, site: str, wanted: Optional[frozenset], db: Database) -> None:
        if self._ttl(site) is None:
            return
        with self._lock:
            self._cache[site] = (self.links[site].clock, wanted, db.copy())

    def _merge(
        self, groups: dict[str, Optional[frozenset]], results: dict[str, Database]
    ) -> Database:
        merged = Database()
        for site in groups:
            db = results[site]
            for predicate in db.predicates():
                for fact in db.facts(predicate):
                    merged.insert(predicate, fact)
        return merged

    @staticmethod
    def _failure(
        failures: dict[str, RemoteUnavailableError], total: int
    ) -> RemoteUnavailableError:
        reasons = {exc.reason for exc in failures.values()}
        reason = reasons.pop() if len(reasons) == 1 else "federated"
        detail = "; ".join(
            f"{site}: {failures[site]}" for site in sorted(failures)
        )
        return RemoteUnavailableError(
            f"{len(failures)}/{total} federated site fetch(es) failed: {detail}",
            reason=reason,
            sites=failures,
        )

    # -- fetching ---------------------------------------------------------------
    def fetch(self, predicates: Iterable[str] | None = None) -> Database:
        """Fetch (and merge) the snapshots of every site the restriction
        touches; raises with ``sites`` naming the failed subset.

        With ``parallel`` (the default) the per-site fetches of a multi-
        site escalation run concurrently on the links' worker pools and
        the federation clock advances by the slowest site, not the sum.
        Every site is attempted even after another has failed, so the
        failure attribution is complete and the successes are cached.
        """
        groups = self._split(predicates)
        results, misses = self._serve_cached(groups)
        failures: dict[str, RemoteUnavailableError] = {}
        deltas: dict[str, float] = {}
        if len(misses) > 1:
            with self._lock:
                self.fanouts += 1
                self.fanout_fetches += len(misses)
        if len(misses) > 1 and self.parallel:
            pending: dict[str, Future] = {}
            befores: dict[str, float] = {}
            for site in misses:
                link = self.links[site]
                befores[site] = link.clock
                try:
                    link.fetch_nowait(predicates=self._restriction(groups[site]))
                except RemoteFetchInFlight as exc:
                    pending[site] = exc.future
                except RemoteUnavailableError as exc:
                    failures[site] = exc
                    deltas[site] = link.clock - befores[site]
            for site, future in pending.items():
                link = self.links[site]
                try:
                    db = future.result()
                except RemoteUnavailableError as exc:
                    failures[site] = exc
                else:
                    results[site] = db
                    self._store(site, groups[site], db)
                deltas[site] = link.clock - befores[site]
        else:
            for site in misses:
                link = self.links[site]
                before = link.clock
                try:
                    db = link.fetch(predicates=self._restriction(groups[site]))
                except RemoteUnavailableError as exc:
                    failures[site] = exc
                else:
                    results[site] = db
                    self._store(site, groups[site], db)
                deltas[site] = link.clock - before
        self._advance(deltas)
        if failures:
            raise self._failure(failures, len(groups))
        return self._merge(groups, results)

    @staticmethod
    def _restriction(wanted: Optional[frozenset]) -> Optional[list[str]]:
        return sorted(wanted) if wanted is not None else None

    def _advance(self, deltas: dict[str, float]) -> None:
        if not deltas:
            return
        cost = max(deltas.values()) if self.parallel else sum(deltas.values())
        with self._lock:
            self.clock += cost

    def fetch_nowait(self, predicates: Iterable[str] | None = None) -> Database:
        """Issue the fan-out without waiting for it.

        Per-site fetches go to each involved link's async queue; a
        composite future completes with the merged database once *every*
        site has answered (or fails carrying the failed ``sites``), and
        :class:`RemoteFetchInFlight` is raised with it so the caller's
        DEFERRED path works exactly as with a single link.  Degenerate
        cases stay synchronous: a fully cache-served plan returns the
        merged database outright, and a plan whose every site fast-fails
        (open breakers) raises immediately.
        """
        predicates = frozenset(predicates) if predicates is not None else None
        groups = self._split(predicates)
        results, misses = self._serve_cached(groups)
        failures: dict[str, RemoteUnavailableError] = {}
        pending: dict[str, Future] = {}
        befores: dict[str, float] = {}
        if len(misses) > 1:
            with self._lock:
                self.fanouts += 1
                self.fanout_fetches += len(misses)
        for site in misses:
            link = self.links[site]
            befores[site] = link.clock
            try:
                link.fetch_nowait(predicates=self._restriction(groups[site]))
            except RemoteFetchInFlight as exc:
                pending[site] = exc.future
            except RemoteUnavailableError as exc:
                failures[site] = exc
        if not pending:
            if failures:
                raise self._failure(failures, len(groups))
            return self._merge(groups, results)

        composite: Future = Future()
        composite.set_running_or_notify_cancel()
        with self._lock:
            self._composites.add(composite)
        state = {"remaining": len(pending)}
        state_lock = threading.Lock()
        deltas: dict[str, float] = {}

        def finish() -> None:
            self._advance(deltas)
            with self._lock:
                self._composites.discard(composite)
            if failures:
                composite.set_exception(self._failure(failures, len(groups)))
            else:
                composite.set_result(self._merge(groups, results))

        def make_callback(site: str) -> Callable[[Future], None]:
            def on_done(future: Future) -> None:
                link = self.links[site]
                try:
                    db = future.result()
                except RemoteUnavailableError as exc:
                    failures[site] = exc
                except BaseException as exc:  # pragma: no cover - defensive
                    failures[site] = RemoteUnavailableError(
                        f"site {site!r} fetch worker died: {exc}",
                        reason="worker-error",
                        sites=[site],
                    )
                else:
                    results[site] = db
                    self._store(site, groups[site], db)
                deltas[site] = link.clock - befores[site]
                with state_lock:
                    state["remaining"] -= 1
                    last = state["remaining"] == 0
                if last:
                    finish()

            return on_done

        for site, future in pending.items():
            future.add_done_callback(make_callback(site))
        raise RemoteFetchInFlight(
            "federated escalation fetch issued asynchronously; result pending",
            composite,
            predicates,
        )

    # -- aggregate accounting / lifecycle ----------------------------------------
    @property
    def stats(self) -> LinkStats:
        """Per-site link statistics summed across the federation (the
        gauges :func:`~repro.distributed.stats.sync_session_gauges`
        mirrors into :class:`~repro.distributed.stats.ProtocolStats`)."""
        total = LinkStats()
        for link in self.links.values():
            for spec in fields(LinkStats):
                setattr(
                    total,
                    spec.name,
                    getattr(total, spec.name) + getattr(link.stats, spec.name),
                )
        return total

    @property
    def state(self) -> BreakerState:
        """The worst per-site breaker state (OPEN > HALF_OPEN > CLOSED)."""
        order = [BreakerState.CLOSED, BreakerState.HALF_OPEN, BreakerState.OPEN]
        return max((link.state for link in self.links.values()), key=order.index)

    @property
    def available(self) -> bool:
        """Would a fan-out right now at least try every site?"""
        return all(link.available for link in self.links.values())

    @property
    def inflight(self) -> int:
        return sum(link.inflight for link in self.links.values())

    def summary_rows(self) -> list[tuple[str, object]]:
        rows = self.stats.summary_rows()
        rows.append(("federated fan-outs", self.fanouts))
        rows.append(("federated fan-out site fetches", self.fanout_fetches))
        rows.append(("snapshot cache hits", self.cache_hits))
        rows.append(("snapshot cache misses", self.cache_misses))
        return rows

    def state_dict(self) -> dict:
        """Per-site link states plus the federation's own counters.

        The verified-snapshot cache is deliberately *not* captured: a
        journalled run disables caching (``--snapshot-ttl`` is rejected
        with ``--journal``), because a resume that re-fetched what the
        crashed run served from cache would diverge fetch-for-fetch.
        """
        return {
            "links": {
                site: link.state_dict() for site, link in self.links.items()
            },
            "clock": self.clock,
            "fanouts": self.fanouts,
            "fanout_fetches": self.fanout_fetches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def restore_state(self, state: dict) -> None:
        for site, link_state in state["links"].items():
            if site not in self.links:
                raise ValueError(f"state names unknown federated site {site!r}")
            self.links[site].restore_state(link_state)
        self.clock = state["clock"]
        self.fanouts = state["fanouts"]
        self.fanout_fetches = state["fanout_fetches"]
        self.cache_hits = state["cache_hits"]
        self.cache_misses = state["cache_misses"]

    def wait_inflight(self, timeout: Optional[float] = None) -> bool:
        """Block until every site's async fetches *and* every composite
        fan-out future have completed (or timeout)."""
        ok = True
        for link in self.links.values():
            ok = link.wait_inflight(timeout) and ok
        with self._lock:
            composites = list(self._composites)
        if composites:
            _done, not_done = _futures_wait(composites, timeout=timeout)
            ok = ok and not not_done
        return ok

    def close(self) -> None:
        """Shut down every site link's worker pool (idempotent)."""
        for link in self.links.values():
            link.close()
