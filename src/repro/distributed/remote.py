"""Fault-tolerant access to a remote site: retries, backoff, breaker.

A :class:`RemoteLink` is the only thing the checking protocol sees of the
network.  It wraps anything with a ``snapshot(predicates=None)`` method —
a plain metered :class:`~repro.distributed.site.Site` or an
:class:`~repro.distributed.faults.UnreliableRemote` — behind a
:class:`FetchPolicy`:

* a **retry budget** of ``max_attempts`` per fetch, with **bounded
  exponential backoff** between attempts (base × factor^n, capped, with
  seeded deterministic jitter so synchronized retries don't stampede);
* a **per-attempt timeout** forwarded to fault-aware remotes;
* a **circuit breaker**: after ``failure_threshold`` *consecutive*
  failed attempts the breaker opens and fetches fast-fail without
  touching the remote at all; after ``cooldown_fetches`` fast-failed
  fetches it half-opens and risks exactly one probe attempt — success
  recloses it, failure re-opens it.

On an exhausted budget (or an open breaker) :meth:`RemoteLink.fetch`
raises :class:`~repro.errors.RemoteUnavailableError`; the protocol layer
degrades to a DEFERRED verdict instead of crashing the stream.  Nothing
sleeps — backoff waits and attempt latencies accumulate on a simulated
clock, which the benchmarks read as verdict latency.

Two concurrency affordances sit on top of that policy:

* the link is **thread-safe**: breaker state, statistics, and the clock
  are guarded by one lock, while the actual ``snapshot`` calls are
  serialized on a separate I/O lock — the link models one connection to
  one remote site, so attempts form a total order (which is also what
  makes "consecutive failures" well-defined) and the wrapped remote
  never sees concurrent access;
* :meth:`RemoteLink.fetch_nowait` is the **async escalation queue**: it
  submits the fetch to a small worker pool and raises
  :class:`RemoteFetchInFlight` (a :class:`RemoteUnavailableError`
  carrying the future) immediately, so a slow-but-healthy remote no
  longer blocks the stream — covered updates keep flowing and the
  deferred entry settles from the future's result in arrival order
  through the ordinary ``PendingVerdict`` / ``resolve_pending``
  machinery.
"""

from __future__ import annotations

import enum
import random
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol

from repro.datalog.database import Database
from repro.errors import RemoteUnavailableError

__all__ = [
    "BreakerState",
    "FetchPolicy",
    "LinkStats",
    "RemoteFetchInFlight",
    "RemoteLink",
    "RemoteSite",
]


class RemoteFetchInFlight(RemoteUnavailableError):
    """The fetch was *issued* but has not completed — data unavailable now.

    Raised by :meth:`RemoteLink.fetch_nowait` as soon as the fetch is on
    the async pool: semantically the caller cannot have the snapshot
    *yet*, so the protocol layer takes its ordinary DEFERRED path, but
    :attr:`future` rides along on the queued
    :class:`~repro.core.session.PendingVerdict` and the drain settles
    from its result (or discards it, if the settle needs more predicates
    than :attr:`predicates` covered) instead of re-fetching.
    """

    def __init__(
        self,
        message: str,
        future: "Future[Database]",
        predicates: Iterable[str] | None = None,
    ) -> None:
        super().__init__(message, reason="in-flight")
        self.future = future
        self.predicates = (
            frozenset(predicates) if predicates is not None else None
        )


class RemoteSite(Protocol):
    """Anything the link can snapshot — a Site or an UnreliableRemote."""

    def snapshot(self, predicates: Iterable[str] | None = None) -> Database: ...


class BreakerState(enum.Enum):
    """Classic three-state circuit breaker."""

    CLOSED = "closed"        # normal operation
    OPEN = "open"            # fast-failing, remote not touched
    HALF_OPEN = "half-open"  # one probe in flight

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FetchPolicy:
    """How hard one :meth:`RemoteLink.fetch` tries before giving up."""

    #: attempts per fetch (1 initial + max_attempts-1 retries)
    max_attempts: int = 4
    #: per-attempt timeout in simulated seconds (None = no timeout);
    #: honoured by fault-aware remotes that accept a ``timeout=`` kwarg
    attempt_timeout: Optional[float] = None
    #: backoff before retry n (1-based): min(base * factor**(n-1), max),
    #: multiplied by a jitter factor drawn from [1-jitter, 1+jitter]
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.5
    #: consecutive failed attempts (across fetches) that open the breaker
    failure_threshold: int = 5
    #: fast-failed fetches while open before the breaker half-opens
    cooldown_fetches: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_fetches < 0:
            raise ValueError("cooldown_fetches must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if min(self.backoff_base, self.backoff_factor, self.backoff_max) < 0:
            raise ValueError("backoff parameters must be non-negative")

    def backoff(self, retry: int, rng: random.Random) -> float:
        """The simulated wait before *retry* (1-based)."""
        wait = min(self.backoff_base * self.backoff_factor ** (retry - 1),
                   self.backoff_max)
        if self.backoff_jitter:
            wait *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return wait


@dataclass
class LinkStats:
    """Fetch-level accounting for one :class:`RemoteLink`."""

    fetches: int = 0
    fetches_ok: int = 0
    #: fetches that exhausted the retry budget (or died half-open)
    fetches_failed: int = 0
    #: fetches rejected instantly by an open breaker (remote untouched)
    fetches_fast_failed: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    #: fetches issued asynchronously via :meth:`RemoteLink.fetch_nowait`
    #: (each also counts as an ordinary fetch when its worker runs)
    fetches_async: int = 0
    #: simulated seconds spent waiting in backoff
    backoff_waited: float = 0.0
    #: simulated seconds spent on attempt latency
    attempt_latency: float = 0.0

    def summary_rows(self) -> list[tuple[str, object]]:
        return [
            ("remote fetches", self.fetches),
            ("remote fetches async (overlapped)", self.fetches_async),
            ("remote fetches ok", self.fetches_ok),
            ("remote fetches failed", self.fetches_failed),
            ("remote fast-fails (breaker open)", self.fetches_fast_failed),
            ("remote attempts", self.attempts),
            ("remote retries", self.retries),
            ("remote attempt failures", self.failures),
            ("remote timeouts", self.timeouts),
            ("breaker opens", self.breaker_opens),
            ("breaker half-opens", self.breaker_half_opens),
            ("breaker closes", self.breaker_closes),
            ("simulated backoff wait", round(self.backoff_waited, 4)),
            ("simulated attempt latency", round(self.attempt_latency, 4)),
        ]


class RemoteLink:
    """A remote site behind a retry/backoff/breaker fetch policy.

    ``fetch(predicates=...)`` either returns a snapshot or raises
    :class:`~repro.errors.RemoteUnavailableError`; it never raises
    anything else and never blocks forever.  The simulated ``clock``
    advances by attempt latencies and backoff waits, so benchmarks can
    report verdict latency without sleeping.

    The link is safe to call from multiple threads.  Breaker state,
    statistics, the rng, and the clock live under one re-entrant lock;
    the wrapped remote's ``snapshot`` calls are serialized on a separate
    I/O lock (one link ~ one connection), so attempt outcomes form a
    total order and "consecutive failures" keeps its serial meaning.
    ``fetch_nowait`` overlaps a fetch with the caller's own work by
    running ``fetch`` on a small internal worker pool.
    """

    def __init__(
        self,
        remote: RemoteSite,
        policy: Optional[FetchPolicy] = None,
        seed: int = 0,
        async_workers: int = 2,
    ) -> None:
        if async_workers < 1:
            raise ValueError("async_workers must be at least 1")
        self.remote = remote
        self.policy = policy if policy is not None else FetchPolicy()
        self.stats = LinkStats()
        self.clock = 0.0
        self._rng = random.Random(seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._open_fetches = 0
        # Fault-aware remotes take a per-attempt timeout; plain Sites don't.
        self._supports_timeout = hasattr(remote, "last_latency")
        #: guards breaker/stats/clock/rng bookkeeping (re-entrant: the
        #: in-flight condition below shares it)
        self._lock = threading.RLock()
        #: serializes the actual ``remote.snapshot`` calls
        self._io_lock = threading.Lock()
        self._async_workers = async_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._inflight = 0
        self._inflight_cond = threading.Condition(self._lock)

    # -- breaker ----------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    @property
    def available(self) -> bool:
        """Would a fetch right now at least try the remote?"""
        with self._lock:
            return self._state is not BreakerState.OPEN or (
                self._open_fetches >= self.policy.cooldown_fetches
            )

    def _transition(self, state: BreakerState) -> None:
        # Callers hold self._lock.
        if state is self._state:
            return
        self._state = state
        if state is BreakerState.OPEN:
            self.stats.breaker_opens += 1
            self._open_fetches = 0
        elif state is BreakerState.HALF_OPEN:
            self.stats.breaker_half_opens += 1
        else:
            self.stats.breaker_closes += 1
            self._consecutive_failures = 0

    # -- fetching ---------------------------------------------------------------
    def _attempt(self, predicates: Iterable[str] | None) -> Database:
        # The remote itself is not assumed thread-safe; one connection,
        # one snapshot at a time.  last_latency is read while we still
        # hold the I/O lock so a concurrent attempt can't clobber it.
        with self._io_lock:
            if self._supports_timeout:
                try:
                    return self.remote.snapshot(
                        predicates=predicates, timeout=self.policy.attempt_timeout
                    )
                finally:
                    latency = getattr(self.remote, "last_latency", 0.0)
                    with self._lock:
                        self.clock += latency
                        self.stats.attempt_latency += latency
            return self.remote.snapshot(predicates=predicates)

    def fetch(self, predicates: Iterable[str] | None = None) -> Database:
        """Fetch a (possibly predicate-restricted) remote snapshot.

        Raises :class:`~repro.errors.RemoteUnavailableError` when the
        breaker is open (reason ``"circuit-open"``) or the retry budget
        is exhausted (reason ``"exhausted"``).
        """
        policy = self.policy
        with self._lock:
            self.stats.fetches += 1
            if self._state is BreakerState.OPEN:
                if self._open_fetches < policy.cooldown_fetches:
                    self._open_fetches += 1
                    self.stats.fetches_fast_failed += 1
                    raise RemoteUnavailableError(
                        f"circuit breaker open ({self._open_fetches}/"
                        f"{policy.cooldown_fetches} of cooldown)",
                        reason="circuit-open",
                    )
                self._transition(BreakerState.HALF_OPEN)

            # Half-open risks exactly one probe; closed gets the full budget.
            budget = (
                1 if self._state is BreakerState.HALF_OPEN else policy.max_attempts
            )
        last_error: Optional[RemoteUnavailableError] = None
        for attempt in range(budget):
            with self._lock:
                if attempt:
                    wait = policy.backoff(attempt, self._rng)
                    self.clock += wait
                    self.stats.backoff_waited += wait
                    self.stats.retries += 1
                self.stats.attempts += 1
            try:
                snapshot = self._attempt(predicates)
            except RemoteUnavailableError as exc:
                last_error = exc
                with self._lock:
                    self.stats.failures += 1
                    if exc.reason == "timeout":
                        self.stats.timeouts += 1
                    self._consecutive_failures += 1
                    if (
                        self._state is BreakerState.HALF_OPEN
                        or self._consecutive_failures >= policy.failure_threshold
                    ):
                        self._transition(BreakerState.OPEN)
                        opened = True
                    else:
                        opened = False
                if opened:
                    break
                continue
            with self._lock:
                self._consecutive_failures = 0
                if self._state is not BreakerState.CLOSED:
                    self._transition(BreakerState.CLOSED)
                self.stats.fetches_ok += 1
            return snapshot

        with self._lock:
            self.stats.fetches_failed += 1
            state = self._state
            attempts = self.stats.attempts
        raise RemoteUnavailableError(
            f"remote fetch failed after {attempts} cumulative "
            f"attempts (breaker {state}): {last_error}",
            reason="exhausted",
        )

    # -- overlapped (async) fetching --------------------------------------------
    def fetch_nowait(
        self, predicates: Iterable[str] | None = None
    ) -> Database:
        """Issue a fetch without waiting for it; always raises.

        An open, still-cooling breaker fast-fails synchronously exactly
        like :meth:`fetch` (queueing a fetch the breaker would reject is
        pointless).  Otherwise the fetch is submitted to the link's
        worker pool and :class:`RemoteFetchInFlight` is raised carrying
        the future — the caller defers the update and the drain settles
        it from the future's result.  Drains themselves must use the
        blocking :meth:`fetch` as their source, never this method.
        """
        predicates = frozenset(predicates) if predicates is not None else None
        policy = self.policy
        with self._lock:
            if (
                self._state is BreakerState.OPEN
                and self._open_fetches < policy.cooldown_fetches
            ):
                self.stats.fetches += 1
                self._open_fetches += 1
                self.stats.fetches_fast_failed += 1
                raise RemoteUnavailableError(
                    f"circuit breaker open ({self._open_fetches}/"
                    f"{policy.cooldown_fetches} of cooldown)",
                    reason="circuit-open",
                )
            self.stats.fetches_async += 1
            self._inflight += 1
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._async_workers,
                    thread_name_prefix="remote-fetch",
                )
            pool = self._pool
        try:
            future = pool.submit(self.fetch, predicates=predicates)
        except BaseException:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
            raise
        future.add_done_callback(self._fetch_settled)
        raise RemoteFetchInFlight(
            "escalation fetch issued asynchronously; result pending",
            future,
            predicates,
        )

    def _fetch_settled(self, _future: "Future[Database]") -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        """Async fetches issued but not yet completed."""
        with self._lock:
            return self._inflight

    def wait_inflight(self, timeout: Optional[float] = None) -> bool:
        """Block until every async fetch has completed (or timeout)."""
        with self._inflight_cond:
            return self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def close(self) -> None:
        """Shut down the async worker pool, waiting for in-flight fetches."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
