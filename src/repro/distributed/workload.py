"""Seeded workload generators for the distributed benchmarks.

Two scenarios keyed to the paper's running examples:

* :func:`interval_workload` — the forbidden-intervals constraint of
  Examples 5.3/6.1: the local relation holds cleared intervals, the
  remote relation holds sensor readings, and the update stream inserts
  new intervals with a tunable probability of being covered by existing
  ones (the knob that drives the local-resolution rate).
* :func:`employee_workload` — the employee/department scenario of
  Section 2: local ``emp`` insertions checked against remote
  ``closedDept`` and ``salRange`` tables via CQC local tests.
* :func:`federated_workload` — the employee scenario widened to N
  remote sites: four policy tables dealt round-robin across the
  remotes, so escalations fan out and per-site faults exercise the
  partial-recovery drain.
* :func:`bursty_workload` — an adversarial metering stream: hot-key
  bursts (for key-range rebalancing and crash-recovery runs) threaded
  with clusters of cap-violating readings, so rejections arrive in
  bunches rather than uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from repro.constraints.constraint import Constraint, ConstraintSet
from repro.datalog.database import Database
from repro.distributed.site import FederatedDatabase, Site, TwoSiteDatabase
from repro.updates.update import Deletion, Insertion, Update

__all__ = [
    "Workload",
    "interval_workload",
    "employee_workload",
    "federated_workload",
    "bursty_workload",
]


@dataclass
class Workload:
    """Everything a bench needs to drive the distributed checker."""

    name: str
    constraints: ConstraintSet
    sites: FederatedDatabase
    updates: list[Insertion] = field(default_factory=list)

    @property
    def local_predicates(self) -> set[str]:
        return self.sites.local_predicates


def interval_workload(
    initial_intervals: int = 100,
    num_updates: int = 100,
    covered_fraction: float = 0.7,
    value_range: int = 10_000,
    remote_points: int = 50,
    seed: int = 0,
    remote_cost: float = 1.0,
) -> Workload:
    """Forbidden intervals: local ``cleared(Lo, Hi)``, remote ``reading(Z)``.

    The constraint says no remote reading may fall inside a cleared
    interval.  A fraction *covered_fraction* of the inserted intervals is
    drawn inside an existing interval (resolvable locally); the rest are
    fresh (forcing a remote check).
    """
    rng = random.Random(seed)
    constraint = Constraint(
        "panic :- cleared(X,Y) & reading(Z) & X <= Z & Z <= Y",
        "no-reading-in-cleared-interval",
    )
    intervals: list[tuple[int, int]] = []
    for _ in range(initial_intervals):
        lo = rng.randrange(value_range)
        hi = lo + rng.randrange(1, max(2, value_range // 50))
        intervals.append((lo, hi))

    # Remote readings strictly outside every cleared interval, so the
    # constraint holds initially.
    readings: list[tuple[int,]] = []
    attempts = 0
    while len(readings) < remote_points and attempts < remote_points * 100:
        attempts += 1
        z = rng.randrange(value_range * 2)
        if not any(lo <= z <= hi for lo, hi in intervals):
            readings.append((z,))

    updates: list[Insertion] = []
    for _ in range(num_updates):
        if intervals and rng.random() < covered_fraction:
            lo, hi = rng.choice(intervals)
            if hi - lo >= 2:
                a = rng.randrange(lo, hi)
                b = rng.randrange(a, hi + 1)
            else:
                a, b = lo, hi
            updates.append(Insertion("cleared", (a, b)))
        else:
            lo = rng.randrange(value_range, value_range * 2)
            hi = lo + rng.randrange(1, 50)
            updates.append(Insertion("cleared", (lo, hi)))

    sites = TwoSiteDatabase(
        local=Site("local", {"cleared": intervals}),
        remote=Site("remote", {"reading": readings}, cost_per_read=remote_cost),
    )
    return Workload(
        name="forbidden-intervals",
        constraints=ConstraintSet([constraint]),
        sites=sites,
        updates=updates,
    )


def employee_workload(
    initial_employees: int = 200,
    num_updates: int = 100,
    departments: int = 20,
    closed_departments: int = 3,
    covered_fraction: float = 0.7,
    seed: int = 0,
    remote_cost: float = 1.0,
) -> Workload:
    """Employees at the local site, department policy tables remote.

    Constraints (both CQCs, so the Theorem 5.2/5.3 local tests apply):

    * nobody may work in a closed department
      (``panic :- emp(E,D,S) & closedDept(D)``);
    * nobody may earn below a department's salary floor
      (``panic :- emp(E,D,S) & salFloor(D,F) & S < F``).

    An insertion into ``emp`` resolves locally when a colleague in the
    same department already earns no more than the newcomer — the
    Theorem 5.2 containment works out to exactly that test.
    """
    rng = random.Random(seed)
    open_departments = [f"d{i}" for i in range(closed_departments, departments)]
    closed = [f"d{i}" for i in range(closed_departments)]
    floors = {d: rng.randrange(20, 80) for d in open_departments}

    employees: list[tuple[str, str, int]] = []
    for i in range(initial_employees):
        dept = rng.choice(open_departments)
        salary = floors[dept] + rng.randrange(0, 100)
        employees.append((f"e{i}", dept, salary))

    updates: list[Insertion] = []
    for i in range(num_updates):
        name = f"n{i}"
        if rng.random() < covered_fraction and employees:
            # Hire into a staffed department at or above a colleague's pay:
            # the local test proves safety without remote access.
            colleague = rng.choice(employees)
            salary = colleague[2] + rng.randrange(0, 20)
            updates.append(Insertion("emp", (name, colleague[1], salary)))
        else:
            dept = rng.choice(open_departments + closed)
            salary = rng.randrange(0, 200)
            updates.append(Insertion("emp", (name, dept, salary)))

    sites = TwoSiteDatabase(
        local=Site("local", {"emp": employees}),
        remote=Site(
            "remote",
            {
                "closedDept": [(d,) for d in closed],
                "salFloor": [(d, f) for d, f in floors.items()],
            },
            cost_per_read=remote_cost,
        ),
    )
    constraints = ConstraintSet(
        [
            Constraint("panic :- emp(E,D,S) & closedDept(D)", "no-closed-dept"),
            Constraint("panic :- emp(E,D,S) & salFloor(D,F) & S < F", "salary-floor"),
        ]
    )
    return Workload(
        name="employees",
        constraints=constraints,
        sites=sites,
        updates=updates,
    )


#: the federated policy tables, in round-robin placement order
_FEDERATED_TABLES = ("closedDept", "salFloor", "blacklisted", "deptBudget")


def federated_workload(
    remote_sites: int = 3,
    initial_employees: int = 200,
    num_updates: int = 100,
    departments: int = 20,
    closed_departments: int = 3,
    covered_fraction: float = 0.7,
    blacklisted_fraction: float = 0.05,
    seed: int = 0,
    remote_cost: float = 1.0,
) -> Workload:
    """The employee scenario widened to an N-site federation.

    Local ``emp``; four policy tables dealt round-robin across
    *remote_sites* named remotes (``remote1`` .. ``remoteN``), declared
    via ``site_predicates`` so ownership survives empty tables:

    * ``closedDept(D)`` / ``salFloor(D,F)`` — as in
      :func:`employee_workload`;
    * ``blacklisted(E)`` — nobody on the blacklist may be hired
      (``panic :- emp(E,D,S) & blacklisted(E)``); a *fresh* name can
      never be cleared locally, so every insertion escalates at least to
      the blacklist's site;
    * ``deptBudget(D,B)`` — nobody may out-earn their department's
      budget cap (``panic :- emp(E,D,S) & deptBudget(D,B) & S > B``).

    A *covered_fraction* hire duplicates a colleague's salary, so the
    three department constraints settle locally and the escalation
    fetches exactly one site; the rest escalate wide (a multi-site
    fan-out).  A *blacklisted_fraction* of the new names is seeded into
    ``blacklisted``, so some escalations come back VIOLATED.
    """
    if remote_sites < 1:
        raise ValueError("remote_sites must be >= 1")
    rng = random.Random(seed)
    open_departments = [f"d{i}" for i in range(closed_departments, departments)]
    closed = [f"d{i}" for i in range(closed_departments)]
    floors = {d: rng.randrange(20, 80) for d in open_departments}
    # Salaries land in [floor, floor+119]; the cap clears every
    # consistent hire and catches wild ones.
    budgets = {d: f + 120 for d, f in floors.items()}

    employees: list[tuple[str, str, int]] = []
    for i in range(initial_employees):
        dept = rng.choice(open_departments)
        salary = floors[dept] + rng.randrange(0, 100)
        employees.append((f"e{i}", dept, salary))

    blacklisted = [
        (f"n{i}",)
        for i in range(num_updates)
        if rng.random() < blacklisted_fraction
    ]

    updates: list[Insertion] = []
    for i in range(num_updates):
        name = f"n{i}"
        if rng.random() < covered_fraction and employees:
            # Duplicate a colleague's salary: the floor, budget, and
            # closed-department constraints all settle locally, leaving
            # only the blacklist check for the remote.
            colleague = rng.choice(employees)
            updates.append(Insertion("emp", (name, colleague[1], colleague[2])))
        else:
            dept = rng.choice(open_departments + closed)
            salary = rng.randrange(0, 200)
            updates.append(Insertion("emp", (name, dept, salary)))

    tables: dict[str, list[tuple]] = {
        "closedDept": [(d,) for d in closed],
        "salFloor": [(d, f) for d, f in floors.items()],
        "blacklisted": blacklisted,
        "deptBudget": [(d, b) for d, b in budgets.items()],
    }
    placement: dict[str, list[str]] = {
        f"remote{i + 1}": [] for i in range(remote_sites)
    }
    for index, table in enumerate(_FEDERATED_TABLES):
        placement[f"remote{(index % remote_sites) + 1}"].append(table)
    remotes = [
        Site(
            name,
            {table: tables[table] for table in owned},
            cost_per_read=remote_cost,
        )
        for name, owned in placement.items()
    ]
    sites = FederatedDatabase(
        local=Site("local", {"emp": employees}),
        remotes=remotes,
        site_predicates=placement,
    )
    constraints = ConstraintSet(
        [
            Constraint("panic :- emp(E,D,S) & closedDept(D)", "no-closed-dept"),
            Constraint("panic :- emp(E,D,S) & salFloor(D,F) & S < F", "salary-floor"),
            Constraint("panic :- emp(E,D,S) & blacklisted(E)", "no-blacklisted"),
            Constraint(
                "panic :- emp(E,D,S) & deptBudget(D,B) & S > B", "dept-budget"
            ),
        ]
    )
    return Workload(
        name=f"federated-employees-{remote_sites}",
        constraints=constraints,
        sites=sites,
        updates=updates,
    )


def bursty_workload(
    num_updates: int = 500,
    key_space: int = 200,
    cap: int = 100,
    burst_probability: float = 0.25,
    burst_length: tuple[int, int] = (8, 32),
    hot_width: int = 20,
    violation_cluster_rate: float = 0.2,
    covered_fraction: float = 0.8,
    deletion_rate: float = 0.15,
    initial_readings: int = 60,
    seed: int = 0,
    remote_cost: float = 1.0,
) -> Workload:
    """Adversarial metering stream: hot-key bursts + violation clusters.

    Local ``meter(K, V)`` readings, a remote global alarm threshold
    ``capLimit(C)``, one CQC constraint: no reading may exceed the
    threshold (``panic :- meter(K,V) & capLimit(C) & V > C``).  The
    Theorem 5.2 local test clears a new reading whenever some accepted
    reading already carries an equal-or-higher value, so a
    *covered_fraction* of the stream resolves locally and the rest
    escalates to the remote site.

    The stream alternates between a *background* regime (uniform keys)
    and *bursts*: a run of ``burst_length[0]..burst_length[1]``
    consecutive updates whose keys all land in one hot window of
    *hot_width* keys — the adversarial shape for key-range sharding
    (one shard absorbs the whole burst, driving rebalances) and for
    crash recovery (a kill inside a burst leaves a dense, correlated
    tail to replay).  A *violation_cluster_rate* fraction of bursts is
    poisoned: every reading in the burst exceeds the threshold, so
    rejections arrive in bunches rather than uniformly — and under a
    faulty link the same clusters defer in bunches instead.
    *deletion_rate* of the background updates retract a previously
    inserted reading, so recovery must reproduce effective (not just
    additive) deltas.

    First-column keys are integers, so ``KeyRangePartitioner`` cuts
    apply directly.
    """
    if num_updates < 0:
        raise ValueError("num_updates must be non-negative")
    if not 0 < hot_width <= key_space:
        raise ValueError("hot_width must be in 1..key_space")
    lo, hi = burst_length
    if not 1 <= lo <= hi:
        raise ValueError("burst_length must be an ascending positive pair")
    rng = random.Random(seed)

    readings: list[tuple[int, int]] = []
    for _ in range(initial_readings):
        readings.append((rng.randrange(key_space), rng.randrange(cap)))
    # Deletions are only ever drawn from facts still live, so the stream
    # never retracts the same fact twice (duplicate insertions stay in
    # the stream — they exercise the redundant-insert path).
    live: list[tuple[int, int]] = []
    live_set: set[tuple[int, int]] = set()

    def _track(fact: tuple[int, int]) -> None:
        if fact not in live_set:
            live.append(fact)
            live_set.add(fact)

    for fact in readings:
        _track(fact)

    def _value(poisoned: bool) -> int:
        if poisoned:
            return cap + 1 + rng.randrange(cap)
        if live and rng.random() < covered_fraction:
            # At or below an accepted reading: the local containment
            # test proves safety without touching the remote threshold.
            _, ceiling = live[rng.randrange(len(live))]
            return rng.randrange(ceiling + 1)
        return rng.randrange(cap)

    updates: list[Update] = []
    remaining_burst = 0
    hot_base = 0
    poisoned = False
    while len(updates) < num_updates:
        if remaining_burst == 0 and rng.random() < burst_probability:
            remaining_burst = rng.randrange(lo, hi + 1)
            hot_base = rng.randrange(key_space - hot_width + 1)
            poisoned = rng.random() < violation_cluster_rate
        if remaining_burst:
            remaining_burst -= 1
            key = hot_base + rng.randrange(hot_width)
            value = _value(poisoned)
            updates.append(Insertion("meter", (key, value)))
            if not poisoned:
                _track((key, value))
        elif live and rng.random() < deletion_rate:
            victim = live.pop(rng.randrange(len(live)))
            live_set.discard(victim)
            updates.append(Deletion("meter", victim))
        else:
            fact = (rng.randrange(key_space), _value(False))
            updates.append(Insertion("meter", fact))
            _track(fact)

    sites = TwoSiteDatabase(
        local=Site("local", {"meter": readings}),
        remote=Site(
            "remote", {"capLimit": [(cap,)]}, cost_per_read=remote_cost
        ),
    )
    constraint = Constraint(
        "panic :- meter(K,V) & capLimit(C) & V > C", "reading-within-cap"
    )
    return Workload(
        name="bursty-metering",
        constraints=ConstraintSet([constraint]),
        sites=sites,
        updates=updates,
    )
