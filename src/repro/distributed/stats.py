"""Protocol statistics shared by the distributed checkers.

:class:`ProtocolStats` is the one counter surface both
:class:`~repro.distributed.checker.DistributedChecker` and
:class:`~repro.distributed.sharded.ShardedChecker` report through, and
:func:`sync_session_gauges` is the one place the cumulative session /
compiler / link gauges get mirrored into it — extracted here so the two
checkers cannot drift apart in how they fold the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, Optional

from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import CheckSession

__all__ = ["ProtocolStats", "sync_session_gauges"]


@dataclass
class ProtocolStats:
    """Aggregated statistics across processed updates."""

    updates: int = 0
    resolved_at_level: dict[CheckLevel, int] = field(
        default_factory=lambda: {level: 0 for level in CheckLevel}
    )
    remote_round_trips: int = 0
    #: shard mode: sibling-shard fetches for cross-shard union views
    #: (site-local data, so never counted as remote round trips)
    peer_fetches: int = 0
    rejected: int = 0
    #: updates withheld because a verdict stayed UNKNOWN while the
    #: checker runs with ``apply_on_unknown=False``
    deferred_unknown: int = 0
    #: stream mode: constraint materializations built from scratch
    materializations_built: int = 0
    #: stream mode: checks answered from a maintained materialization
    materialization_reuses: int = 0
    #: stream mode: materializations dropped by the size/recency policy
    materializations_evicted: int = 0
    #: stream mode: delta-maintenance passes over materializations
    incremental_deltas: int = 0
    #: batched stream mode: coalesced maintenance flushes / updates
    #: settled inside a batch / batches replayed / probe vetoes
    batches_flushed: int = 0
    batched_updates: int = 0
    batch_replays: int = 0
    batch_probe_vetoes: int = 0
    #: transactions started / aborted via exact token rollback
    transactions: int = 0
    transactions_rolled_back: int = 0
    #: parallel shard mode: fence-free segments drained at a barrier,
    #: and updates that fenced (ran alone between barriers)
    parallel_segments: int = 0
    fences: int = 0
    #: modifications decomposed into cross-shard delete+insert halves
    cross_shard_modifications: int = 0
    #: live rebalancing: cut-vector changes applied at a fence, and the
    #: total facts migrated between shards by them
    rebalances: int = 0
    rebalance_moved_facts: int = 0
    #: level-1 verdict LRU accounting (shared by both modes)
    level1_cache_hits: int = 0
    level1_cache_misses: int = 0
    #: updates whose level-3 verdict was DEFERRED (remote unreachable)
    deferred_remote: int = 0
    #: deferred verdicts settled by ``resolve_pending``
    deferred_resolved: int = 0
    #: optimistically applied deferred updates reversed on a VIOLATED resolution
    deferred_rolled_back: int = 0
    #: fault-tolerant link accounting (gauges mirrored from ``LinkStats``;
    #: with a federation these are sums across every site link)
    remote_retries: int = 0
    remote_failures: int = 0
    remote_fast_fails: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    #: process-executor supervision: dead shard workers respawned from
    #: their ``ShardConfig`` pickle and rehydrated by command replay
    worker_restarts: int = 0

    @property
    def resolved_locally(self) -> int:
        return (
            self.resolved_at_level[CheckLevel.CONSTRAINTS_ONLY]
            + self.resolved_at_level[CheckLevel.WITH_UPDATE]
            + self.resolved_at_level[CheckLevel.WITH_LOCAL_DATA]
        )

    @property
    def local_resolution_rate(self) -> float:
        if self.updates == 0:
            return 1.0
        return self.resolved_locally / self.updates

    def summary_rows(self) -> list[tuple[str, object]]:
        rows: list[tuple[str, object]] = [("updates", self.updates)]
        rows.extend(
            (f"resolved at {level}", self.resolved_at_level[level])
            for level in CheckLevel
        )
        rows.append(("remote round trips", self.remote_round_trips))
        rows.append(("peer (cross-shard) fetches", self.peer_fetches))
        rows.append(("rejected (violations)", self.rejected))
        rows.append(("deferred on unknown", self.deferred_unknown))
        rows.append(("local resolution rate", round(self.local_resolution_rate, 4)))
        rows.append(("materializations built", self.materializations_built))
        rows.append(("materialization reuses", self.materialization_reuses))
        rows.append(("materializations evicted", self.materializations_evicted))
        rows.append(("incremental deltas", self.incremental_deltas))
        rows.append(("batches flushed", self.batches_flushed))
        rows.append(("batched updates", self.batched_updates))
        rows.append(("batch replays", self.batch_replays))
        rows.append(("batch probe vetoes", self.batch_probe_vetoes))
        rows.append(("transactions", self.transactions))
        rows.append(("transactions rolled back", self.transactions_rolled_back))
        rows.append(("parallel segments", self.parallel_segments))
        rows.append(("fences", self.fences))
        rows.append(
            ("cross-shard modifications", self.cross_shard_modifications)
        )
        rows.append(("rebalances", self.rebalances))
        rows.append(("rebalance moved facts", self.rebalance_moved_facts))
        rows.append(("level-1 cache hits", self.level1_cache_hits))
        rows.append(("level-1 cache misses", self.level1_cache_misses))
        rows.append(("deferred (remote unreachable)", self.deferred_remote))
        rows.append(("deferred resolved", self.deferred_resolved))
        rows.append(("deferred rolled back", self.deferred_rolled_back))
        rows.append(("remote retries", self.remote_retries))
        rows.append(("remote failures", self.remote_failures))
        rows.append(("remote fast-fails (breaker open)", self.remote_fast_fails))
        rows.append(("breaker opens", self.breaker_opens))
        rows.append(("breaker half-opens", self.breaker_half_opens))
        rows.append(("breaker closes", self.breaker_closes))
        rows.append(("worker restarts", self.worker_restarts))
        return rows

    def to_dict(self) -> dict:
        """Plain-dict form for checkpoint manifests (JSON-safe).

        ``resolved_at_level`` is keyed by the integer level value; every
        other field is already a plain int.
        """
        payload = {
            field_.name: getattr(self, field_.name)
            for field_ in fields(self)
            if field_.name != "resolved_at_level"
        }
        payload["resolved_at_level"] = {
            str(int(level)): count
            for level, count in self.resolved_at_level.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ProtocolStats":
        data = dict(payload)
        levels = data.pop("resolved_at_level", {})
        stats = cls(**data)
        for key, count in levels.items():
            stats.resolved_at_level[CheckLevel(int(key))] = count
        return stats

    def record_reports(
        self, reports: list[CheckReport], apply_on_unknown: bool = True
    ) -> None:
        """Fold one update's final reports into the counters (shared by
        :class:`~repro.distributed.checker.DistributedChecker` and
        :class:`~repro.distributed.sharded.ShardedChecker`)."""
        if any(report.outcome is Outcome.VIOLATED for report in reports):
            self.rejected += 1
        elif any(report.outcome is Outcome.DEFERRED for report in reports):
            # The deciding level is genuinely unknown while the remote is
            # unreachable: nothing is added to resolved_at_level until
            # resolve_pending settles the verdict, so local_resolution_rate
            # never counts a deferral as local.
            self.deferred_remote += 1
            return
        deciding = (
            max(report.level for report in reports)
            if reports
            else CheckLevel.CONSTRAINTS_ONLY
        )
        self.resolved_at_level[deciding] += 1
        if not apply_on_unknown and any(
            report.outcome is Outcome.UNKNOWN for report in reports
        ):
            self.deferred_unknown += 1


#: cumulative :class:`~repro.core.session.SessionStats` gauges mirrored
#: (summed across sessions) into :class:`ProtocolStats` by
#: :func:`sync_session_gauges`
_SESSION_GAUGES = (
    "materializations_built",
    "materialization_reuses",
    "materializations_evicted",
    "incremental_deltas",
    "batches_flushed",
    "batched_updates",
    "batch_replays",
    "batch_probe_vetoes",
    "peer_fetches",
)


def sync_session_gauges(
    stats: ProtocolStats,
    sessions: Iterable[Optional[CheckSession]],
    compiler,
    remote_link=None,
) -> None:
    """Mirror the cumulative session/compiler/link gauges into *stats*.

    Session gauges are *summed* across the given sessions — a single
    session for :class:`~repro.distributed.checker.DistributedChecker`,
    one per shard for
    :class:`~repro.distributed.sharded.ShardedChecker`; they are
    cumulative gauges, not per-call increments, so the copy is a
    wholesale overwrite.  *remote_link* may be a single
    :class:`~repro.distributed.remote.RemoteLink` or a
    :class:`~repro.distributed.remote.FederationLink` — both expose a
    ``stats`` aggregate with the mirrored fields (the federation's is
    the sum over its site links)."""
    live = [session for session in sessions if session is not None]
    if live:
        for gauge in _SESSION_GAUGES:
            setattr(
                stats, gauge, sum(getattr(s.stats, gauge) for s in live)
            )
    info = compiler.level1_cache_info()
    stats.level1_cache_hits = info["hits"]
    stats.level1_cache_misses = info["misses"]
    if remote_link is not None:
        ls = remote_link.stats
        stats.remote_retries = ls.retries
        stats.remote_failures = ls.failures
        stats.remote_fast_fails = ls.fetches_fast_failed
        stats.breaker_opens = ls.breaker_opens
        stats.breaker_half_opens = ls.breaker_half_opens
        stats.breaker_closes = ls.breaker_closes
