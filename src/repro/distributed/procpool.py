"""Process-pool shard execution: the sharded protocol across processes.

:class:`~repro.distributed.sharded.ShardedChecker` with
``executor="process"`` runs each shard's level pipeline in its own
worker **process** instead of a thread.  The GIL then stops being the
ceiling for CPU-bound maintenance work — but nothing object-shaped can
cross the boundary.  The contract (DESIGN.md §11):

* each worker owns a serialized *state slice*: its shard's facts plus a
  :class:`~repro.core.session.CheckSession` rebuilt over a prewarmed
  :class:`~repro.core.compiler.ConstraintCompiler` from constraint
  *source strings* (:class:`ShardConfig` — a pure-data pickle, no live
  stores or sessions ever cross);
* only picklable messages cross: update objects in,
  :class:`~repro.core.outcomes.CheckReport` lists, fact tuples, and
  :class:`~repro.core.session.SessionStats` snapshots out;
* a worker can never reach the remote site.  Its session runs against a
  raising remote source, so an escalation defers at the process
  boundary and the **parent bounces it**: the worker reports the needed
  predicates, the parent fetches through its fault-tolerant link, and
  either ships the facts back (the worker settles the just-queued entry
  tail — verdicts land exactly where the serial run's would) or ships
  the failure detail (the entry stays queued, byte-identical DEFERRED
  reports).  The breaker therefore sees the same fetch sequence as the
  serial run;
* the deferred-verdict drain is parent-coordinated: per-worker
  quarantine under pinned materializations (``drain_begin``), a global
  oldest-first walk over the shard queues with the parent evaluating
  the partial-recovery dark/blocked guards on its own compiler, one
  fetch + ``drain_settle`` per eligible entry, and ``drain_end`` to
  redo what stayed queued.  Shard databases are disjoint, so per-worker
  quarantine order is physically equivalent to the global newest-first
  order the thread executor uses.

Verdicts and final database state are byte-identical to the serial
checker; stats are equivalent up to batching boundaries (an
escalation-capable update always runs as its own slice so the worker
never defers mid-stream).

The parent additionally **supervises** its workers: a worker process
that dies (OOM-killed, segfaulted, ``kill -9``-ed) surfaces as
``BrokenProcessPool`` on the next command, and the runner respawns it
from the shard's :class:`ShardConfig` baseline, replays the parent-held
log of mutating commands since that baseline (every command is
deterministic because the parent injects all remote and sibling-shard
data with the command itself), and retries the command that found the
pool broken — it never reached the worker's state, so the retry is
exact.  The baseline is refreshed from the live worker every
``_REFRESH_EVERY`` mutating commands so a respawn replays a short
suffix, not the whole history.  Each respawn counts into
``ProtocolStats.worker_restarts``; once a shard exhausts
``max_worker_restarts``, the typed
:class:`~repro.errors.ShardWorkerCrashed` (shard index + last
dispatched sequence number) propagates instead of the raw pool error.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass, replace
from types import SimpleNamespace
from typing import Iterable, Mapping, Optional, Sequence

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import CheckSession, _fetch_remote
from repro.datalog.database import Database
from repro.distributed.rebalance import extract_range, inject_range
from repro.errors import RemoteUnavailableError, ShardWorkerCrashed
from repro.updates.update import Update

__all__ = ["ShardConfig", "ProcessShardRunner"]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to rebuild one shard's session.

    Pure data: constraints travel as ``(name, source)`` pairs and facts
    as tuples, so the pickle carries no live engine, database, or lock.
    """

    shard: int
    constraint_sources: tuple[tuple[str, str], ...]
    site_predicates: frozenset
    local_predicates: frozenset
    peer_predicates: frozenset
    #: predicate -> owning remote site name (the federation placement)
    placement: tuple[tuple[str, str], ...]
    use_interval_datalog: bool
    apply_on_unknown: bool
    max_materializations: Optional[int]
    facts: tuple[tuple[str, tuple], ...]
    #: stage effect records in the worker for the parent's journal
    #: (workers never touch the journal file — effects ride the
    #: command results; see ``_WorkerEffectLog``)
    journal: bool = False


# ---------------------------------------------------------------------------
# Worker-side state and commands.  Everything below the line runs inside
# the shard's worker process; the module-global ``_WORKER`` dict is that
# process's whole mutable state (single-worker pools serialize commands,
# so no locking is needed).
# ---------------------------------------------------------------------------

_WORKER: dict = {}


class _WorkerEffectLog:
    """Worker-side stand-in for the journal's effect log.

    A worker process must never touch the journal file — the parent owns
    the single append stream and its commit order.  Instead the session
    stages its would-be records here, and each stream command drains the
    staged list into its (picklable) result; the parent commits them
    through its :class:`~repro.durability.journal.OrderedJournalCommitter`.
    Replayed commands during a worker revive stage again, but the parent
    discards replay results, so every effect journals exactly once.
    """

    __slots__ = ("staged",)

    def __init__(self) -> None:
        self.staged: list[tuple] = []

    def record_update(self, update, reports, *, applied, token, entry) -> None:
        self.staged.append((update, list(reports), applied, token, entry))

    def safe_point(self) -> None:
        """Sync/checkpoint cadence is parent-side (per committed record)."""


def _clear_effects() -> None:
    log = _WORKER["session"].effect_log
    if log is not None:
        log.staged = []


def _drain_effects() -> Optional[list[tuple]]:
    log = _WORKER["session"].effect_log
    if log is None:
        return None
    staged = log.staged
    log.staged = []
    return staged


def _boundary_remote(predicates=None):
    """The worker's remote source: always unreachable.  An escalation
    defers and queues exactly as behind a dead link; the parent then
    bounces the fetch through its own link."""
    raise RemoteUnavailableError(
        "escalation crosses the process boundary", reason="process-boundary"
    )


def _peer_source(predicates=None):
    """Serve the sibling-shard facts the parent injected with the
    current command.  Fence scheduling guarantees a spanning read only
    ever happens under a command that carried them."""
    peer_db = _WORKER.get("peer_db")
    if peer_db is None:
        raise RuntimeError(
            "spanning read without injected peer facts (fence protocol bug)"
        )
    if predicates is None:
        return peer_db
    restricted = Database()
    wanted = set(predicates)
    for predicate in peer_db.predicates():
        if predicate in wanted:
            for fact in peer_db.facts(predicate):
                restricted.insert(predicate, fact)
    return restricted


def _build_db(facts: Mapping[str, Iterable[tuple]]) -> Database:
    db = Database()
    for predicate, rows in facts.items():
        for row in rows:
            db.insert(predicate, tuple(row))
    return db


def _watch_parent(parent_pid: int) -> None:
    """Exit the worker once its parent is gone (reparented to init).

    A ``kill -9`` of the parent cannot run executor shutdown, and the
    pool's call-queue pipe never sees EOF (every worker inherits the
    write end), so orphaned workers would otherwise block on the queue
    forever — and keep the crashed run's stdout/stderr pipes open,
    wedging any supervisor that waits for them.  The crash-safety story
    (journal + ``--resume``) only works if a hard kill actually ends
    the whole tree.
    """
    while os.getppid() == parent_pid:
        time.sleep(1.0)
    os._exit(2)


def _init_worker(config: ShardConfig) -> None:
    threading.Thread(
        target=_watch_parent, args=(os.getppid(),), daemon=True
    ).start()
    constraints = ConstraintSet(
        [
            Constraint(source, name)
            for name, source in config.constraint_sources
        ]
    )
    placement = dict(config.placement)
    compiler = ConstraintCompiler(
        constraints,
        config.site_predicates,
        config.use_interval_datalog,
        site_of=placement.get,
    )
    compiler.prewarm()
    seq_cell = [0]
    session = CheckSession(
        compiler=compiler,
        local_predicates=config.local_predicates,
        local_db=_build_db(dict(config.facts)),
        apply_on_unknown=config.apply_on_unknown,
        max_materializations=config.max_materializations,
        peer_predicates=config.peer_predicates,
        peer_source=_peer_source,
        seq_source=lambda: seq_cell[0],
    )
    if config.journal:
        session.effect_log = _WorkerEffectLog()
    _WORKER.clear()
    _WORKER.update(
        {
            "session": session,
            "compiler": compiler,
            "seq": seq_cell,
            "peer_db": None,
        }
    )


def _cmd_ping() -> bool:
    return "session" in _WORKER


def _cmd_run_slice(
    items: Sequence[tuple[int, Update]], batch_size: Optional[int]
) -> dict:
    """One fence-free, escalation-free run of updates through the
    worker's session (stream order, optional coalesced batching).
    Returns the per-update report lists plus the staged journal effects
    (one per update, slice order) when the worker journals."""
    session = _WORKER["session"]
    cell = _WORKER["seq"]
    _clear_effects()

    def feed():
        for seq, update in items:
            cell[0] = seq
            yield update

    results = session.process_stream(
        feed(), remote=_boundary_remote, batch_size=batch_size
    )
    for reports in results:
        if any(r.outcome is Outcome.DEFERRED for r in reports):
            raise RuntimeError(
                "escalation inside a fence-free slice (routing bug: the "
                "parent must dispatch escalation-capable updates alone)"
            )
    return {"results": results, "effects": _drain_effects()}


def _cmd_run_one(
    seq: int,
    update: Update,
    peer_facts: Mapping[str, Iterable[tuple]],
) -> dict:
    """One update that may read peers (fenced) or escalate (bounced).

    Returns the reports plus, when the update deferred at the process
    boundary, the off-site predicates the parent must fetch — and
    whether the deferral queued a pending entry (it does not when
    another constraint already rejected the update outright).
    """
    session = _WORKER["session"]
    _WORKER["peer_db"] = _build_db(peer_facts)
    _WORKER["seq"][0] = seq
    _clear_effects()
    pending_before = session.pending_count
    reports = session.process(update, remote=_boundary_remote)
    needed: Optional[list[str]] = None
    if any(r.outcome is Outcome.DEFERRED for r in reports):
        needed = sorted(
            session._remote_predicates(
                constraint
                for constraint in session.constraints
                if session.compiler.mentions(constraint, update.predicate)
            )
            - session.peer_predicates
        )
    return {
        "reports": reports,
        "needed": needed,
        "queued": session.pending_count > pending_before,
        "effects": _drain_effects(),
    }


def _cmd_settle_tail(facts: Mapping[str, Iterable[tuple]]) -> dict:
    """Settle the just-bounced tail entry with the facts the parent
    fetched, leaving verdicts, state, and counters exactly as if the
    worker had reached the remote itself.  Under journaling the settle
    re-records, so the bounced update's journal slot gets the *final*
    verdicts and a fresh application token instead of the deferred
    stand-ins staged by ``_cmd_run_one``."""
    session = _WORKER["session"]
    _clear_effects()
    entry = session._pending.pop()
    session._quarantine_entry(entry)
    was_applied = entry.applied
    session._settle_pending(
        entry, _build_db(facts), CheckLevel.FULL_DATABASE,
        record=session.effect_log is not None,
    )
    # The serial run never deferred here: it fetched (one remote fetch)
    # and settled in-stream.  Compensate the defer-time counters.
    session.stats.remote_fetches += 1
    session.stats.deferred_remote -= 1
    if was_applied and not entry.applied:
        session.stats.deferred_rolled_back -= 1
    return {
        "reports": entry.ordered_reports(session.constraints),
        "effects": _drain_effects(),
    }


def _cmd_rerun_with_remote(
    update: Update, facts: Mapping[str, Iterable[tuple]]
) -> dict:
    """Re-run an update that deferred *without* queueing (a sibling
    constraint rejected it outright, so ``_finish`` rolled it back and
    left nothing pending) now that the parent has the remote facts.
    The serial run fetched in-stream and produced definite FULL-level
    verdicts alongside the rejection; replaying against the identical
    pre-state reproduces them.  The deferred attempt already counted
    the update and the rejection — compensate before recounting."""
    session = _WORKER["session"]
    _clear_effects()
    session.stats.updates -= 1
    session.stats.rejected -= 1
    reports = session.process(update, remote=_build_db(facts))
    return {"reports": reports, "effects": _drain_effects()}


def _cmd_patch_defer_detail(detail: str) -> list[CheckReport]:
    """The parent's bounce fetch failed: the entry stays queued, but its
    DEFERRED reports take the *link's* failure detail so the stream
    output is byte-identical to the serial run's."""
    session = _WORKER["session"]
    entry = session._pending[-1]
    for name in entry.unresolved:
        old = entry.reports[name]
        entry.reports[name] = CheckReport(
            name, old.outcome, old.level,
            remote_accessed=False,
            detail=f"remote unreachable: {detail}",
        )
    return entry.ordered_reports(session.constraints)


def _cmd_contains(predicate: str, values: tuple) -> bool:
    return tuple(values) in _WORKER["session"].local_db.facts(predicate)


def _cmd_apply_unchecked(update: Update) -> None:
    _WORKER["session"].apply_unchecked(update)


def _cmd_dump_facts(
    predicates: Optional[Sequence[str]] = None,
) -> dict[str, list[tuple]]:
    db = _WORKER["session"].local_db
    names = db.predicates() if predicates is None else (
        set(predicates) & db.predicates()
    )
    return {
        predicate: sorted(db.facts(predicate), key=repr)
        for predicate in names
    }


def _cmd_stats() -> dict:
    session = _WORKER["session"]
    return {
        "stats": session.stats,
        "level1": _WORKER["compiler"].level1_cache_info(),
        "pending": session.pending_count,
    }


def _cmd_drain_begin() -> list[dict]:
    """Enter the drain: pin the referenced materializations, quarantine
    every applied pending entry (newest first within the shard — the
    shard databases are disjoint, so this is physically equivalent to
    the thread executor's global newest-first order), and describe the
    queue so the parent can walk it globally oldest-first."""
    session = _WORKER["session"]
    pins = ExitStack()
    pins.enter_context(session._pinned_pending_materializations())
    _WORKER["drain_pins"] = pins
    quarantined = {}
    for entry in reversed(session._pending):
        reversal = session._quarantine_entry(entry)
        if reversal is not None:
            quarantined[entry.seq] = reversal
    _WORKER["drain_quarantine"] = quarantined
    return [
        {
            "seq": entry.seq,
            "predicate": entry.update.predicate,
            "needed": sorted(session._entry_needed_predicates(entry)),
            "sites": sorted(session._entry_site_needs(entry)),
        }
        for entry in session._pending
    ]


def _cmd_drain_settle(
    seq: int,
    facts: Mapping[str, Iterable[tuple]],
    peer_facts: Mapping[str, Iterable[tuple]],
) -> tuple[Update, list[CheckReport]]:
    session = _WORKER["session"]
    _WORKER["peer_db"] = _build_db(peer_facts)
    for position, entry in enumerate(session._pending):
        if entry.seq == seq:
            break
    else:
        raise RuntimeError(f"drain_settle: no pending entry with seq {seq}")
    entry = session._settle_at(
        position,
        _build_db(facts),
        CheckLevel.FULL_DATABASE,
        _WORKER["drain_quarantine"],
    )
    return entry.update, entry.ordered_reports(session.constraints)


def _cmd_drain_end() -> dict:
    session = _WORKER["session"]
    try:
        session._redo_quarantined(_WORKER.pop("drain_quarantine", {}))
    finally:
        pins = _WORKER.pop("drain_pins", None)
        if pins is not None:
            pins.close()
    return _cmd_stats()


def _cmd_extract_range(predicate: str, lo, hi) -> dict:
    """Worker wrapper over :func:`repro.distributed.rebalance.extract_range`
    (pure-data result: facts and entry descriptions pickle as-is — the
    boundary remote never hands a worker entry a live future)."""
    return extract_range(_WORKER["session"], predicate, lo, hi)


def _cmd_inject_range(
    predicate: str, facts: Sequence[tuple], entries: Sequence[dict]
) -> None:
    """Worker wrapper over :func:`repro.distributed.rebalance.inject_range`."""
    inject_range(_WORKER["session"], predicate, facts, entries)


def _cmd_dump_state() -> dict:
    """The worker's whole rebuildable state, for the parent's
    supervision baseline: the current facts (applied optimistic deltas
    included), the pending queue verbatim (entries are pure data here —
    undo tokens are plain fact-set dicts, and a worker entry never
    carries a fetch future because its remote source always raises),
    and the session stats snapshot."""
    session = _WORKER["session"]
    for entry in session._pending:
        if entry.future is not None:
            raise RuntimeError(
                "worker pending entry carries a future (boundary bug)"
            )
    return {
        "facts": _cmd_dump_facts(None),
        "pending": list(session._pending),
        "stats": session.stats,
    }


def _cmd_restore_state(pending: Sequence, stats) -> None:
    """Install a supervision baseline into a freshly respawned worker.
    The facts already arrived through the :class:`ShardConfig` pickle;
    the pending queue and stats land verbatim — the queued tokens undo
    by value, so they stay valid against the rebuilt database."""
    session = _WORKER["session"]
    session._pending[:] = list(pending)
    session.stats = stats


def _cmd_set_journal(on: bool) -> None:
    """Attach (or detach) the worker's staging effect log on a live
    worker.  Respawned workers get it through ``ShardConfig.journal``
    instead, so a revive mid-journalled-stream stages replays too."""
    session = _WORKER["session"]
    session.effect_log = _WorkerEffectLog() if on else None


def _cmd_checkpoint_state() -> dict:
    """The manifest-shaped slice of worker state: the pending queue
    (pure data — a worker entry never carries a live future), the
    session stats, and the last arrival seq stamped on this worker."""
    session = _WORKER["session"]
    for entry in session._pending:
        if entry.future is not None:
            raise RuntimeError(
                "worker pending entry carries a future (boundary bug)"
            )
    return {
        "pending": list(session._pending),
        "stats": session.stats,
        "seq": _WORKER["seq"][0],
    }


#: commands that change worker state — the ones the parent's
#: supervision log must replay into a respawned worker
_MUTATING = frozenset(
    {
        _cmd_run_slice,
        _cmd_run_one,
        _cmd_settle_tail,
        _cmd_rerun_with_remote,
        _cmd_patch_defer_detail,
        _cmd_apply_unchecked,
        _cmd_drain_begin,
        _cmd_drain_settle,
        _cmd_drain_end,
        _cmd_extract_range,
        _cmd_inject_range,
    }
)

#: mutating commands between supervision-baseline refreshes
_REFRESH_EVERY = 64


def _patch_detail(
    reports: list[CheckReport], detail: str
) -> list[CheckReport]:
    """Rewrite DEFERRED reports with the parent link's failure detail
    (the unqueued-rejection case — no worker entry to patch)."""
    return [
        CheckReport(
            report.constraint_name, report.outcome, report.level,
            remote_accessed=False,
            detail=f"remote unreachable: {detail}",
        )
        if report.outcome is Outcome.DEFERRED
        else report
        for report in reports
    ]


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


class ProcessShardRunner:
    """Drive one single-worker :class:`ProcessPoolExecutor` per shard on
    behalf of a :class:`~repro.distributed.sharded.ShardedChecker`.

    The runner owns no protocol logic of its own: routing, fence
    classification, and the partial-recovery guards all come from the
    parent checker's compiler, and every verdict is produced by the
    worker sessions.  Single-worker pools serialize commands per shard,
    so worker-held state (the drain's pins and quarantine) is safe
    without locks.
    """

    def __init__(self, checker) -> None:
        self.checker = checker
        self._pools: list[ProcessPoolExecutor] = []
        self._stats_cache: list[Optional[dict]] = [None] * checker.shards
        #: per-shard respawn baseline: the (refreshed) ShardConfig plus
        #: the pending queue / stats captured with it
        self._configs: list[ShardConfig] = []
        self._baselines: list[Optional[dict]] = [None] * checker.shards
        #: mutating commands successfully applied since the baseline
        self._log: list[list[tuple]] = [[] for _ in range(checker.shards)]
        self._restarts = [0] * checker.shards
        self._last_seq = [0] * checker.shards
        self._in_drain = False
        #: the parent-held OrderedJournalCommitter once a journal is
        #: attached; workers only ever see the staging stand-in
        self._journal = None
        placement = tuple(
            sorted(
                (predicate, site)
                for predicate in self._constraint_predicates()
                if (site := checker.sites.site_of(predicate)) is not None
            )
        )
        sources = tuple(
            (constraint.name, str(constraint.program))
            for constraint in checker.constraints
        )
        for shard in range(checker.shards):
            local = checker._owned[shard] | checker.key_aligned
            db = checker._shard_dbs[shard]
            config = ShardConfig(
                shard=shard,
                constraint_sources=sources,
                site_predicates=checker.site_predicates,
                local_predicates=local,
                peer_predicates=(
                    checker.site_predicates - local
                ),
                placement=placement,
                use_interval_datalog=checker.compiler.use_interval_datalog,
                apply_on_unknown=checker.apply_on_unknown,
                max_materializations=checker.max_materializations,
                facts=tuple(
                    (predicate, tuple(db.facts(predicate)))
                    for predicate in sorted(db.predicates())
                ),
            )
            self._configs.append(config)
            self._pools.append(self._spawn(config))
        # Spawn the workers now, single-threaded, so no fork happens
        # later under segment driver threads — and so a config that
        # cannot pickle or rebuild fails here, not mid-stream.
        for future in [pool.submit(_cmd_ping) for pool in self._pools]:
            if not future.result():
                raise RuntimeError("shard worker failed to initialize")

    def _constraint_predicates(self) -> set[str]:
        predicates: set[str] = set(self.checker.site_predicates)
        for constraint in self.checker.constraints:
            predicates |= constraint.predicates()
        return predicates

    @staticmethod
    def _spawn(config: ShardConfig) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_worker,
            initargs=(config,),
        )

    def _submit(self, shard: int, command, *args):
        # A pool whose worker already died raises at submit time, not
        # just at result time — revive before dispatching.
        while True:
            try:
                return self._pools[shard].submit(command, *args)
            except BrokenProcessPool:
                self._revive(shard)

    def _call(self, shard: int, command, *args):
        return self._result(
            shard, self._submit(shard, command, *args), command, args
        )

    # -- worker supervision ---------------------------------------------------
    def _result(self, shard: int, future, command, args=()):
        """Await one command, supervising the worker: a dead process
        surfaces as ``BrokenProcessPool``, the shard is revived (respawn
        from baseline + command-log replay), and the command retried —
        it never reached the revived worker's state, so the retry is
        exact.  Mutating commands join the replay log only once they
        succeed."""
        try:
            value = future.result()
        except BrokenProcessPool:
            value = self._retry(shard, command, args)
        if command in _MUTATING:
            self._log[shard].append((command, args))
            self._maybe_refresh(shard)
        return value

    def _retry(self, shard: int, command, args):
        while True:
            self._revive(shard)
            try:
                return self._pools[shard].submit(command, *args).result()
            except BrokenProcessPool:
                continue

    def _revive(self, shard: int) -> None:
        """Respawn a dead shard worker and rehydrate it: baseline config
        (facts) through the initializer, baseline pending queue + stats
        through ``_cmd_restore_state``, then the mutating-command log
        replayed in order.  Raises :class:`ShardWorkerCrashed` once the
        shard's restart budget is exhausted."""
        checker = self.checker
        self._restarts[shard] += 1
        if self._restarts[shard] > checker.max_worker_restarts:
            raise ShardWorkerCrashed(
                f"shard {shard} worker process died and its restart "
                f"budget (max_worker_restarts="
                f"{checker.max_worker_restarts}) is exhausted",
                shard=shard,
                last_seq=self._last_seq[shard],
            )
        checker.stats.worker_restarts += 1
        self._pools[shard].shutdown(wait=False)
        pool = self._spawn(self._configs[shard])
        self._pools[shard] = pool
        self._stats_cache[shard] = None
        try:
            if not pool.submit(_cmd_ping).result():
                raise RuntimeError(
                    "respawned shard worker failed to initialize"
                )
            baseline = self._baselines[shard]
            if baseline is not None:
                pool.submit(
                    _cmd_restore_state, baseline["pending"], baseline["stats"]
                ).result()
            for command, args in self._log[shard]:
                pool.submit(command, *args).result()
        except BrokenProcessPool:
            # Died again mid-rehydration: charge another restart and
            # rebuild from the baseline (the budget bounds the loop).
            self._revive(shard)
            return
        checker._chaos_hit("worker-revive")

    def _maybe_refresh(self, shard: int) -> None:
        """Re-baseline every ``_REFRESH_EVERY`` mutating commands, so a
        respawn replays a short suffix instead of the whole history —
        but never mid-drain: the drain's worker-held pins and quarantine
        must stay inside one replayable begin..end command span."""
        if self._in_drain or len(self._log[shard]) < _REFRESH_EVERY:
            return
        try:
            state = self._pools[shard].submit(_cmd_dump_state).result()
        except BrokenProcessPool:
            return  # the next command revives and replays the old log
        self._configs[shard] = replace(
            self._configs[shard],
            facts=tuple(
                (predicate, tuple(tuple(fact) for fact in facts))
                for predicate, facts in sorted(state["facts"].items())
            ),
        )
        self._baselines[shard] = {
            "pending": state["pending"],
            "stats": state["stats"],
        }
        self._log[shard].clear()

    # -- journal plumbing -----------------------------------------------------
    def attach_journal(self, committer) -> None:
        """Route worker effects into the parent's write-ahead journal.

        Workers never touch the journal file: each stream command stages
        its would-be records in a :class:`_WorkerEffectLog` and returns
        them with its result, and the parent commits them here — in
        arrival order per shard, folded into stream-position order by
        the :class:`~repro.durability.journal.OrderedJournalCommitter`.
        The flag also lands in the respawn configs, so a worker revived
        mid-stream stages its replayed commands too (the parent discards
        replay results, so each effect journals exactly once).
        """
        self._journal = committer
        self._configs = [
            replace(config, journal=True) for config in self._configs
        ]
        for shard in range(self.checker.shards):
            self._call(shard, _cmd_set_journal, True)

    def _stage_effect(self, journal_pos: Optional[int], effect) -> None:
        if self._journal is None:
            return
        if effect is None:
            raise RuntimeError(
                "journal attached but the worker returned no effect "
                "record (worker/parent journal wiring bug)"
            )
        pos = (
            journal_pos
            if journal_pos is not None
            else self._journal.reserve_next()
        )
        update, reports, applied, token, entry = effect
        self._journal.stage(pos, ("u", update, reports, applied, token, entry))

    @staticmethod
    def _patch_effect(effect, detail: str):
        """Mirror ``_cmd_patch_defer_detail`` / ``_patch_detail`` on the
        parent's copy of a staged effect, so the journalled reports (and
        the pending descriptor's) carry the link's failure detail."""
        if effect is None:
            return None
        update, reports, applied, token, entry = effect
        patched = _patch_detail(reports, detail)
        if entry is not None:
            for name in entry.unresolved:
                old = entry.reports[name]
                entry.reports[name] = CheckReport(
                    name, old.outcome, old.level,
                    remote_accessed=False,
                    detail=f"remote unreachable: {detail}",
                )
        return (update, patched, applied, token, entry)

    # -- fact plumbing --------------------------------------------------------
    def gather_facts(
        self, predicates: set[str], exclude: Optional[int] = None
    ) -> dict[str, list[tuple]]:
        """Merge the requested predicates' facts from every shard but
        *exclude* — the cross-shard part of a union view."""
        if not predicates:
            return {}
        wanted = sorted(predicates)
        futures = [
            (shard, self._submit(shard, _cmd_dump_facts, wanted))
            for shard in range(self.checker.shards)
            if shard != exclude
        ]
        merged: dict[str, list[tuple]] = {}
        for shard, future in futures:
            dumped = self._result(shard, future, _cmd_dump_facts, (wanted,))
            for predicate, facts in dumped.items():
                merged.setdefault(predicate, []).extend(
                    tuple(fact) for fact in facts
                )
        return merged

    def contains(self, shard: int, predicate: str, values: tuple) -> bool:
        return self._call(shard, _cmd_contains, predicate, tuple(values))

    def apply_unchecked(self, shard: int, update: Update) -> None:
        self._call(shard, _cmd_apply_unchecked, update)

    def local_facts(self) -> Database:
        merged = Database()
        futures = [
            (shard, self._submit(shard, _cmd_dump_facts, None))
            for shard in range(self.checker.shards)
        ]
        for shard, future in futures:
            dumped = self._result(shard, future, _cmd_dump_facts, (None,))
            for predicate, facts in dumped.items():
                for fact in facts:
                    merged.insert(predicate, tuple(fact))
        return merged

    # -- the protocol ---------------------------------------------------------
    def _peer_needs(self, shard: int, predicate: str) -> set[str]:
        """The sibling-shard predicates a check of *predicate* on *shard*
        could read through the union view."""
        checker = self.checker
        needed: set[str] = set()
        for constraint in checker.constraints:
            if checker.compiler.compiled(constraint).subsumed:
                continue
            if predicate not in constraint.predicates():
                continue
            needed |= constraint.predicates() & checker.site_predicates
        return needed - (checker._owned[shard] | checker.key_aligned)

    def run_one(
        self, shard: int, update: Update,
        journal_pos: Optional[int] = None,
    ) -> list[CheckReport]:
        """One update through its shard's worker: peers pre-gathered for
        a fenced spanning read, the escalation bounced through the
        parent's link when the worker defers at the boundary.  With a
        journal attached, the update's *final* effect (post-bounce) is
        staged at ``journal_pos`` for the committer."""
        checker = self.checker
        seq = next(checker._arrival)
        self._last_seq[shard] = max(self._last_seq[shard], seq)
        peer_facts = self.gather_facts(
            self._peer_needs(shard, update.predicate), exclude=shard
        )
        out = self._call(shard, _cmd_run_one, seq, update, peer_facts)
        self._stats_cache[shard] = None
        reports, fetched, effect = self._escalate(shard, update, out)
        if fetched:
            checker.stats.remote_round_trips += 1
        self._stage_effect(journal_pos, effect)
        return reports

    def _escalate(
        self, shard: int, update: Update, out: dict
    ) -> tuple[list[CheckReport], bool, Optional[tuple]]:
        """Finish a ``_cmd_run_one`` result: bounce the deferred fetch
        through the parent's link when the worker hit the process
        boundary.  Returns the final reports, whether a remote fetch
        succeeded (the caller attributes the round trip — directly on
        the fenced path, folded at the segment barrier inside slices),
        and the update's final journal effect (``None`` off-journal).
        A settle or rerun replaces the deferred effect wholesale; a
        failed bounce patches the parent's copy in place."""
        effects = out.get("effects")
        effect = effects[0] if effects else None
        if out["needed"] is None:
            return out["reports"], False, effect
        try:
            remote_db = _fetch_remote(
                self.checker._drain_source, set(out["needed"])
            )
        except RemoteUnavailableError as exc:
            if out["queued"]:
                return (
                    self._call(shard, _cmd_patch_defer_detail, str(exc)),
                    False,
                    self._patch_effect(effect, str(exc)),
                )
            return (
                _patch_detail(out["reports"], str(exc)),
                False,
                self._patch_effect(effect, str(exc)),
            )
        facts = self._dump_db(remote_db)
        if out["queued"]:
            settled = self._call(shard, _cmd_settle_tail, facts)
            final = settled["effects"]
            return settled["reports"], True, (final[0] if final else effect)
        rerun = self._call(shard, _cmd_rerun_with_remote, update, facts)
        final = rerun["effects"]
        return rerun["reports"], True, (final[0] if final else effect)

    def run_slice(
        self,
        shard: int,
        items: Sequence[tuple[int, Update]],
        batch_size: Optional[int],
        journal_base: Optional[int] = None,
    ) -> tuple[list[tuple[int, list[CheckReport]]], int]:
        """One shard's slice of a parallel segment (driver-thread body;
        mirrors ``ShardedChecker._run_shard_slice``).

        Escalation-capable updates run as their own singleton command —
        the worker's stream must never defer mid-slice, or its later
        verdicts would read unsettled optimistic state the serial run
        settled in place.  The bounce happens here on the driver thread,
        so sibling shards keep streaming while this one waits on the
        link.  Returns ``(position, reports)`` pairs plus the number of
        successful bounce fetches (the segment barrier folds them into
        ``remote_round_trips`` in stream order, like thread mode).
        """
        checker = self.checker
        pairs: list[tuple[int, list[CheckReport]]] = []
        fetches = 0
        chunk: list[tuple[int, int, Update]] = []  # (pos, seq, update)

        def journal_pos(pos: int) -> Optional[int]:
            return None if journal_base is None else journal_base + pos + 1

        def flush_chunk() -> None:
            if not chunk:
                return
            stamped = [(seq, update) for _pos, seq, update in chunk]
            out = self._call(shard, _cmd_run_slice, stamped, batch_size)
            results = out["results"]
            effects = out["effects"] or [None] * len(results)
            for (pos, _seq, _update), reports, effect in zip(
                chunk, results, effects
            ):
                pairs.append((pos, reports))
                self._stage_effect(journal_pos(pos), effect)
            chunk.clear()

        for pos, update in items:
            seq = next(checker._arrival)
            self._last_seq[shard] = max(self._last_seq[shard], seq)
            if checker._escalation_capable(update.predicate):
                flush_chunk()
                # Fence-free by construction, so no peers to gather.
                out = self._call(shard, _cmd_run_one, seq, update, {})
                reports, fetched, effect = self._escalate(shard, update, out)
                if fetched:
                    fetches += 1
                pairs.append((pos, reports))
                self._stage_effect(journal_pos(pos), effect)
                continue
            chunk.append((pos, seq, update))
        flush_chunk()
        self._stats_cache[shard] = None
        return pairs, fetches

    @staticmethod
    def _dump_db(db: Database) -> dict[str, list[tuple]]:
        return {
            predicate: list(db.facts(predicate))
            for predicate in db.predicates()
        }

    # -- drain ----------------------------------------------------------------
    def _drain_blocked(self, desc: dict, dark: set, blocked: set) -> bool:
        """The partial-recovery skip guard, evaluated on the parent's
        compiler from a worker's entry descriptor (mirrors
        ``CheckSession._drain_blocked``)."""
        checker = self.checker
        if dark and set(desc["sites"]) & dark:
            return True
        if blocked:
            predicate = desc["predicate"]
            for constraint in checker.constraints:
                if not checker.compiler.mentions(constraint, predicate):
                    continue
                others = blocked - {predicate}
                if any(
                    checker.compiler.mentions(constraint, other)
                    for other in others
                ):
                    return True
            if predicate in blocked and not checker.compiler.single_binding(
                predicate
            ):
                return True
        return False

    def resolve_pending(self) -> list[tuple[Update, list[CheckReport]]]:
        """The global drain across the worker processes (mirrors
        ``ShardedChecker.resolve_pending``; same soundness argument —
        quarantine everywhere first, settle globally oldest-first,
        dark/blocked partial recovery, redo on the way out)."""
        checker = self.checker
        shards = range(checker.shards)
        queues: dict[int, list[dict]] = {}
        self._in_drain = True
        begin = [(shard, self._submit(shard, _cmd_drain_begin)) for shard in shards]
        for shard, future in begin:
            queues[shard] = self._result(shard, future, _cmd_drain_begin)
        settled: list[tuple[Update, list[CheckReport]]] = []
        try:
            checker._chaos_hit("mid-drain")
            dark: set[str] = set()
            blocked: set[str] = set()
            skipped: set[int] = set()
            while True:
                head = None
                for shard, entries in queues.items():
                    for desc in entries:
                        if desc["seq"] in skipped:
                            continue
                        if head is None or desc["seq"] < head[1]["seq"]:
                            head = (shard, desc)
                if head is None:
                    break
                shard, desc = head
                if self._drain_blocked(desc, dark, blocked):
                    skipped.add(desc["seq"])
                    blocked.add(desc["predicate"])
                    continue
                try:
                    remote_db = _fetch_remote(
                        checker._drain_source, set(desc["needed"])
                    )
                except RemoteUnavailableError as exc:
                    failed = set(exc.sites) or set(desc["sites"])
                    if not failed:
                        break
                    dark |= failed
                    skipped.add(desc["seq"])
                    blocked.add(desc["predicate"])
                    continue
                peer_facts = self.gather_facts(
                    self._peer_needs(shard, desc["predicate"]), exclude=shard
                )
                update, reports = self._call(
                    shard,
                    _cmd_drain_settle,
                    desc["seq"],
                    self._dump_db(remote_db),
                    peer_facts,
                )
                checker.stats.remote_round_trips += 1
                queues[shard].remove(desc)
                settled.append((update, reports))
        finally:
            ends = [(shard, self._submit(shard, _cmd_drain_end)) for shard in shards]
            for shard, future in ends:
                self._stats_cache[shard] = self._result(
                    shard, future, _cmd_drain_end
                )
            self._in_drain = False
        return settled

    # -- stats / lifecycle ----------------------------------------------------
    def _payloads(self) -> list[dict]:
        missing = [
            (shard, self._submit(shard, _cmd_stats))
            for shard, cached in enumerate(self._stats_cache)
            if cached is None
        ]
        for shard, future in missing:
            self._stats_cache[shard] = self._result(
                shard, future, _cmd_stats
            )
        return list(self._stats_cache)

    def stats_view(self) -> tuple[list, object]:
        """Fresh worker snapshots shaped for ``sync_session_gauges``:
        stats-bearing session stand-ins plus a compiler stand-in whose
        level-1 cache info is the sum over the workers'."""
        payloads = self._payloads()
        sessions = [
            SimpleNamespace(stats=payload["stats"]) for payload in payloads
        ]
        info = {
            "hits": sum(p["level1"]["hits"] for p in payloads),
            "misses": sum(p["level1"]["misses"] for p in payloads),
        }
        compiler = SimpleNamespace(level1_cache_info=lambda: info)
        return sessions, compiler

    def pending_count(self) -> int:
        return sum(payload["pending"] for payload in self._payloads())

    def migrate_range(
        self, predicate: str, lo, hi, source: int, target: int
    ) -> int:
        """Move the key range ``[lo, hi)`` of *predicate* from *source*
        to *target*: verified facts plus reversed pending entries out,
        replayed in sequence order on the other side."""
        out = self._call(source, _cmd_extract_range, predicate, lo, hi)
        self._call(
            target, _cmd_inject_range, predicate, out["facts"], out["entries"]
        )
        self._stats_cache[source] = None
        self._stats_cache[target] = None
        return len(out["facts"])

    def checkpoint_state(self) -> list[dict]:
        """Per-shard manifest payloads (pending queue, stats, last seq)
        for checkpoint manifests — one round trip per shard."""
        futures = [
            (shard, self._submit(shard, _cmd_checkpoint_state))
            for shard in range(self.checker.shards)
        ]
        return [
            self._result(shard, future, _cmd_checkpoint_state)
            for shard, future in futures
        ]

    def restart_counts(self) -> list[int]:
        return list(self._restarts)

    def restore_checkpoint(
        self,
        pending_per_shard: Sequence[Sequence],
        stats_per_shard: Sequence,
        restarts: Optional[Sequence[int]] = None,
    ) -> None:
        """Install recovered per-shard state into the fresh workers (the
        facts already arrived through ``ShardConfig``).  The restored
        queues/stats become each shard's supervision *baseline*, so a
        later revive rehydrates the recovered state, not the empty
        boot state; restart counters carry the crashed run's budget
        spend forward."""
        for shard in range(self.checker.shards):
            pending = list(pending_per_shard[shard])
            stats = stats_per_shard[shard]
            self._call(shard, _cmd_restore_state, pending, stats)
            self._baselines[shard] = {"pending": pending, "stats": stats}
            self._stats_cache[shard] = None
        if restarts:
            self._restarts = [int(count) for count in restarts]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []
