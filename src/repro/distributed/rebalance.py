"""Live shard rebalancing: move key-range cut points at a fence.

A :class:`~repro.distributed.sharded.KeyRangePartitioner` splits
selected predicates across shards by their first column.  A static cut
vector chosen up front goes stale the moment the workload skews: one
shard soaks up the hot key range while its siblings idle, and the
parallel stream degenerates to the hot shard's serial throughput.  This
module supplies the pieces :class:`~repro.distributed.sharded.ShardedChecker`
composes into *live* rebalancing (DESIGN.md §11):

* :class:`ShardLoadTracker` — a sliding window of per-shard routed
  update counts plus sampled routing keys (the load gauges);
* :func:`propose_split` — when one shard runs hot, split its range at
  the median of its sampled keys and merge the coldest adjacent pair of
  ranges elsewhere, keeping the shard count fixed;
* :func:`migration_moves` — the exact half-open key intervals whose
  owner changes between two cut vectors (the union of both vectors cuts
  the key space into intervals inside which ownership is constant, so
  the diff is a short list of ``(lo, hi, source, target)`` moves);
* :func:`extract_range` / :func:`inject_range` — the two halves of the
  fence-protected handoff, operating on a
  :class:`~repro.core.session.CheckSession`: the source shard reverses
  in-range pending entries (quarantine), deletes in-range facts through
  the maintained-materialization delta path, and emits verified facts
  plus replayable entry descriptions; the target re-inserts the facts
  and replays the entries in global sequence order, re-applying each
  optimistic delta for a fresh, locally valid undo token.  Pending
  entries keep their global sequence numbers, so the drain's
  oldest-first FIFO and the quarantine discipline survive the move.

The checker only ever applies a plan **at a fence** — the parallel
scheduler's segment barrier or the serial stream's flush boundary —
when no worker holds a slice, so routing and data move atomically with
respect to verdicts (the two-phase fence protocol in DESIGN.md §11).
The same primitives drive both executors: the thread checker calls
:func:`extract_range` / :func:`inject_range` on its own sessions, the
process runner ships them to the shard workers
(:meth:`~repro.distributed.procpool.ProcessShardRunner.migrate_range`).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.session import CheckSession, PendingVerdict
from repro.updates.update import Deletion, Insertion, Update

__all__ = [
    "RebalancePolicy",
    "RebalancePlan",
    "ShardLoadTracker",
    "migration_moves",
    "propose_split",
    "extract_range",
    "inject_range",
    "replay_entries",
    "routing_values",
]


def routing_values(update: Update) -> tuple:
    """The value tuple a partitioner routes *update* by (a
    modification routes by its new fact; see ``shard_of``)."""
    values = getattr(update, "values", None)
    if values is None:
        values = update.new_values
    return values


@dataclass(frozen=True)
class RebalancePolicy:
    """Knobs for the checker's automatic rebalancing loop.

    ``interval``
        Routed updates between hot-shard inspections (each inspection
        costs a barrier on the parallel path).
    ``window``
        Sliding-window size of the load gauges — how much history a
        hotness verdict looks at.
    ``hot_factor``
        A shard is *hot* when its windowed load exceeds
        ``hot_factor * total / shards`` (1.0 = perfectly even).
    ``min_observations``
        No verdict before the window holds at least this many routed
        updates — a cold start must not trigger a migration.
    """

    interval: int = 256
    window: int = 512
    hot_factor: float = 1.5
    min_observations: int = 64

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("rebalance interval must be >= 1")
        if self.window < 1:
            raise ValueError("rebalance window must be >= 1")
        if self.hot_factor <= 1.0:
            raise ValueError(
                "hot_factor must exceed 1.0 (1.0 is a perfectly even load)"
            )
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")


@dataclass(frozen=True)
class RebalancePlan:
    """One cut-vector change plus the exact data moves it entails."""

    predicate: str
    hot_shard: int
    old_cuts: tuple
    new_cuts: tuple
    #: ``(lo, hi, source, target)`` half-open key ranges to migrate
    moves: tuple


class ShardLoadTracker:
    """Sliding-window per-shard load gauges with routing-key samples.

    ``observe`` is called once per routed update (by the checker, on the
    main thread — never from workers), so the window is an exact recent
    history, not a sample of one."""

    def __init__(
        self, shards: int, policy: Optional[RebalancePolicy] = None
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.policy = policy or RebalancePolicy()
        #: (shard, predicate, routing key | None), newest last
        self._window: deque = deque(maxlen=self.policy.window)

    def observe(
        self, shard: int, predicate: str, key: object = None
    ) -> None:
        self._window.append((shard, predicate, key))

    @property
    def observations(self) -> int:
        return len(self._window)

    def loads(self) -> list[int]:
        """Windowed routed-update count per shard (the queue-depth
        proxy the hotness verdict reads)."""
        counts = [0] * self.shards
        for shard, _predicate, _key in self._window:
            counts[shard] += 1
        return counts

    def hot_shard(self) -> Optional[int]:
        """The hottest shard, when it is hot enough to act on."""
        if self.observations < self.policy.min_observations:
            return None
        loads = self.loads()
        total = sum(loads)
        if total == 0:
            return None
        hottest = max(range(self.shards), key=lambda s: loads[s])
        threshold = self.policy.hot_factor * total / self.shards
        if loads[hottest] <= threshold:
            return None
        return hottest

    def keys(self, predicate: str, shard: int) -> list:
        """The routing keys sampled for *predicate* on *shard*, in
        observation order."""
        return [
            key
            for obs_shard, obs_predicate, key in self._window
            if obs_shard == shard and obs_predicate == predicate
            and key is not None
        ]

    def reset(self) -> None:
        """Drop the window — after a migration the history describes a
        topology that no longer exists."""
        self._window.clear()


def migration_moves(old_cuts: tuple, new_cuts: tuple) -> list[tuple]:
    """The half-open key intervals whose owning shard changes between
    two cut vectors, as ``(lo, hi, source, target)`` with ``None`` for
    an unbounded end.

    The union of both vectors partitions the key space into intervals
    containing no cut of either, so within each interval both
    ``bisect_right`` owners are constant; the diff is exact, not
    sampled.
    """
    combined = sorted(set(old_cuts) | set(new_cuts))
    moves: list[tuple] = []
    for index in range(len(combined) + 1):
        lo = combined[index - 1] if index > 0 else None
        hi = combined[index] if index < len(combined) else None
        # For any key k in [lo, hi): the cuts <= k are exactly the cuts
        # <= lo (the next cut either way is hi), so lo stands in for
        # the whole interval; the leftmost interval precedes every cut
        # of both vectors, hence owner 0 on both sides.
        source = bisect_right(old_cuts, lo) if lo is not None else 0
        target = bisect_right(new_cuts, lo) if lo is not None else 0
        if source != target:
            moves.append((lo, hi, source, target))
    return moves


def propose_split(
    predicate: str,
    cuts: Sequence,
    hot: int,
    hot_keys: Sequence,
    loads: Sequence[int],
) -> Optional[RebalancePlan]:
    """Split the hot shard's range at the median of its sampled keys,
    merging the coldest adjacent range pair to keep the shard count.

    Returns None when no productive cut exists: no key samples, a
    median that falls on the range boundary (all load on one key — a
    split would just relocate the hotspot), or a no-op vector.
    """
    cuts = tuple(cuts)
    if not hot_keys:
        return None
    ordered = sorted(hot_keys)
    median = ordered[len(ordered) // 2]
    if median == ordered[0]:
        # Everything at or below the median is one key; cut just above
        # it instead so the split actually parts the load in two.
        higher = [key for key in ordered if key > median]
        if not higher:
            return None
        median = higher[0]
    lo = cuts[hot - 1] if hot > 0 else None
    hi = cuts[hot] if hot < len(cuts) else None
    if lo is not None and median <= lo:
        return None
    if hi is not None and median >= hi:
        return None
    if not cuts:
        return None
    # Dropping cuts[j] merges ranges j and j+1.  Prefer a pair that
    # does not touch the hot range (merging the range we are trying to
    # relieve would undo the split); with two shards there is no such
    # pair and dropping the only cut *is* the median split.
    candidates = []
    for j in range(len(cuts)):
        touches_hot = 1 if hot in (j, j + 1) else 0
        candidates.append((touches_hot, loads[j] + loads[j + 1], j))
    _touches, _load, drop = min(candidates)
    new_cuts = tuple(
        sorted([c for k, c in enumerate(cuts) if k != drop] + [median])
    )
    if new_cuts == cuts:
        return None
    moves = tuple(migration_moves(cuts, new_cuts))
    if not moves:
        return None
    return RebalancePlan(
        predicate=predicate,
        hot_shard=hot,
        old_cuts=cuts,
        new_cuts=new_cuts,
        moves=moves,
    )


# ---------------------------------------------------------------------------
# The fence-protected handoff, on a live session.  Shared verbatim by
# both executors: the thread checker calls these on its own sessions,
# the process workers run them via ``_cmd_extract_range`` /
# ``_cmd_inject_range`` (the descriptions are pure data, so they cross
# the process boundary unchanged).
# ---------------------------------------------------------------------------


def extract_range(
    session: CheckSession, predicate: str, lo, hi
) -> dict:
    """Carve the half-open key range ``[lo, hi)`` (None = unbounded)
    out of *session*'s shard: its facts leave the database
    (materializations stay maintained through the per-fact deltas) and
    its pending entries leave the queue, each reversed first so the
    migrated state carries verified facts plus a replayable entry
    description."""

    def in_range(values: tuple) -> bool:
        if not values:
            return False
        key = values[0]
        if lo is not None and key < lo:
            return False
        if hi is not None and key >= hi:
            return False
        return True

    entries = []
    keep = []
    # Newest-first reversal: the same discipline the drain's quarantine
    # uses, so stacked optimistic deltas unwind in the valid order.
    for entry in reversed(session._pending):
        if entry.update.predicate == predicate and in_range(
            routing_values(entry.update)
        ):
            session._quarantine_entry(entry)
            entries.append(
                {
                    "seq": entry.seq,
                    "update": entry.update,
                    "unresolved": entry.unresolved,
                    "reports": entry.reports,
                    "applied": entry.applied,
                    "future": entry.future,
                    "future_predicates": entry.future_predicates,
                }
            )
        else:
            keep.append(entry)
    session._pending[:] = list(reversed(keep))
    entries.reverse()

    moved = [
        fact for fact in session.local_db.facts(predicate) if in_range(fact)
    ]
    for fact in moved:
        session.apply_unchecked(Deletion(predicate, fact))
    return {"facts": moved, "entries": entries}


def replay_entries(session: CheckSession, entries: Sequence[dict]) -> None:
    """Replay pending-entry descriptions into *session*'s queue in
    global sequence order: each applied entry's optimistic delta is
    re-applied against this database (maintained materializations
    included) for a fresh, locally valid undo token, and the rebuilt
    entries merge into the existing queue by sequence number.  Shared by
    the rebalance handoff (:func:`inject_range`) and worker-crash
    rehydration (:mod:`repro.distributed.procpool`)."""
    rebuilt = []
    for desc in sorted(entries, key=lambda d: d["seq"]):
        token = None
        if desc["applied"]:
            token = session.local_db.apply(desc["update"].as_delta())
            effective = token.as_delta()
            if not effective.is_empty():
                for mat in session._materializations.values():
                    mat.apply_delta(effective)
                    session.stats.incremental_deltas += 1
        rebuilt.append(
            PendingVerdict(
                seq=desc["seq"],
                update=desc["update"],
                unresolved=tuple(desc["unresolved"]),
                reports=dict(desc["reports"]),
                applied=desc["applied"],
                token=token,
                future=desc.get("future"),
                future_predicates=desc.get("future_predicates"),
            )
        )
    merged = sorted(
        list(session._pending) + rebuilt, key=lambda entry: entry.seq
    )
    session._pending[:] = merged


def inject_range(
    session: CheckSession,
    predicate: str,
    facts: Sequence[tuple],
    entries: Sequence[dict],
) -> None:
    """Install a migrated key range: base facts first, then each pending
    entry replayed in sequence order (:func:`replay_entries`)."""
    for fact in facts:
        session.apply_unchecked(Insertion(predicate, tuple(fact)))
    replay_entries(session, entries)
