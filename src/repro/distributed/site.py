"""Sites with access accounting — the simulated distributed database.

The paper's motivation (Section 1): "the database may be divided into
'local' and 'remote' data with respect to the site of the update.
Accessing remote data may be expensive or impossible."  The paper has no
testbed, so the reproduction substitutes a two-site simulation whose
remote site *counts accesses* and charges a configurable latency; the M1
benchmark reports remote accesses avoided by the local tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.datalog.database import Database

__all__ = ["AccessStats", "Site", "TwoSiteDatabase"]


@dataclass
class AccessStats:
    """Counters for one site."""

    reads: int = 0
    tuples_read: int = 0
    writes: int = 0
    simulated_cost: float = 0.0
    #: snapshot calls, and the facts they actually shipped — with
    #: predicate-restricted snapshots this is the measure of how much
    #: narrower an escalation fetch is than a whole-database copy
    snapshots: int = 0
    snapshot_facts: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.tuples_read = 0
        self.writes = 0
        self.simulated_cost = 0.0
        self.snapshots = 0
        self.snapshot_facts = 0


class Site:
    """A named database site that meters every read and write.

    ``cost_per_read`` models the latency of touching the site; the bench
    harness sums ``simulated_cost`` rather than sleeping.

    Access is thread-safe: each metered method runs under one internal
    lock, so a snapshot taken by an async escalation worker observes a
    consistent database and consistent counters even while another
    thread writes.  (Overlapped fetches and parallel shard execution
    both snapshot sites from pool threads.)
    """

    def __init__(
        self,
        name: str,
        contents: Mapping[str, Iterable[tuple]] | Database | None = None,
        cost_per_read: float = 0.0,
    ) -> None:
        self.name = name
        if isinstance(contents, Database):
            self._db = contents.copy()
        else:
            self._db = Database(contents)
        self.cost_per_read = cost_per_read
        self.stats = AccessStats()
        self._lock = threading.Lock()

    # -- metered access -----------------------------------------------------------
    def facts(self, predicate: str) -> frozenset[tuple]:
        with self._lock:
            result = self._db.facts(predicate)
            self.stats.reads += 1
            self.stats.tuples_read += len(result)
            self.stats.simulated_cost += self.cost_per_read
            return result

    def insert(self, predicate: str, fact: tuple) -> bool:
        with self._lock:
            changed = self._db.insert(predicate, fact)
            if changed:
                self.stats.writes += 1
            return changed

    def delete(self, predicate: str, fact: tuple) -> bool:
        with self._lock:
            changed = self._db.delete(predicate, fact)
            if changed:
                self.stats.writes += 1
            return changed

    def predicates(self) -> set[str]:
        with self._lock:
            return self._db.predicates()

    def snapshot(self, predicates: Iterable[str] | None = None) -> Database:
        """A copy of the site — one read per shipped relation.

        With *predicates*, only the named relations are copied and
        metered: an escalation that needs two remote tables no longer
        pays for (or waits on) the whole remote database.
        """
        with self._lock:
            if predicates is None:
                wanted = self._db.predicates()
                copied = self._db.copy()
            else:
                wanted = set(predicates) & self._db.predicates()
                copied = self._db.restricted_to(wanted)
            shipped = copied.size()
            self.stats.reads += len(wanted)
            self.stats.tuples_read += shipped
            self.stats.snapshots += 1
            self.stats.snapshot_facts += shipped
            self.stats.simulated_cost += self.cost_per_read * max(1, len(wanted))
            return copied

    def unmetered(self) -> Database:
        """Direct access for test fixtures and ground-truth checks."""
        return self._db

    def partition(
        self, owner: "Callable[[str, tuple], int]", shards: int
    ) -> list[Database]:
        """Split this site's contents into *shards* disjoint databases.

        Each fact ``(predicate, values)`` lands in slice
        ``owner(predicate, values)``.  The slices are fresh copies; a
        sharded checker that adopts them becomes the authority over the
        site's data and this site object is thereafter only the source
        of the initial contents."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        with self._lock:
            slices = [Database() for _ in range(shards)]
            for predicate in self._db.predicates():
                for fact in self._db.facts(predicate):
                    index = owner(predicate, fact)
                    if not 0 <= index < shards:
                        raise ValueError(
                            f"owner({predicate!r}, {fact!r}) -> {index} is not a "
                            f"shard index in [0, {shards})"
                        )
                    slices[index].insert(predicate, fact)
            return slices

    def __repr__(self) -> str:
        return f"Site({self.name!r}, {self._db!r})"


class TwoSiteDatabase:
    """A local site plus a remote site, with convenience plumbing.

    *local_predicates* declares which predicates live locally; when
    omitted it is derived from the local site's contents.  Passing it
    explicitly matters for predicates that start out empty — they are
    still local, even though no fact records that yet.
    """

    def __init__(
        self,
        local: Site,
        remote: Site,
        local_predicates: Iterable[str] | None = None,
    ) -> None:
        self.local = local
        self.remote = remote
        self._local_predicates = (
            set(local_predicates) if local_predicates is not None else None
        )

    @property
    def local_predicates(self) -> set[str]:
        if self._local_predicates is not None:
            return self._local_predicates | self.local.predicates()
        return self.local.predicates()

    def full_database(self) -> Database:
        """Merge both sites (meters a full remote snapshot)."""
        merged = self.local.unmetered().copy()
        remote = self.remote.snapshot()
        for predicate in remote.predicates():
            for fact in remote.facts(predicate):
                merged.insert(predicate, fact)
        return merged

    def ground_truth_database(self) -> Database:
        """Merge both sites without metering (for verification only)."""
        merged = self.local.unmetered().copy()
        remote = self.remote.unmetered()
        for predicate in remote.predicates():
            for fact in remote.facts(predicate):
                merged.insert(predicate, fact)
        return merged
