"""Sites with access accounting — the simulated distributed database.

The paper's motivation (Section 1): "the database may be divided into
'local' and 'remote' data with respect to the site of the update.
Accessing remote data may be expensive or impossible."  The paper has no
testbed, so the reproduction substitutes a two-site simulation whose
remote site *counts accesses* and charges a configurable latency; the M1
benchmark reports remote accesses avoided by the local tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.datalog.database import Database

__all__ = ["AccessStats", "Site", "FederatedDatabase", "TwoSiteDatabase"]


@dataclass
class AccessStats:
    """Counters for one site."""

    reads: int = 0
    tuples_read: int = 0
    writes: int = 0
    simulated_cost: float = 0.0
    #: snapshot calls, and the facts they actually shipped — with
    #: predicate-restricted snapshots this is the measure of how much
    #: narrower an escalation fetch is than a whole-database copy
    snapshots: int = 0
    snapshot_facts: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.tuples_read = 0
        self.writes = 0
        self.simulated_cost = 0.0
        self.snapshots = 0
        self.snapshot_facts = 0


class Site:
    """A named database site that meters every read and write.

    ``cost_per_read`` models the latency of touching the site; the bench
    harness sums ``simulated_cost`` rather than sleeping.

    Access is thread-safe: each metered method runs under one internal
    lock, so a snapshot taken by an async escalation worker observes a
    consistent database and consistent counters even while another
    thread writes.  (Overlapped fetches and parallel shard execution
    both snapshot sites from pool threads.)
    """

    def __init__(
        self,
        name: str,
        contents: Mapping[str, Iterable[tuple]] | Database | None = None,
        cost_per_read: float = 0.0,
        backend=None,
    ) -> None:
        self.name = name
        if backend is not None:
            # A pluggable storage backend (repro.storage) owns the site's
            # database; the duck surface matches Database.
            self._db = backend.create_database(contents)
        elif isinstance(contents, Database):
            self._db = contents.copy()
        else:
            self._db = Database(contents)
        self.cost_per_read = cost_per_read
        self.stats = AccessStats()
        self._lock = threading.Lock()

    # -- metered access -----------------------------------------------------------
    def facts(self, predicate: str) -> frozenset[tuple]:
        with self._lock:
            result = self._db.facts(predicate)
            self.stats.reads += 1
            self.stats.tuples_read += len(result)
            self.stats.simulated_cost += self.cost_per_read
            return result

    def insert(self, predicate: str, fact: tuple) -> bool:
        with self._lock:
            changed = self._db.insert(predicate, fact)
            if changed:
                self.stats.writes += 1
            return changed

    def delete(self, predicate: str, fact: tuple) -> bool:
        with self._lock:
            changed = self._db.delete(predicate, fact)
            if changed:
                self.stats.writes += 1
            return changed

    def predicates(self) -> set[str]:
        with self._lock:
            return self._db.predicates()

    def snapshot(self, predicates: Iterable[str] | None = None) -> Database:
        """A copy of the site — one read per shipped relation.

        With *predicates*, only the named relations are copied and
        metered: an escalation that needs two remote tables no longer
        pays for (or waits on) the whole remote database.
        """
        with self._lock:
            if predicates is None:
                wanted = self._db.predicates()
                copied = self._db.copy()
            else:
                wanted = set(predicates) & self._db.predicates()
                copied = self._db.restricted_to(wanted)
            shipped = copied.size()
            self.stats.reads += len(wanted)
            self.stats.tuples_read += shipped
            self.stats.snapshots += 1
            self.stats.snapshot_facts += shipped
            self.stats.simulated_cost += self.cost_per_read * max(1, len(wanted))
            return copied

    def unmetered(self) -> Database:
        """Direct access for test fixtures and ground-truth checks."""
        return self._db

    def partition(
        self, owner: "Callable[[str, tuple], int]", shards: int
    ) -> list[Database]:
        """Split this site's contents into *shards* disjoint databases.

        Each fact ``(predicate, values)`` lands in slice
        ``owner(predicate, values)``.  The slices are fresh copies; a
        sharded checker that adopts them becomes the authority over the
        site's data and this site object is thereafter only the source
        of the initial contents."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        with self._lock:
            slices = [Database() for _ in range(shards)]
            for predicate in self._db.predicates():
                for fact in self._db.facts(predicate):
                    index = owner(predicate, fact)
                    if not 0 <= index < shards:
                        raise ValueError(
                            f"owner({predicate!r}, {fact!r}) -> {index} is not a "
                            f"shard index in [0, {shards})"
                        )
                    slices[index].insert(predicate, fact)
            return slices

    def __repr__(self) -> str:
        return f"Site({self.name!r}, {self._db!r})"


class FederatedDatabase:
    """One local site plus N named remote partitions.

    Every non-local predicate is stored at exactly one remote site
    (partitioned, not replicated): :meth:`site_of` maps a predicate to
    its owning site's name, derived from each remote's contents plus the
    optional *site_predicates* declarations (which matter for relations
    that start out empty).  A non-local predicate no site declares or
    stores is charged to the first remote — with one remote that is the
    classic two-site reading, with several it is a deterministic default.

    *remotes* is a sequence of :class:`Site`\\ s (keyed by their names)
    or an explicit name-to-site mapping; names must be unique.

    *local_predicates* declares which predicates live locally; when
    omitted it is derived from the local site's contents.
    """

    def __init__(
        self,
        local: Site,
        remotes: Iterable[Site] | Mapping[str, Site],
        local_predicates: Iterable[str] | None = None,
        site_predicates: Mapping[str, Iterable[str]] | None = None,
    ) -> None:
        self.local = local
        if isinstance(remotes, Mapping):
            named = dict(remotes)
        else:
            named = {}
            for site in remotes:
                if site.name in named:
                    raise ValueError(
                        f"duplicate remote site name {site.name!r}"
                    )
                named[site.name] = site
        if not named:
            raise ValueError("a federation needs at least one remote site")
        self.remotes: dict[str, Site] = named
        self._local_predicates = (
            set(local_predicates) if local_predicates is not None else None
        )
        self._declared: dict[str, str] = {}
        for name, predicates in (site_predicates or {}).items():
            if name not in named:
                raise ValueError(f"site_predicates names unknown site {name!r}")
            for predicate in predicates:
                self._declared[predicate] = name

    @property
    def site_names(self) -> tuple[str, ...]:
        return tuple(self.remotes)

    @property
    def local_predicates(self) -> set[str]:
        if self._local_predicates is not None:
            return self._local_predicates | self.local.predicates()
        return self.local.predicates()

    def site_of(self, predicate: str) -> str | None:
        """The remote site owning *predicate*, or ``None`` when local."""
        if predicate in self.local_predicates:
            return None
        owner = self._declared.get(predicate)
        if owner is not None:
            return owner
        for name, site in self.remotes.items():
            if predicate in site.predicates():
                return name
        return next(iter(self.remotes))

    def remote_predicates(self, name: str) -> set[str]:
        """The predicates stored (or declared) at remote site *name*."""
        declared = {p for p, owner in self._declared.items() if owner == name}
        return self.remotes[name].predicates() | declared

    def full_database(self) -> Database:
        """Merge every site (meters a full snapshot of each remote)."""
        merged = self.local.unmetered().copy()
        for site in self.remotes.values():
            snapshot = site.snapshot()
            for predicate in snapshot.predicates():
                for fact in snapshot.facts(predicate):
                    merged.insert(predicate, fact)
        return merged

    def ground_truth_database(self) -> Database:
        """Merge every site without metering (for verification only)."""
        merged = self.local.unmetered().copy()
        for site in self.remotes.values():
            contents = site.unmetered()
            for predicate in contents.predicates():
                for fact in contents.facts(predicate):
                    merged.insert(predicate, fact)
        return merged

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.local!r}, "
            f"remotes={list(self.remotes)!r})"
        )


class TwoSiteDatabase(FederatedDatabase):
    """The N=2 special case: one local site, one remote site.

    A thin shim over :class:`FederatedDatabase` preserving the original
    two-site surface (``.remote``); everything downstream that only ever
    talks to "the" remote keeps working unchanged.
    """

    def __init__(
        self,
        local: Site,
        remote: Site,
        local_predicates: Iterable[str] | None = None,
    ) -> None:
        super().__init__(local, [remote], local_predicates=local_predicates)
        self.remote = remote
