"""Atoms and body literals: ordinary subgoals, negation, and comparisons.

A rule body is a conjunction of three kinds of literal:

* :class:`Atom` — an ordinary (positive) subgoal such as ``emp(E, D, S)``;
* :class:`Negation` — a negated subgoal such as ``not dept(D)``;
* :class:`Comparison` — an arithmetic comparison such as ``S < 100``.

Following the paper, a *constraint* is a query whose head is the 0-ary
atom ``panic``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.ops import ComparisonOp
from repro.datalog.terms import Constant, Term, Variable

__all__ = [
    "ComparisonOp",
    "Atom",
    "Negation",
    "Comparison",
    "BodyLiteral",
    "PANIC",
]


@dataclass(frozen=True, slots=True)
class Atom:
    """An ordinary subgoal ``predicate(arg1, ..., argk)`` (k may be 0)."""

    predicate: str
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom in order (with duplicates)."""
        for term in self.args:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        """Yield the constants of the atom in order (with duplicates)."""
        for term in self.args:
            if isinstance(term, Constant):
                yield term

    def has_repeated_variables(self) -> bool:
        """True when some variable occurs in two argument positions."""
        seen: set[Variable] = set()
        for var in self.variables():
            if var in seen:
                return True
            seen.add(var)
        return False

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class Negation:
    """A negated subgoal ``not atom``."""

    atom: Atom

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        return self.atom.args

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def __str__(self) -> str:
        return f"not {self.atom}"


@dataclass(frozen=True, slots=True)
class Comparison:
    """An arithmetic comparison subgoal ``left op right``.

    Either side may be a variable or a constant; the semantics is the
    dense total order of :mod:`repro.arith.order`.
    """

    left: Term
    op: ComparisonOp
    right: Term

    def variables(self) -> Iterator[Variable]:
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    @property
    def negated(self) -> "Comparison":
        """The comparison asserting the complement of this one."""
        return Comparison(self.left, self.op.negated, self.right)

    @property
    def flipped(self) -> "Comparison":
        """The same constraint written with its sides swapped."""
        return Comparison(self.right, self.op.flipped, self.left)

    def is_ground(self) -> bool:
        """True when both sides are constants."""
        return isinstance(self.left, Constant) and isinstance(self.right, Constant)

    def is_trivial_true(self) -> bool:
        """True for syntactic tautologies like ``X = X`` or ``X <= X``."""
        if self.left == self.right:
            return self.op in (ComparisonOp.EQ, ComparisonOp.LE, ComparisonOp.GE)
        return False

    def is_trivial_false(self) -> bool:
        """True for syntactic contradictions like ``X < X`` or ``X <> X``."""
        if self.left == self.right:
            return self.op in (ComparisonOp.LT, ComparisonOp.GT, ComparisonOp.NE)
        return False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


#: Union type of everything permitted in a rule body.
BodyLiteral = Union[Atom, Negation, Comparison]

#: The 0-ary goal of every constraint query.
PANIC = Atom("panic")
