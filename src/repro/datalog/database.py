"""The extensional database: named relations holding tuples of values.

Tuples contain raw Python values (``int``/``float``/``Fraction``/``str``),
not AST :class:`~repro.datalog.terms.Constant` wrappers — the engine wraps
and unwraps at the boundary.  Relations are sets, matching the paper's
set semantics.

Two mechanisms support the incremental check sessions:

* **Copy-on-write snapshots.** :meth:`Relation.copy` (and therefore
  :meth:`Database.copy` / :meth:`Database.restricted_to` /
  :meth:`Database.snapshot`) shares tuples *and* lazily built column
  indexes with the original until either side mutates, so taking a
  snapshot per checked update is O(#relations), not O(#tuples), and a
  copy never pays re-indexing for indexes the original already built.
* **Deltas.** A :class:`Delta` names the tuples inserted into and
  deleted from each predicate.  :meth:`Database.apply` applies one and
  returns an :class:`UndoToken` recording the *effective* changes (facts
  genuinely added/removed), which both :meth:`Database.undo` and the
  incremental view maintenance in :mod:`repro.datalog.evaluation` key
  off.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Iterable, Iterator, Mapping

from repro.errors import EvaluationError

__all__ = ["Relation", "Database", "Delta", "UndoToken", "intern_fact"]

Fact = tuple


def intern_fact(fact: Iterable) -> Fact:
    """Canonicalize a fact tuple for storage.

    String components are interned so the equality probes the join inner
    loop performs per candidate short-circuit on object identity, and so
    long update streams repeating the same keys share one copy of each
    string.  Non-string values (and str subclasses, which ``sys.intern``
    rejects) pass through untouched.
    """
    return tuple(_intern(v) if type(v) is str else v for v in fact)


class Relation:
    """A named, fixed-arity set of tuples with optional hash indexes.

    Indexes are built lazily per column and invalidated on mutation; they
    are what makes the local tests "use the structure of the database"
    (Section 1's point about expressibility in the query language).

    Copies share tuples and indexes copy-on-write: the first mutation on
    either side makes that side's structures private.  :meth:`lookup`
    results are memoized as frozensets per ``(column, value)`` and the
    affected entries are dropped on mutation, so repeated probes during a
    join do not re-allocate.
    """

    __slots__ = (
        "name",
        "arity",
        "_tuples",
        "_indexes",
        "_lookup_cache",
        "_facts_cache",
        "_shared",
    )

    def __init__(self, name: str, arity: int, tuples: Iterable[Fact] = ()) -> None:
        self.name = name
        self.arity = arity
        self._tuples: set[Fact] = set()
        self._indexes: dict[int, dict[object, set[Fact]]] = {}
        self._lookup_cache: dict[tuple[int, object], frozenset] = {}
        self._facts_cache: frozenset | None = None
        self._shared = False
        for fact in tuples:
            self.insert(fact)

    # -- copy-on-write -------------------------------------------------------
    def _unshare(self) -> None:
        """Make this side's structures private before the first mutation."""
        self._tuples = set(self._tuples)
        self._indexes = {
            column: {value: set(bucket) for value, bucket in index.items()}
            for column, index in self._indexes.items()
        }
        self._lookup_cache = dict(self._lookup_cache)
        self._shared = False

    # -- mutation ------------------------------------------------------------
    def insert(self, fact: Fact) -> bool:
        """Add a tuple; returns True when it was not already present."""
        fact = intern_fact(fact)
        if len(fact) != self.arity:
            raise EvaluationError(
                f"relation {self.name}/{self.arity} cannot hold tuple of length {len(fact)}"
            )
        if fact in self._tuples:
            return False
        if self._shared:
            self._unshare()
        self._facts_cache = None
        self._tuples.add(fact)
        for column, index in self._indexes.items():
            index.setdefault(fact[column], set()).add(fact)
        if self._lookup_cache:
            for column in range(self.arity):
                self._lookup_cache.pop((column, fact[column]), None)
        return True

    def delete(self, fact: Fact) -> bool:
        """Remove a tuple; returns True when it was present."""
        fact = tuple(fact)
        if fact not in self._tuples:
            return False
        if self._shared:
            self._unshare()
        self._facts_cache = None
        self._tuples.discard(fact)
        for column, index in self._indexes.items():
            bucket = index.get(fact[column])
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del index[fact[column]]
        if self._lookup_cache:
            for column in range(self.arity):
                self._lookup_cache.pop((column, fact[column]), None)
        return True

    # -- access ----------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return tuple(fact) in self._tuples

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def lookup(self, column: int, value: object) -> frozenset[Fact]:
        """Return all tuples whose *column* equals *value*, via an index.

        The returned frozenset is cached until a mutation touches that
        ``(column, value)`` bucket, so hot joins probing the same keys
        pay one allocation, not one per call.
        """
        key = (column, value)
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for fact in self._tuples:
                index.setdefault(fact[column], set()).add(fact)
            self._indexes[column] = index
        result = frozenset(index.get(value, ()))
        self._lookup_cache[key] = result
        return result

    def as_frozenset(self) -> frozenset[Fact]:
        """All tuples as a frozenset, memoized until the next mutation.

        The semi-naive evaluator calls :meth:`Database.facts` once per
        unindexed subgoal probe; without memoization each call allocated
        a fresh frozenset over the whole relation.
        """
        cached = self._facts_cache
        if cached is None:
            cached = self._facts_cache = frozenset(self._tuples)
        return cached

    def copy(self) -> "Relation":
        """A copy-on-write snapshot sharing tuples and built indexes."""
        clone = Relation.__new__(Relation)
        clone.name = self.name
        clone.arity = self.arity
        clone._tuples = self._tuples
        clone._indexes = self._indexes
        clone._lookup_cache = self._lookup_cache
        clone._facts_cache = self._facts_cache
        clone._shared = True
        self._shared = True
        return clone

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"


class Delta:
    """A set of insertions and deletions per predicate.

    Normalized so a fact is never pending both ways: inserting a fact
    cancels a pending deletion of it and vice versa (last write wins,
    matching sequential application).
    """

    __slots__ = ("insertions", "deletions")

    def __init__(
        self,
        insertions: Mapping[str, Iterable[Fact]] | None = None,
        deletions: Mapping[str, Iterable[Fact]] | None = None,
    ) -> None:
        self.insertions: dict[str, set[Fact]] = {}
        self.deletions: dict[str, set[Fact]] = {}
        if deletions:
            for predicate, facts in deletions.items():
                for fact in facts:
                    self.delete(predicate, fact)
        if insertions:
            for predicate, facts in insertions.items():
                for fact in facts:
                    self.insert(predicate, fact)

    # -- construction --------------------------------------------------------
    def insert(self, predicate: str, fact: Fact) -> "Delta":
        fact = tuple(fact)
        pending = self.deletions.get(predicate)
        if pending and fact in pending:
            pending.discard(fact)
            if not pending:
                del self.deletions[predicate]
        self.insertions.setdefault(predicate, set()).add(fact)
        return self

    def delete(self, predicate: str, fact: Fact) -> "Delta":
        fact = tuple(fact)
        pending = self.insertions.get(predicate)
        if pending and fact in pending:
            pending.discard(fact)
            if not pending:
                del self.insertions[predicate]
        self.deletions.setdefault(predicate, set()).add(fact)
        return self

    def extend(self, other: "Delta") -> "Delta":
        """Compose *other* after this delta, both being *effective* deltas
        relative to successive database states.

        An effective delta's insertions are facts genuinely added and its
        deletions facts genuinely removed (the shape
        :meth:`UndoToken.as_delta` produces).  Composing two of them
        cancels exactly: a fact *other* deletes after this delta inserted
        it (or re-inserts after this delta deleted it) vanishes from the
        result, so the composition is the net effective change of the
        whole sequence — precisely the delta one batched
        :meth:`~repro.datalog.evaluation.Materialization.apply_delta`
        pass needs.  (Contrast :meth:`insert`/:meth:`delete`, whose
        last-write-wins normalization keeps the late write: correct for
        replaying intents against an arbitrary state, wrong for net
        effective change.)
        """
        for predicate, facts in other.deletions.items():
            for fact in facts:
                pending = self.insertions.get(predicate)
                if pending and fact in pending:
                    pending.discard(fact)
                    if not pending:
                        del self.insertions[predicate]
                else:
                    self.deletions.setdefault(predicate, set()).add(fact)
        for predicate, facts in other.insertions.items():
            for fact in facts:
                pending = self.deletions.get(predicate)
                if pending and fact in pending:
                    pending.discard(fact)
                    if not pending:
                        del self.deletions[predicate]
                else:
                    self.insertions.setdefault(predicate, set()).add(fact)
        return self

    # -- views ---------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.insertions and not self.deletions

    def __bool__(self) -> bool:
        return not self.is_empty()

    def predicates(self) -> set[str]:
        return set(self.insertions) | set(self.deletions)

    def inverted(self) -> "Delta":
        """The delta that undoes this one (assuming it applied cleanly)."""
        inverse = Delta()
        for predicate, facts in self.insertions.items():
            inverse.deletions[predicate] = set(facts)
        for predicate, facts in self.deletions.items():
            inverse.insertions[predicate] = set(facts)
        return inverse

    def size(self) -> int:
        total = sum(len(facts) for facts in self.insertions.values())
        total += sum(len(facts) for facts in self.deletions.values())
        return total

    def __repr__(self) -> str:
        parts = []
        for predicate, facts in sorted(self.insertions.items()):
            parts.extend(f"+{predicate}{fact!r}" for fact in sorted(facts, key=repr))
        for predicate, facts in sorted(self.deletions.items()):
            parts.extend(f"-{predicate}{fact!r}" for fact in sorted(facts, key=repr))
        return f"Delta({', '.join(parts)})"


class UndoToken:
    """The *effective* changes one :meth:`Database.apply` made.

    Insertions of already-present facts and deletions of absent facts do
    not appear here, so :meth:`Database.undo` restores exactly the prior
    state, and :meth:`as_delta` is the precise delta for incremental view
    maintenance.
    """

    __slots__ = ("insertions", "deletions")

    def __init__(
        self,
        insertions: dict[str, set[Fact]],
        deletions: dict[str, set[Fact]],
    ) -> None:
        self.insertions = insertions
        self.deletions = deletions

    def is_noop(self) -> bool:
        return not self.insertions and not self.deletions

    def as_delta(self) -> Delta:
        delta = Delta()
        for predicate, facts in self.insertions.items():
            delta.insertions[predicate] = set(facts)
        for predicate, facts in self.deletions.items():
            delta.deletions[predicate] = set(facts)
        return delta

    def inverted_delta(self) -> Delta:
        return self.as_delta().inverted()

    def __repr__(self) -> str:
        return f"UndoToken({self.as_delta()!r})"


class Database:
    """A collection of named relations.

    Relations are created on first use; arity is checked on every insert.
    """

    __slots__ = ("_relations",)

    def __init__(self, contents: Mapping[str, Iterable[Fact]] | None = None) -> None:
        self._relations: dict[str, Relation] = {}
        if contents:
            for name, facts in contents.items():
                for fact in facts:
                    self.insert(name, fact)

    # -- mutation ------------------------------------------------------------
    def insert(self, predicate: str, fact: Fact) -> bool:
        """Insert a fact, creating the relation on first use."""
        fact = tuple(fact)
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation(predicate, len(fact))
            self._relations[predicate] = relation
        return relation.insert(fact)

    def delete(self, predicate: str, fact: Fact) -> bool:
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        return relation.delete(fact)

    def apply(self, delta: Delta) -> UndoToken:
        """Apply *delta* (deletions first) and return the effective changes."""
        applied_insertions: dict[str, set[Fact]] = {}
        applied_deletions: dict[str, set[Fact]] = {}
        for predicate, facts in delta.deletions.items():
            for fact in facts:
                if self.delete(predicate, fact):
                    applied_deletions.setdefault(predicate, set()).add(fact)
        for predicate, facts in delta.insertions.items():
            for fact in facts:
                if self.insert(predicate, fact):
                    applied_insertions.setdefault(predicate, set()).add(fact)
        return UndoToken(applied_insertions, applied_deletions)

    def undo(self, token: UndoToken) -> None:
        """Reverse the effective changes recorded by :meth:`apply`."""
        for predicate, facts in token.insertions.items():
            for fact in facts:
                self.delete(predicate, fact)
        for predicate, facts in token.deletions.items():
            for fact in facts:
                self.insert(predicate, fact)

    # -- access ----------------------------------------------------------------
    def relation(self, predicate: str) -> Relation | None:
        return self._relations.get(predicate)

    def facts(self, predicate: str) -> frozenset[Fact]:
        relation = self._relations.get(predicate)
        if relation is None:
            return frozenset()
        return relation.as_frozenset()

    def contains(self, predicate: str, fact: Fact) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and tuple(fact) in relation

    def predicates(self) -> set[str]:
        return set(self._relations)

    def arity_of(self, predicate: str) -> int | None:
        relation = self._relations.get(predicate)
        return relation.arity if relation is not None else None

    def size(self) -> int:
        """Total number of facts across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def copy(self) -> "Database":
        """A copy-on-write snapshot: O(#relations) until a side mutates."""
        new = Database()
        new._relations = {name: rel.copy() for name, rel in self._relations.items()}
        return new

    def snapshot(self) -> "Database":
        """Alias for :meth:`copy`, named for the cheap-snapshot intent."""
        return self.copy()

    def restricted_to(self, predicates: Iterable[str]) -> "Database":
        """A copy containing only the given predicates (e.g. the local site)."""
        wanted = set(predicates)
        new = Database()
        new._relations = {
            name: rel.copy() for name, rel in self._relations.items() if name in wanted
        }
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {name: set(rel) for name, rel in self._relations.items() if len(rel)}
        theirs = {name: set(rel) for name, rel in other._relations.items() if len(rel)}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}/{rel.arity}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"Database({inner})"
