"""The extensional database: named relations holding tuples of values.

Tuples contain raw Python values (``int``/``float``/``Fraction``/``str``),
not AST :class:`~repro.datalog.terms.Constant` wrappers — the engine wraps
and unwraps at the boundary.  Relations are sets, matching the paper's
set semantics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import EvaluationError

__all__ = ["Relation", "Database"]

Fact = tuple


class Relation:
    """A named, fixed-arity set of tuples with optional hash indexes.

    Indexes are built lazily per column and invalidated on mutation; they
    are what makes the local tests "use the structure of the database"
    (Section 1's point about expressibility in the query language).
    """

    __slots__ = ("name", "arity", "_tuples", "_indexes")

    def __init__(self, name: str, arity: int, tuples: Iterable[Fact] = ()) -> None:
        self.name = name
        self.arity = arity
        self._tuples: set[Fact] = set()
        self._indexes: dict[int, dict[object, set[Fact]]] = {}
        for fact in tuples:
            self.insert(fact)

    # -- mutation ------------------------------------------------------------
    def insert(self, fact: Fact) -> bool:
        """Add a tuple; returns True when it was not already present."""
        fact = tuple(fact)
        if len(fact) != self.arity:
            raise EvaluationError(
                f"relation {self.name}/{self.arity} cannot hold tuple of length {len(fact)}"
            )
        if fact in self._tuples:
            return False
        self._tuples.add(fact)
        for column, index in self._indexes.items():
            index.setdefault(fact[column], set()).add(fact)
        return True

    def delete(self, fact: Fact) -> bool:
        """Remove a tuple; returns True when it was present."""
        fact = tuple(fact)
        if fact not in self._tuples:
            return False
        self._tuples.discard(fact)
        for column, index in self._indexes.items():
            bucket = index.get(fact[column])
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del index[fact[column]]
        return True

    # -- access ----------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return tuple(fact) in self._tuples

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def lookup(self, column: int, value: object) -> frozenset[Fact]:
        """Return all tuples whose *column* equals *value*, via an index."""
        if column not in self._indexes:
            index: dict[object, set[Fact]] = {}
            for fact in self._tuples:
                index.setdefault(fact[column], set()).add(fact)
            self._indexes[column] = index
        return frozenset(self._indexes[column].get(value, ()))

    def copy(self) -> "Relation":
        return Relation(self.name, self.arity, self._tuples)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"


class Database:
    """A collection of named relations.

    Relations are created on first use; arity is checked on every insert.
    """

    __slots__ = ("_relations",)

    def __init__(self, contents: Mapping[str, Iterable[Fact]] | None = None) -> None:
        self._relations: dict[str, Relation] = {}
        if contents:
            for name, facts in contents.items():
                for fact in facts:
                    self.insert(name, fact)

    # -- mutation ------------------------------------------------------------
    def insert(self, predicate: str, fact: Fact) -> bool:
        """Insert a fact, creating the relation on first use."""
        fact = tuple(fact)
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation(predicate, len(fact))
            self._relations[predicate] = relation
        return relation.insert(fact)

    def delete(self, predicate: str, fact: Fact) -> bool:
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        return relation.delete(fact)

    # -- access ----------------------------------------------------------------
    def relation(self, predicate: str) -> Relation | None:
        return self._relations.get(predicate)

    def facts(self, predicate: str) -> frozenset[Fact]:
        relation = self._relations.get(predicate)
        if relation is None:
            return frozenset()
        return frozenset(relation)

    def contains(self, predicate: str, fact: Fact) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and tuple(fact) in relation

    def predicates(self) -> set[str]:
        return set(self._relations)

    def arity_of(self, predicate: str) -> int | None:
        relation = self._relations.get(predicate)
        return relation.arity if relation is not None else None

    def size(self) -> int:
        """Total number of facts across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def copy(self) -> "Database":
        new = Database()
        new._relations = {name: rel.copy() for name, rel in self._relations.items()}
        return new

    def restricted_to(self, predicates: Iterable[str]) -> "Database":
        """A copy containing only the given predicates (e.g. the local site)."""
        wanted = set(predicates)
        new = Database()
        new._relations = {
            name: rel.copy() for name, rel in self._relations.items() if name in wanted
        }
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {name: set(rel) for name, rel in self._relations.items() if len(rel)}
        theirs = {name: set(rel) for name, rel in other._relations.items() if len(rel)}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}/{rel.arity}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"Database({inner})"
