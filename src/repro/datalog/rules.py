"""Rules, conjunctive queries, and datalog programs.

A :class:`Rule` is ``head :- body`` where the body mixes ordinary
subgoals, negated subgoals, and arithmetic comparisons.  A
:class:`Program` is an ordered collection of rules together with helpers
for structural analysis (predicate sets, recursion detection, feature
extraction for the Fig. 2.1 classifier).

A conjunctive query is simply a single :class:`Rule`; the alias
:data:`ConjunctiveQuery` documents that intent.  The paper's CQC form
(one local subgoal, remote subgoals, comparisons) is handled by
:mod:`repro.localtests`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.datalog.atoms import Atom, BodyLiteral, Comparison, Negation
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Variable

__all__ = ["Rule", "Program", "ConjunctiveQuery", "rule_variables"]


@dataclass(frozen=True)
class Rule:
    """A datalog rule ``head :- body``.  A body-less rule is a fact."""

    head: Atom
    body: tuple[BodyLiteral, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    # -- structural views --------------------------------------------------
    @property
    def positive_atoms(self) -> tuple[Atom, ...]:
        """The ordinary (positive, non-comparison) subgoals, in order."""
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    @property
    def negations(self) -> tuple[Negation, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Negation))

    @property
    def comparisons(self) -> tuple[Comparison, ...]:
        """A(C) in the paper's notation: the arithmetic subgoals."""
        return tuple(lit for lit in self.body if isinstance(lit, Comparison))

    @property
    def ordinary_subgoals(self) -> tuple[Atom, ...]:
        """O(C) in the paper's notation (positive ordinary subgoals)."""
        return self.positive_atoms

    @property
    def is_fact(self) -> bool:
        return not self.body and all(isinstance(t, Constant) for t in self.head.args)

    def variables(self) -> set[Variable]:
        """All variables appearing anywhere in the rule."""
        result: set[Variable] = set(self.head.variables())
        for literal in self.body:
            result.update(literal.variables())
        return result

    def constants(self) -> set[Constant]:
        """All constants appearing anywhere in the rule."""
        result: set[Constant] = set(self.head.constants())
        for literal in self.body:
            if isinstance(literal, Atom):
                result.update(literal.constants())
            elif isinstance(literal, Negation):
                result.update(literal.atom.constants())
            else:
                for side in (literal.left, literal.right):
                    if isinstance(side, Constant):
                        result.add(side)
        return result

    def body_predicates(self) -> set[str]:
        """Names of ordinary predicates (positive or negated) in the body."""
        preds = {atom.predicate for atom in self.positive_atoms}
        preds.update(neg.predicate for neg in self.negations)
        return preds

    # -- feature tests -----------------------------------------------------
    @property
    def has_negation(self) -> bool:
        return any(isinstance(lit, Negation) for lit in self.body)

    @property
    def has_comparisons(self) -> bool:
        return any(isinstance(lit, Comparison) for lit in self.body)

    def is_conjunctive(self) -> bool:
        """True when the rule is a plain CQ: no negation, no comparisons."""
        return not self.has_negation and not self.has_comparisons

    # -- transformation ----------------------------------------------------
    def substitute(self, subst: Substitution) -> "Rule":
        """Apply a substitution to head and body."""
        return Rule(
            subst.apply_atom(self.head),
            tuple(subst.apply_literal(lit) for lit in self.body),
        )

    def rename_predicate(self, old: str, new: str) -> "Rule":
        """Rename every occurrence (head and body) of predicate *old*."""

        def fix(atom: Atom) -> Atom:
            return Atom(new, atom.args) if atom.predicate == old else atom

        body: list[BodyLiteral] = []
        for lit in self.body:
            if isinstance(lit, Atom):
                body.append(fix(lit))
            elif isinstance(lit, Negation):
                body.append(Negation(fix(lit.atom)))
            else:
                body.append(lit)
        return Rule(fix(self.head), tuple(body))

    def with_body(self, body: Iterable[BodyLiteral]) -> "Rule":
        return Rule(self.head, tuple(body))

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = " & ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."


#: A conjunctive query (possibly with comparisons/negation) is a single rule.
ConjunctiveQuery = Rule


def rule_variables(rules: Iterable[Rule]) -> set[str]:
    """The set of variable *names* used across a collection of rules."""
    names: set[str] = set()
    for rule in rules:
        names.update(v.name for v in rule.variables())
    return names


@dataclass(frozen=True)
class Program:
    """An ordered collection of rules defining one or more IDB predicates."""

    rules: tuple[Rule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    # -- predicate structure -------------------------------------------------
    def idb_predicates(self) -> set[str]:
        """Predicates defined by some rule head."""
        return {rule.head.predicate for rule in self.rules}

    def edb_predicates(self) -> set[str]:
        """Predicates used in bodies but never defined (base relations)."""
        idb = self.idb_predicates()
        return {
            pred
            for rule in self.rules
            for pred in rule.body_predicates()
            if pred not in idb
        }

    def predicates(self) -> set[str]:
        return self.idb_predicates() | self.edb_predicates()

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        return tuple(rule for rule in self.rules if rule.head.predicate == predicate)

    def dependency_edges(self) -> Iterator[tuple[str, str, bool]]:
        """Yield edges ``(head_pred, body_pred, is_negative)``.

        Comparison subgoals contribute no edges; they are built-ins.
        """
        for rule in self.rules:
            for lit in rule.body:
                if isinstance(lit, Atom):
                    yield rule.head.predicate, lit.predicate, False
                elif isinstance(lit, Negation):
                    yield rule.head.predicate, lit.predicate, True

    def is_recursive(self) -> bool:
        """True when the positive-or-negative dependency graph has a cycle
        through IDB predicates."""
        idb = self.idb_predicates()
        adjacency: dict[str, set[str]] = {pred: set() for pred in idb}
        for head, body_pred, _neg in self.dependency_edges():
            if body_pred in idb:
                adjacency[head].add(body_pred)
        # Iterative DFS cycle detection over the IDB subgraph.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {pred: WHITE for pred in idb}
        for start in idb:
            if color[start] != WHITE:
                continue
            stack: list[tuple[str, Iterator[str]]] = [(start, iter(adjacency[start]))]
            color[start] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        return True
                    if color[child] == WHITE:
                        color[child] = GRAY
                        stack.append((child, iter(adjacency[child])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return False

    # -- feature tests -------------------------------------------------------
    @property
    def has_negation(self) -> bool:
        return any(rule.has_negation for rule in self.rules)

    @property
    def has_comparisons(self) -> bool:
        return any(rule.has_comparisons for rule in self.rules)

    # -- transformation ------------------------------------------------------
    def rename_predicate(self, old: str, new: str) -> "Program":
        return Program(tuple(rule.rename_predicate(old, new) for rule in self.rules))

    def extended(self, extra: Sequence[Rule]) -> "Program":
        return Program(self.rules + tuple(extra))

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
