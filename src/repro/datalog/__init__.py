"""Datalog substrate: AST, parser, database, and bottom-up engine.

Public surface of the sublanguage used throughout the paper: conjunctive
queries, unions of CQs, recursive datalog, with optional negated subgoals
and arithmetic comparisons (the twelve classes of Fig. 2.1).
"""

from repro.datalog.atoms import (
    PANIC,
    Atom,
    BodyLiteral,
    Comparison,
    ComparisonOp,
    Negation,
)
from repro.datalog.database import Database, Delta, Relation, UndoToken
from repro.datalog.evaluation import (
    Engine,
    Materialization,
    MaterializationStats,
    MaterializationUndo,
    evaluate,
    evaluate_predicate,
    fires,
    PANIC_PREDICATE,
)
from repro.datalog.parser import parse_literal, parse_program, parse_rule, parse_term
from repro.datalog.rules import ConjunctiveQuery, Program, Rule
from repro.datalog.safety import check_program_safety, check_rule_safety, is_safe
from repro.datalog.stratify import stratify
from repro.datalog.substitution import Substitution, match_atom_against_fact, unify_terms
from repro.datalog.terms import (
    Constant,
    FreshVariableFactory,
    Term,
    Variable,
    fresh_variables,
)

__all__ = [
    "PANIC",
    "PANIC_PREDICATE",
    "Atom",
    "BodyLiteral",
    "Comparison",
    "ComparisonOp",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "Delta",
    "Engine",
    "FreshVariableFactory",
    "Materialization",
    "MaterializationStats",
    "MaterializationUndo",
    "Negation",
    "UndoToken",
    "Program",
    "Relation",
    "Rule",
    "Substitution",
    "Term",
    "Variable",
    "check_program_safety",
    "check_rule_safety",
    "evaluate",
    "evaluate_predicate",
    "fires",
    "fresh_variables",
    "is_safe",
    "match_atom_against_fact",
    "parse_literal",
    "parse_program",
    "parse_rule",
    "parse_term",
    "stratify",
    "unify_terms",
]
