"""Parser for the paper's Prolog-style constraint syntax.

The concrete syntax follows the paper exactly:

* names beginning with a lower-case letter are constants and predicate
  names; names beginning with a capital (or underscore) are variables;
* subgoals are separated by ``&`` (a comma is accepted as well);
* negated subgoals are written ``not dept(D)``;
* comparisons use ``<``, ``<=``, ``>``, ``>=``, ``=`` and ``<>``
  (``==`` and ``!=`` are accepted as synonyms);
* rules are optionally terminated with ``.``;
* ``%`` and ``#`` start comments running to end of line;
* quoted strings support the escapes ``\'``, ``\"`` and ``\\`` only
  (control characters have no concrete syntax — construct such constants
  programmatically).

Examples from the paper parse verbatim::

    panic :- emp(E,D,S) & not dept(D) & S < 100
    boss(E,M) :- emp(E,D,S) & manager(D,M)

Entry points: :func:`parse_program`, :func:`parse_rule`,
:func:`parse_literal`, :func:`parse_term`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError
from repro.datalog.atoms import Atom, BodyLiteral, Comparison, ComparisonOp, Negation
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Term, Variable

__all__ = [
    "parse_program",
    "parse_rule",
    "parse_literal",
    "parse_term",
    "parse_term_list",
    "tokenize",
]


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # NAME VAR NUMBER STRING OP PUNCT
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>[%\#][^\n]*)
  | (?P<ARROW>:-)
  | (?P<OP><=|>=|<>|!=|==|<|>|=)
  | (?P<NUMBER>-?\d+\.\d+|-?\d+)
  | (?P<VAR>[A-Z_][A-Za-z0-9_]*)
  | (?P<NAME>[a-z][A-Za-z0-9_]*)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<PUNCT>[(),.&])
    """,
    re.VERBOSE,
)

_OP_MAP = {
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
    "=": ComparisonOp.EQ,
    "==": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "!=": ComparisonOp.NE,
}


def tokenize(source: str) -> Iterator[_Token]:
    """Yield tokens for *source*, raising :class:`ParseError` on junk."""
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, column)
        kind = match.lastgroup or ""
        text = match.group()
        if kind in ("WS", "COMMENT"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rindex("\n") + 1
        else:
            column = match.start() - line_start + 1
            if kind == "ARROW":
                yield _Token("ARROW", text, line, column)
            else:
                yield _Token(kind, text, line, column)
        pos = match.end()


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self._tokens = list(tokenize(source))
        self._index = 0

    # -- token plumbing ------------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            line = last.line if last else 1
            raise ParseError("unexpected end of input", line, 0)
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _accept(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            self._index += 1
            return True
        return False

    @property
    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar ---------------------------------------------------------------
    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while not self.at_end:
            rules.append(self.parse_rule())
        return Program(tuple(rules))

    def parse_rule(self) -> Rule:
        head = self._parse_atom()
        body: list[BodyLiteral] = []
        if self._accept("ARROW"):
            body.append(self._parse_literal())
            while self._accept("PUNCT", "&") or self._accept("PUNCT", ","):
                body.append(self._parse_literal())
        self._accept("PUNCT", ".")
        return Rule(head, tuple(body))

    def _parse_literal(self) -> BodyLiteral:
        token = self._peek()
        if token is None:
            raise ParseError("expected a literal, found end of input")
        if token.kind == "NAME" and token.text == "not":
            self._next()
            return Negation(self._parse_atom())
        # Disambiguate `pred(...)` from `term op term`: an atom starts with
        # NAME followed by `(`; a bare NAME not followed by `(` or an
        # operator is a 0-ary atom.
        if token.kind == "NAME":
            after = self._tokens[self._index + 1] if self._index + 1 < len(self._tokens) else None
            if after is not None and after.kind == "OP":
                return self._parse_comparison()
            return self._parse_atom()
        return self._parse_comparison()

    def _parse_comparison(self) -> Comparison:
        left = self.parse_term()
        op_token = self._next()
        if op_token.kind != "OP":
            raise ParseError(
                f"expected a comparison operator, found {op_token.text!r}",
                op_token.line,
                op_token.column,
            )
        right = self.parse_term()
        return Comparison(left, _OP_MAP[op_token.text], right)

    def _parse_atom(self) -> Atom:
        name = self._expect("NAME")
        args: list[Term] = []
        if self._accept("PUNCT", "("):
            args.append(self.parse_term())
            while self._accept("PUNCT", ","):
                args.append(self.parse_term())
            self._expect("PUNCT", ")")
        return Atom(name.text, tuple(args))

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "VAR":
            return Variable(token.text)
        if token.kind == "NAME":
            return Constant(token.text)
        if token.kind == "NUMBER":
            if "." in token.text:
                return Constant(float(token.text))
            return Constant(int(token.text))
        if token.kind == "STRING":
            body = token.text[1:-1]
            return Constant(body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\"))
        raise ParseError(f"expected a term, found {token.text!r}", token.line, token.column)


def parse_program(source: str) -> Program:
    """Parse a whole program (one rule per ``.``/line)."""
    return _Parser(source).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single rule; trailing junk is an error."""
    parser = _Parser(source)
    rule = parser.parse_rule()
    if not parser.at_end:
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return rule


def parse_literal(source: str) -> BodyLiteral:
    """Parse a single body literal (atom, negation, or comparison)."""
    parser = _Parser(source)
    literal = parser._parse_literal()
    if not parser.at_end:
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return literal


def parse_term(source: str) -> Term:
    """Parse a single term (variable or constant)."""
    parser = _Parser(source)
    term = parser.parse_term()
    if not parser.at_end:
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return term


def parse_term_list(source: str) -> tuple[Term, ...]:
    """Parse a comma-separated term list (possibly empty).

    Goes through the lexer, so quoted strings containing commas — e.g.
    ``"a,b"`` — stay one term, unlike a naive ``source.split(",")``.
    """
    parser = _Parser(source)
    if parser.at_end:
        return ()
    terms = [parser.parse_term()]
    while parser._accept("PUNCT", ","):
        terms.append(parser.parse_term())
    if not parser.at_end:
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return tuple(terms)
