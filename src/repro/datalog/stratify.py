"""Stratification of datalog programs with negation.

The bottom-up engine implements the standard stratified semantics: IDB
predicates are partitioned into strata such that a predicate never depends
negatively on a predicate of its own or a later stratum.  A program whose
dependency graph has a cycle through a negative edge is rejected with
:class:`~repro.errors.StratificationError`.
"""

from __future__ import annotations

from repro.errors import StratificationError
from repro.datalog.rules import Program

__all__ = ["stratify"]


def _strongly_connected_components(nodes: set[str], edges: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's algorithm, iterative to avoid recursion limits."""
    index_counter = 0
    indexes: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []

    for root in nodes:
        if root in indexes:
            continue
        work: list[tuple[str, iter]] = [(root, iter(edges.get(root, ())))]
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indexes:
                    indexes[child] = lowlinks[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(edges.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def stratify(program: Program) -> list[set[str]]:
    """Partition the IDB predicates of *program* into evaluation strata.

    Returns the strata in evaluation order (stratum 0 first).  EDB
    predicates are not included.  Raises
    :class:`~repro.errors.StratificationError` when negation occurs inside
    a dependency cycle.
    """
    idb = program.idb_predicates()
    positive_edges: dict[str, set[str]] = {pred: set() for pred in idb}
    negative_pairs: set[tuple[str, str]] = set()
    all_edges: dict[str, set[str]] = {pred: set() for pred in idb}
    for head, body_pred, is_negative in program.dependency_edges():
        if body_pred not in idb:
            continue
        all_edges[head].add(body_pred)
        if is_negative:
            negative_pairs.add((head, body_pred))
        else:
            positive_edges[head].add(body_pred)

    components = _strongly_connected_components(idb, all_edges)
    component_of: dict[str, int] = {}
    for i, component in enumerate(components):
        for pred in component:
            component_of[pred] = i

    # Negative edge inside one SCC => negation through recursion.
    for head, body_pred in negative_pairs:
        if component_of[head] == component_of[body_pred]:
            raise StratificationError(
                f"predicate {head!r} depends negatively on {body_pred!r} "
                f"within a recursive cycle; the program is not stratifiable"
            )

    # Longest-path layering of the condensation: stratum(head) must be
    # >= stratum(body) for positive edges and > for negative edges.
    stratum: dict[int, int] = {i: 0 for i in range(len(components))}
    changed = True
    iterations = 0
    limit = len(components) * len(components) + len(components) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > limit:  # pragma: no cover - guarded by SCC check
            raise StratificationError("stratification did not converge")
        for head, body_pred in negative_pairs:
            h, b = component_of[head], component_of[body_pred]
            if stratum[h] < stratum[b] + 1:
                stratum[h] = stratum[b] + 1
                changed = True
        for head in idb:
            for body_pred in positive_edges[head]:
                h, b = component_of[head], component_of[body_pred]
                if stratum[h] < stratum[b]:
                    stratum[h] = stratum[b]
                    changed = True

    height = max(stratum.values(), default=0) + 1
    layers: list[set[str]] = [set() for _ in range(height)]
    for pred in idb:
        layers[stratum[component_of[pred]]].add(pred)
    return [layer for layer in layers if layer]
