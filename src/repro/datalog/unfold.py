"""Unfolding nonrecursive datalog programs into unions of CQs.

The paper treats "unions of CQ's" and "nonrecursive datalog programs" as
the same class (Section 2, citing Sagiv and Yannakakis [1981]).  This
module realizes the equivalence constructively: a nonrecursive program is
expanded, by repeated resolution of IDB subgoals, into the list of
conjunctive queries whose union it computes.

Negated subgoals are carried along only when their predicate is an EDB
predicate; a negated IDB subgoal would take the expansion outside unions
of CQs (the complement of a union is not a union), so it is rejected.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import NotApplicableError
from repro.datalog.atoms import Atom, BodyLiteral, Negation
from repro.datalog.rules import Program, Rule
from repro.datalog.substitution import Substitution, unify_terms_bidirectional
from repro.datalog.terms import FreshVariableFactory, Variable

__all__ = ["unfold_to_union", "can_unfold"]


def can_unfold(program: Program, goal: str = "panic") -> bool:
    """True when :func:`unfold_to_union` would succeed for *goal*."""
    if program.is_recursive():
        return False
    idb = program.idb_predicates()
    for rule in program:
        for literal in rule.body:
            if isinstance(literal, Negation) and literal.predicate in idb:
                return False
    return goal in idb


def unfold_to_union(program: Program, goal: str = "panic") -> list[Rule]:
    """Expand the *goal* predicate of a nonrecursive program into a union
    of conjunctive queries (each possibly with comparisons and negated EDB
    subgoals).

    Raises :class:`~repro.errors.NotApplicableError` for recursive
    programs or programs that negate IDB predicates.
    """
    if program.is_recursive():
        raise NotApplicableError("cannot unfold a recursive program into a union of CQs")
    idb = program.idb_predicates()
    if goal not in idb:
        raise NotApplicableError(f"goal predicate {goal!r} is not defined by the program")
    for rule in program:
        for literal in rule.body:
            if isinstance(literal, Negation) and literal.predicate in idb:
                raise NotApplicableError(
                    f"negated IDB subgoal `{literal}` cannot be unfolded into a union of CQs"
                )

    results: list[Rule] = []
    seen: set[str] = set()

    def expand(rule: Rule) -> Iterator[Rule]:
        """Resolve the first IDB subgoal of *rule*, recursively."""
        for position, literal in enumerate(rule.body):
            if isinstance(literal, Atom) and literal.predicate in idb:
                for defining in program.rules_for(literal.predicate):
                    renamed = _rename_apart(defining, rule)
                    subst = unify_terms_bidirectional(renamed.head.args, literal.args)
                    if subst is None:
                        # Constant clash between call site and rule head.
                        continue
                    spliced_body: tuple[BodyLiteral, ...] = (
                        rule.body[:position]
                        + renamed.body
                        + rule.body[position + 1:]
                    )
                    # The unifier may bind caller variables (a constant in
                    # the defining head), so it applies to the whole rule.
                    yield from expand(Rule(rule.head, spliced_body).substitute(subst))
                return
        yield rule

    for goal_rule in program.rules_for(goal):
        for flat in expand(goal_rule):
            key = str(flat)
            if key not in seen:
                seen.add(key)
                results.append(flat)
    return results


def _rename_apart(defining: Rule, context: Rule) -> Rule:
    """Rename *defining*'s variables apart from those of *context*."""
    taken = {v.name for v in context.variables()}
    clashes = [v for v in defining.variables() if v.name in taken]
    if not clashes:
        return defining
    factory = FreshVariableFactory(taken | {v.name for v in defining.variables()})
    mapping = Substitution({v: factory.fresh(hint=f"{v.name}r") for v in clashes})
    return defining.substitute(mapping)
