"""Bottom-up, semi-naive evaluation of stratified datalog with builtins.

This is the execution substrate for everything in the paper that must
actually *run*: constraints (``panic`` queries), the rewritten constraints
of Section 4, and the recursive interval programs of Fig. 6.1.

Features:

* positive recursion via semi-naive (delta) iteration;
* stratified negation (checked by :mod:`repro.datalog.stratify`);
* arithmetic comparison subgoals evaluated as builtins over the dense
  total order of :mod:`repro.arith.order`;
* safety (range restriction) enforced up front, so negations and
  comparisons are always ground when reached.

The main entry points are :func:`evaluate`, :func:`evaluate_predicate`,
and :func:`fires` (does a constraint derive ``panic``).  For repeated
evaluation of one program against many databases, :class:`Engine` caches
the static analysis.  For a *stream of updates against one database*,
:meth:`Engine.materialize` returns a :class:`Materialization` whose
derived facts are maintained incrementally by :meth:`Materialization.
apply_delta` instead of re-evaluated from scratch — delta rules for
non-recursive strata, delete-and-rederive (DRed) for recursive strata,
both aware of stratified negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.arith.order import comparison_holds
from repro.datalog.atoms import Atom, BodyLiteral, Comparison, Negation
from repro.datalog.database import Database, Delta
from repro.datalog.rules import Program, Rule
from repro.datalog.safety import check_program_safety
from repro.datalog.stratify import stratify
from repro.datalog.terms import Constant, Variable

__all__ = [
    "Engine",
    "Materialization",
    "MaterializationStats",
    "MaterializationUndo",
    "evaluate",
    "evaluate_predicate",
    "fires",
    "PANIC_PREDICATE",
]

PANIC_PREDICATE = "panic"

Fact = tuple


class _FactSource:
    """Union view over EDB facts and facts derived so far."""

    __slots__ = ("_edb", "_derived")

    def __init__(self, edb: Database, derived: Mapping[str, set[Fact]]) -> None:
        self._edb = edb
        self._derived = derived

    def facts(self, predicate: str) -> Iterable[Fact]:
        derived = self._derived.get(predicate)
        edb_facts = self._edb.facts(predicate)
        if derived:
            if edb_facts:
                return derived | edb_facts
            return derived
        return edb_facts

    def facts_with(self, predicate: str, column: int, value: object) -> Iterable[Fact]:
        """Facts whose *column* equals *value*, using the EDB hash index
        where available; derived facts are filtered by scan."""
        relation = self._edb.relation(predicate)
        if relation is not None:
            indexed: Iterable[Fact] = relation.lookup(column, value)
        else:
            indexed = ()
        derived = self._derived.get(predicate)
        if not derived:
            return indexed
        matching = {fact for fact in derived if fact[column] == value}
        if not matching:
            return indexed
        return set(indexed) | matching

    def contains(self, predicate: str, fact: Fact) -> bool:
        derived = self._derived.get(predicate)
        if derived is not None and fact in derived:
            return True
        return self._edb.contains(predicate, fact)


class _AdjustedSource:
    """The *pre-delta* state, reconstructed from a post-delta database.

    Incremental maintenance runs after the delta has been applied to the
    EDB (and after lower strata updated their derived sets), but the
    deletion phase of DRed must evaluate rules against the old state.
    Rather than keeping a second copy of the database, this view undoes
    the recorded changes on the fly: ``old = (new - insertions) + deletions``.
    """

    __slots__ = ("_edb", "_derived", "_ins", "_dels")

    def __init__(
        self,
        edb: Database,
        derived: Mapping[str, set[Fact]],
        ins: Mapping[str, set[Fact]],
        dels: Mapping[str, set[Fact]],
    ) -> None:
        self._edb = edb
        self._derived = derived
        self._ins = ins
        self._dels = dels

    def facts(self, predicate: str) -> Iterable[Fact]:
        result = set(self._edb.facts(predicate))
        derived = self._derived.get(predicate)
        if derived:
            result |= derived
        added = self._ins.get(predicate)
        if added:
            result -= added
        removed = self._dels.get(predicate)
        if removed:
            result |= removed
        return result

    def facts_with(self, predicate: str, column: int, value: object) -> Iterable[Fact]:
        relation = self._edb.relation(predicate)
        result: set[Fact] = set(relation.lookup(column, value)) if relation else set()
        derived = self._derived.get(predicate)
        if derived:
            result |= {fact for fact in derived if fact[column] == value}
        added = self._ins.get(predicate)
        if added:
            result -= added
        removed = self._dels.get(predicate)
        if removed:
            result |= {fact for fact in removed if fact[column] == value}
        return result

    def contains(self, predicate: str, fact: Fact) -> bool:
        removed = self._dels.get(predicate)
        if removed and fact in removed:
            return True
        added = self._ins.get(predicate)
        if added and fact in added:
            return False
        derived = self._derived.get(predicate)
        if derived and fact in derived:
            return True
        return self._edb.contains(predicate, fact)


_UNBOUND = object()

# Join environments are plain ``{Variable: raw value}`` dicts rather than
# Substitution objects: the inner join loop runs once per candidate fact,
# and wrapping every fact value in a fresh Constant (plus copying the
# binding dict per extension) dominated the maintenance profile.  An
# environment is copied at most once per match — on the first new binding
# — so sibling branches of the backtracking search stay isolated.


def _match_fact(args: tuple, fact: Fact, env: dict) -> Optional[dict]:
    """Extend *env* by matching atom *args* against a raw fact tuple.

    Returns the (possibly shared) environment, or ``None`` on mismatch.
    Constants compare by raw value — the same ``==`` the Constant
    dataclass delegates to — and an existing binding must agree with the
    fact's value at that position.
    """
    if len(args) != len(fact):
        return None
    copied = False
    for term, value in zip(args, fact):
        if isinstance(term, Constant):
            if term.value != value:
                return None
            continue
        bound = env.get(term, _UNBOUND)
        if bound is _UNBOUND:
            if not copied:
                env = dict(env)
                copied = True
            env[term] = value
        elif bound != value:
            return None
    return env


def _comparison_env_holds(comparison: Comparison, env: dict) -> bool:
    left = comparison.left
    right = comparison.right
    a = left.value if isinstance(left, Constant) else env[left]
    b = right.value if isinstance(right, Constant) else env[right]
    return comparison_holds(comparison.op, a, b)


def _ground_args(args: tuple, env: dict) -> Fact:
    return tuple(t.value if isinstance(t, Constant) else env[t] for t in args)


def _order_body(rule: Rule, first: Optional[Atom] = None) -> list[BodyLiteral]:
    """Choose an evaluation order: positive atoms in given order, with each
    comparison/negation placed as early as its variables allow.

    This keeps joins small by filtering eagerly while preserving safety
    (every comparison/negation is ground when reached).  When *first* is
    given (the delta-restricted occurrence in semi-naive evaluation), that
    atom leads the join, so the work is proportional to the delta rather
    than to the widest relation scanned ahead of it.
    """
    bound: set[Variable] = set()
    pending = list(rule.body)
    ordered: list[BodyLiteral] = []
    if first is not None:
        for i, literal in enumerate(pending):
            if literal is first:
                ordered.append(pending.pop(i))
                bound.update(first.variables())
                break
    while pending:
        placed = False
        for i, literal in enumerate(pending):
            if isinstance(literal, (Comparison, Negation)):
                if all(v in bound for v in literal.variables()):
                    ordered.append(pending.pop(i))
                    placed = True
                    break
        if placed:
            continue
        # No filter is ready: take the next positive atom.
        for i, literal in enumerate(pending):
            if isinstance(literal, Atom):
                ordered.append(pending.pop(i))
                bound.update(literal.variables())
                placed = True
                break
        if not placed:  # remaining literals reference unbound vars: unsafe
            ordered.extend(pending)
            break
    return ordered


def _evaluate_rule(
    rule: Rule,
    source: _FactSource,
    restrict_atom: Optional[Atom] = None,
    restrict_facts: Optional[set[Fact]] = None,
    use_indexes: bool = True,
) -> set[Fact]:
    """All head facts derivable from *rule* against *source*.

    When *restrict_atom* is given (semi-naive deltas), that particular
    subgoal occurrence draws its facts from *restrict_facts* instead of
    the full source — and leads the join, so the cost scales with the
    delta.  ``use_indexes=False`` forces full scans (ablation).
    """
    ordered = _order_body(
        rule, first=restrict_atom if restrict_facts is not None else None
    )
    length = len(ordered)
    head_args = rule.head.args
    results: set[Fact] = set()
    # Depth-first join over the ordered body.
    stack: list[tuple[int, dict]] = [(0, {})]
    while stack:
        position, env = stack.pop()
        if position == length:
            results.add(_ground_args(head_args, env))
            continue
        literal = ordered[position]
        if isinstance(literal, Comparison):
            if _comparison_env_holds(literal, env):
                stack.append((position + 1, env))
            continue
        if isinstance(literal, Negation):
            fact = _ground_args(literal.args, env)
            if not source.contains(literal.predicate, fact):
                stack.append((position + 1, env))
            continue
        assert isinstance(literal, Atom)
        args = literal.args
        if literal is restrict_atom and restrict_facts is not None:
            candidates: Iterable[Fact] = restrict_facts
        else:
            # Index-assisted retrieval: when some argument is already
            # ground (a constant, or a variable the join has bound), pull
            # only the matching bucket instead of scanning the relation.
            bound_column = -1
            bound_value: object = None
            for column, term in enumerate(args):
                if isinstance(term, Constant):
                    bound_column, bound_value = column, term.value
                    break
                value = env.get(term, _UNBOUND)
                if value is not _UNBOUND:
                    bound_column, bound_value = column, value
                    break
            if bound_column >= 0 and use_indexes:
                candidates = source.facts_with(
                    literal.predicate, bound_column, bound_value
                )
            else:
                candidates = source.facts(literal.predicate)
        next_position = position + 1
        for fact in candidates:
            extended = _match_fact(args, fact, env)
            if extended is not None:
                stack.append((next_position, extended))
    return results


def _derives_fact(
    rule: Rule,
    source: _FactSource,
    fact: Fact,
    use_indexes: bool = True,
) -> bool:
    """Does *rule* derive the ground head *fact* from *source*?

    A point query: the head unification binds most variables up front, so
    the join below is far cheaper than evaluating the rule outright.  The
    DRed rederivation phase calls this once per deletion candidate.
    """
    initial = _match_fact(rule.head.args, fact, {})
    if initial is None:
        return False
    ordered = _order_body(rule)
    length = len(ordered)
    stack: list[tuple[int, dict]] = [(0, initial)]
    while stack:
        position, env = stack.pop()
        if position == length:
            return True
        literal = ordered[position]
        if isinstance(literal, Comparison):
            if _comparison_env_holds(literal, env):
                stack.append((position + 1, env))
            continue
        if isinstance(literal, Negation):
            negated = _ground_args(literal.args, env)
            if not source.contains(literal.predicate, negated):
                stack.append((position + 1, env))
            continue
        assert isinstance(literal, Atom)
        args = literal.args
        bound_column = -1
        bound_value: object = None
        for column, term in enumerate(args):
            if isinstance(term, Constant):
                bound_column, bound_value = column, term.value
                break
            value = env.get(term, _UNBOUND)
            if value is not _UNBOUND:
                bound_column, bound_value = column, value
                break
        if bound_column >= 0 and use_indexes:
            candidates: Iterable[Fact] = source.facts_with(
                literal.predicate, bound_column, bound_value
            )
        else:
            candidates = source.facts(literal.predicate)
        next_position = position + 1
        for candidate in candidates:
            extended = _match_fact(args, candidate, env)
            if extended is not None:
                stack.append((next_position, extended))
    return False


def _flip_negation(rule: Rule, index: int) -> tuple[Rule, Atom]:
    """Replace the negated literal at body position *index* with a fresh
    positive occurrence of the same atom.

    Used by the maintenance delta rules: a derivation gained (lost) via a
    negated subgoal is found by drawing the negated predicate's deleted
    (inserted) facts through a positive occurrence instead.  The atom is
    freshly allocated so identity-based restriction targets exactly it.
    """
    literal = rule.body[index]
    assert isinstance(literal, Negation)
    flipped = Atom(literal.atom.predicate, literal.atom.args)
    body = list(rule.body)
    body[index] = flipped
    return Rule(rule.head, tuple(body)), flipped


class Engine:
    """A compiled program: safety-checked, stratified, ready to evaluate.

    ``seminaive=False`` switches to naive fixpoint iteration (every rule
    re-evaluated against the full fact set each round) — kept for the
    ablation benchmark; semantics are identical.
    """

    def __init__(
        self,
        program: Program,
        seminaive: bool = True,
        use_indexes: bool = True,
    ) -> None:
        check_program_safety(program)
        self.program = program
        self.seminaive = seminaive
        self.use_indexes = use_indexes
        self.strata: list[set[str]] = stratify(program)
        self._rules_by_stratum: list[list[Rule]] = [
            [rule for rule in program if rule.head.predicate in stratum]
            for stratum in self.strata
        ]
        self._recursive_by_stratum: list[list[Rule]] = [
            [
                rule
                for rule in rules
                if any(
                    isinstance(lit, Atom) and lit.predicate in stratum
                    for lit in rule.body
                )
            ]
            for stratum, rules in zip(self.strata, self._rules_by_stratum)
        ]

    def _compute(self, db: Database) -> dict[str, set[Fact]]:
        """Full bottom-up evaluation into a predicate -> facts mapping."""
        derived: dict[str, set[Fact]] = {}
        for stratum_preds, rules in zip(self.strata, self._rules_by_stratum):
            self._evaluate_stratum(db, derived, stratum_preds, rules)
        return derived

    def evaluate(self, db: Database) -> Database:
        """Return a database of all derived IDB facts (EDB not included)."""
        result = Database()
        for predicate, facts in self._compute(db).items():
            for fact in facts:
                result.insert(predicate, fact)
        return result

    def materialize(self, db: Database) -> "Materialization":
        """Evaluate once and keep the result maintainable under deltas.

        The returned :class:`Materialization` holds a reference to *db*;
        after mutating *db* (e.g. via :meth:`Database.apply`), call
        :meth:`Materialization.apply_delta` with the effective delta to
        bring the derived facts up to date incrementally.
        """
        return Materialization(self, db)

    def panic_delta_probe(self, db: Database, delta: Delta) -> Optional[bool]:
        """For panic-only programs: does *delta* introduce a new ``panic``
        derivation?

        *delta* must be the effective changes already applied to *db*
        (the same post-state contract as :meth:`Materialization.
        apply_delta`).  The probe runs one delta-restricted pass over the
        ``panic`` rules — no materialized state needed, because a program
        whose every head is ``panic`` has no auxiliary IDB to consult.
        Returns ``None`` when the program *does* derive auxiliary
        predicates (the probe would need maintained state to be exact).

        Batched sessions use this to keep updates that would fire a
        constraint out of a coalesced batch; note it only sees *new*
        derivations — a violation already present in *db* is invisible.
        """
        panic_only = getattr(self, "_panic_only", None)
        if panic_only is None:
            panic_only = all(
                rule.head.predicate == PANIC_PREDICATE for rule in self.program
            )
            self._panic_only = panic_only
        if not panic_only:
            return None
        source = _FactSource(db, {})
        for rule in self.program:
            for index, literal in enumerate(rule.body):
                if isinstance(literal, Atom):
                    added = delta.insertions.get(literal.predicate)
                    if added and _evaluate_rule(
                        rule, source, literal, set(added), self.use_indexes
                    ):
                        return True
                elif isinstance(literal, Negation):
                    removed = delta.deletions.get(literal.predicate)
                    if removed:
                        flipped_rule, flipped_atom = _flip_negation(rule, index)
                        if _evaluate_rule(
                            flipped_rule, source, flipped_atom,
                            set(removed), self.use_indexes,
                        ):
                            return True
        return False

    def panic_polarities(self) -> Mapping[str, frozenset[int]]:
        """The signs with which each predicate can influence ``panic``.

        ``+1`` in a predicate's set means some derivation path reaches
        ``panic`` through an even number of negations (more facts can
        only add ``panic`` derivations), ``-1`` an odd number (more facts
        can remove them).  A delta whose insertions all hit ``{+1}``-only
        predicates and whose deletions all hit ``{-1}``-only ones is
        *violation-monotone*: along a sequence of such deltas the set of
        ``panic`` derivations only grows, so a clean final state proves
        every intermediate state was clean too.  Batched maintenance
        (:meth:`repro.core.session.CheckSession.process_stream`) uses
        this to coalesce safe updates.  Predicates absent from the
        program map to the empty set (vacuously monotone both ways).
        """
        cached = getattr(self, "_panic_polarities", None)
        if cached is not None:
            return cached
        polarities: dict[str, set[int]] = {PANIC_PREDICATE: {1}}
        changed = True
        while changed:
            changed = False
            for rule in self.program:
                head_signs = polarities.get(rule.head.predicate)
                if not head_signs:
                    continue
                for literal in rule.body:
                    if isinstance(literal, Atom):
                        target, flip = literal.predicate, 1
                    elif isinstance(literal, Negation):
                        target, flip = literal.atom.predicate, -1
                    else:
                        continue
                    bucket = polarities.setdefault(target, set())
                    for sign in head_signs:
                        if sign * flip not in bucket:
                            bucket.add(sign * flip)
                            changed = True
        frozen = {pred: frozenset(signs) for pred, signs in polarities.items()}
        self._panic_polarities = frozen
        return frozen

    def _evaluate_stratum(
        self,
        db: Database,
        derived: dict[str, set[Fact]],
        stratum_preds: set[str],
        rules: Sequence[Rule],
    ) -> None:
        source = _FactSource(db, derived)
        if not self.seminaive:
            # Naive mode: keep re-running every rule until nothing is new.
            changed = True
            while changed:
                changed = False
                for rule in rules:
                    new_facts = _evaluate_rule(
                        rule, source, use_indexes=self.use_indexes
                    )
                    existing = derived.setdefault(rule.head.predicate, set())
                    fresh = new_facts - existing
                    if fresh:
                        existing.update(fresh)
                        changed = True
            return
        recursive_rules: list[Rule] = []
        # Round 0: full evaluation of every rule in the stratum.
        delta: dict[str, set[Fact]] = {}
        for rule in rules:
            new_facts = _evaluate_rule(rule, source, use_indexes=self.use_indexes)
            pred = rule.head.predicate
            existing = derived.setdefault(pred, set())
            fresh = new_facts - existing
            if fresh:
                existing.update(fresh)
                delta.setdefault(pred, set()).update(fresh)
            if any(
                isinstance(lit, Atom) and lit.predicate in stratum_preds
                for lit in rule.body
            ):
                recursive_rules.append(rule)
        # Semi-naive iteration for the recursive rules.
        while delta:
            new_delta: dict[str, set[Fact]] = {}
            for rule in recursive_rules:
                for literal in rule.body:
                    if not isinstance(literal, Atom):
                        continue
                    if literal.predicate not in stratum_preds:
                        continue
                    delta_facts = delta.get(literal.predicate)
                    if not delta_facts:
                        continue
                    new_facts = _evaluate_rule(
                        rule, source, literal, delta_facts, self.use_indexes
                    )
                    pred = rule.head.predicate
                    existing = derived.setdefault(pred, set())
                    fresh = new_facts - existing
                    if fresh:
                        existing.update(fresh)
                        new_delta.setdefault(pred, set()).update(fresh)
            delta = new_delta

    def evaluate_predicate(self, db: Database, predicate: str) -> frozenset[Fact]:
        """Facts derived for one predicate."""
        return self.evaluate(db).facts(predicate)

    def fires(self, db: Database) -> bool:
        """True when the program derives the 0-ary ``panic`` fact.

        In the paper's terms: the database *violates* the constraint
        exactly when this returns True.
        """
        return () in self.evaluate_predicate(db, PANIC_PREDICATE)


@dataclass
class MaterializationStats:
    """Counters describing how much work incremental maintenance did."""

    deltas_applied: int = 0
    strata_maintained: int = 0
    strata_skipped: int = 0
    facts_added: int = 0
    facts_removed: int = 0
    rederivation_checks: int = 0
    full_refreshes: int = 0
    reverts: int = 0


@dataclass
class MaterializationUndo:
    """The exact derived-fact changes one :meth:`Materialization.apply_delta`
    made, sufficient to restore the previous materialization without any
    rule evaluation (see :meth:`Materialization.revert`)."""

    added: dict[str, set[Fact]]
    removed: dict[str, set[Fact]]

    def is_noop(self) -> bool:
        return not self.added and not self.removed


class Materialization:
    """Derived facts of one program over one database, kept current under
    a stream of deltas instead of re-evaluated from scratch.

    Contract: the caller applies a delta to the underlying database first
    (``token = db.apply(delta)``) and then calls ``apply_delta`` with the
    *effective* changes (``token.as_delta()``, or any delta whose
    insertions are genuinely new facts and deletions genuinely removed
    ones).  Maintenance is stratum by stratum:

    * strata whose rules mention no changed predicate are skipped;
    * non-recursive strata run pure delta rules — each rule is evaluated
      once per changed body occurrence, restricted to the changed facts;
    * recursive strata run delete-and-rederive (DRed): overestimate
      deletions against the old state, rederive survivors with head-bound
      point queries, then propagate insertions semi-naively;
    * negated subgoals invert the roles — insertions into a negated
      predicate kill derivations, deletions enable them — which is sound
      because stratification guarantees the negated predicate's changes
      are final before this stratum runs.
    """

    def __init__(self, engine: Engine, db: Database) -> None:
        self.engine = engine
        self.db = db
        self.stats = MaterializationStats()
        self._derived: dict[str, set[Fact]] = engine._compute(db)
        self._idb = frozenset(engine.program.idb_predicates())

    # -- views ---------------------------------------------------------------
    def facts(self, predicate: str) -> frozenset[Fact]:
        return frozenset(self._derived.get(predicate, ()))

    def fires(self) -> bool:
        """True when the maintained program currently derives ``panic``."""
        return () in self._derived.get(PANIC_PREDICATE, ())

    def as_database(self) -> Database:
        """The derived IDB facts, shaped like :meth:`Engine.evaluate`."""
        result = Database()
        for predicate, facts in self._derived.items():
            for fact in facts:
                result.insert(predicate, fact)
        return result

    def refresh(self) -> None:
        """Throw away the maintained state and re-evaluate from scratch."""
        self._derived = self.engine._compute(self.db)
        self.stats.full_refreshes += 1

    def revert(self, undo: MaterializationUndo) -> None:
        """Exactly undo one :meth:`apply_delta` (the most recent one, with
        the database already restored): remove the facts it added and
        restore the facts it removed — no rule evaluation involved."""
        self.stats.reverts += 1
        for predicate, facts in undo.added.items():
            existing = self._derived.get(predicate)
            if existing:
                existing -= facts
        for predicate, facts in undo.removed.items():
            self._derived.setdefault(predicate, set()).update(facts)

    # -- maintenance ---------------------------------------------------------
    def apply_delta(self, delta: Delta) -> MaterializationUndo:
        """Bring the derived facts up to date after *delta* hit the EDB.

        Returns a :class:`MaterializationUndo` recording the net derived
        changes, so a caller rolling the database back (e.g. a rejected
        update) can :meth:`revert` in time proportional to those changes.
        """
        self.stats.deltas_applied += 1
        ins: dict[str, set[Fact]] = {
            pred: set(facts) for pred, facts in delta.insertions.items() if facts
        }
        dels: dict[str, set[Fact]] = {
            pred: set(facts) for pred, facts in delta.deletions.items() if facts
        }
        if not ins and not dels:
            return MaterializationUndo({}, {})
        engine = self.engine
        for stratum_preds, rules, recursive_rules in zip(
            engine.strata, engine._rules_by_stratum, engine._recursive_by_stratum
        ):
            if not rules:
                continue
            changed = set(ins) | set(dels)
            relevant = any(
                isinstance(lit, (Atom, Negation)) and lit.predicate in changed
                for rule in rules
                for lit in rule.body
            )
            if not relevant:
                self.stats.strata_skipped += 1
                continue
            self.stats.strata_maintained += 1
            self._maintain_stratum(stratum_preds, rules, recursive_rules, ins, dels)
        # After all strata ran, the IDB entries of ins/dels are exactly the
        # net derived-fact changes (register() cancels delete-then-readd).
        return MaterializationUndo(
            added={p: facts for p, facts in ins.items() if p in self._idb and facts},
            removed={p: facts for p, facts in dels.items() if p in self._idb and facts},
        )

    def _maintain_stratum(
        self,
        stratum_preds: set[str],
        rules: Sequence[Rule],
        recursive_rules: Sequence[Rule],
        ins: dict[str, set[Fact]],
        dels: dict[str, set[Fact]],
    ) -> None:
        derived = self._derived
        use_idx = self.engine.use_indexes
        old = _AdjustedSource(self.db, derived, ins, dels)

        # ---- Phase 1: overestimate deletions against the old state.
        del_cand: dict[str, set[Fact]] = {}

        def note_candidates(head_pred: str, heads: set[Fact]) -> set[Fact]:
            existing = derived.get(head_pred)
            if not existing:
                return set()
            fresh = (heads & existing) - del_cand.get(head_pred, set())
            if fresh:
                del_cand.setdefault(head_pred, set()).update(fresh)
            return fresh

        frontier: dict[str, set[Fact]] = {}
        for rule in rules:
            head_pred = rule.head.predicate
            for index, literal in enumerate(rule.body):
                if isinstance(literal, Atom):
                    removed = dels.get(literal.predicate)
                    if removed:
                        heads = _evaluate_rule(rule, old, literal, removed, use_idx)
                        fresh = note_candidates(head_pred, heads)
                        if fresh:
                            frontier.setdefault(head_pred, set()).update(fresh)
                elif isinstance(literal, Negation):
                    added = ins.get(literal.predicate)
                    if added:
                        flipped_rule, flipped_atom = _flip_negation(rule, index)
                        heads = _evaluate_rule(
                            flipped_rule, old, flipped_atom, added, use_idx
                        )
                        fresh = note_candidates(head_pred, heads)
                        if fresh:
                            frontier.setdefault(head_pred, set()).update(fresh)
        while frontier:
            next_frontier: dict[str, set[Fact]] = {}
            for rule in recursive_rules:
                head_pred = rule.head.predicate
                for literal in rule.body:
                    if isinstance(literal, Atom) and literal.predicate in stratum_preds:
                        pending = frontier.get(literal.predicate)
                        if pending:
                            heads = _evaluate_rule(rule, old, literal, pending, use_idx)
                            fresh = note_candidates(head_pred, heads)
                            if fresh:
                                next_frontier.setdefault(head_pred, set()).update(fresh)
            frontier = next_frontier

        # ---- Phase 2: delete the candidates, then rederive survivors
        # with head-bound point queries against the new state.
        removed_facts: dict[str, set[Fact]] = {}
        for pred, facts in del_cand.items():
            existing = derived.get(pred)
            if existing:
                existing -= facts
                removed_facts[pred] = set(facts)
        new_source = _FactSource(self.db, derived)
        rules_by_head: dict[str, list[Rule]] = {}
        for rule in rules:
            rules_by_head.setdefault(rule.head.predicate, []).append(rule)
        while True:
            changed = False
            for pred, facts in removed_facts.items():
                candidates = rules_by_head.get(pred, ())
                for fact in list(facts):
                    self.stats.rederivation_checks += 1
                    if any(
                        _derives_fact(rule, new_source, fact, use_idx)
                        for rule in candidates
                    ):
                        derived.setdefault(pred, set()).add(fact)
                        facts.discard(fact)
                        changed = True
            if not changed or not recursive_rules:
                break
        for pred, facts in removed_facts.items():
            if facts:
                dels.setdefault(pred, set()).update(facts)
                self.stats.facts_removed += len(facts)

        # ---- Phase 3: propagate insertions semi-naively over the new state.
        added_total: dict[str, set[Fact]] = {}

        def register(head_pred: str, heads: set[Fact]) -> set[Fact]:
            existing = derived.setdefault(head_pred, set())
            fresh = heads - existing
            if not fresh:
                return fresh
            existing.update(fresh)
            # A fact deleted above and re-added here (e.g. an alternative
            # derivation through a just-inserted fact) is a net no-op for
            # upper strata — cancel instead of reporting both ways.
            pending_del = dels.get(head_pred)
            if pending_del:
                overlap = fresh & pending_del
                if overlap:
                    pending_del -= overlap
                    self.stats.facts_removed -= len(overlap)
                    added_total.setdefault(head_pred, set()).update(fresh - overlap)
                    return fresh
            added_total.setdefault(head_pred, set()).update(fresh)
            return fresh

        frontier = {}
        for rule in rules:
            head_pred = rule.head.predicate
            for index, literal in enumerate(rule.body):
                if isinstance(literal, Atom):
                    added = ins.get(literal.predicate)
                    if added:
                        heads = _evaluate_rule(rule, new_source, literal, added, use_idx)
                        fresh = register(head_pred, heads)
                        if fresh:
                            frontier.setdefault(head_pred, set()).update(fresh)
                elif isinstance(literal, Negation):
                    removed = dels.get(literal.predicate)
                    if removed and literal.predicate not in stratum_preds:
                        flipped_rule, flipped_atom = _flip_negation(rule, index)
                        heads = _evaluate_rule(
                            flipped_rule, new_source, flipped_atom, removed, use_idx
                        )
                        fresh = register(head_pred, heads)
                        if fresh:
                            frontier.setdefault(head_pred, set()).update(fresh)
        while frontier:
            next_frontier = {}
            for rule in recursive_rules:
                head_pred = rule.head.predicate
                for literal in rule.body:
                    if isinstance(literal, Atom) and literal.predicate in stratum_preds:
                        pending = frontier.get(literal.predicate)
                        if pending:
                            heads = _evaluate_rule(
                                rule, new_source, literal, pending, use_idx
                            )
                            fresh = register(head_pred, heads)
                            if fresh:
                                next_frontier.setdefault(head_pred, set()).update(fresh)
            frontier = next_frontier
        for pred, facts in added_total.items():
            if facts:
                ins.setdefault(pred, set()).update(facts)
                self.stats.facts_added += len(facts)


def evaluate(program: Program, db: Database) -> Database:
    """One-shot evaluation; see :class:`Engine` for the reusable form."""
    return Engine(program).evaluate(db)


def evaluate_predicate(program: Program, db: Database, predicate: str) -> frozenset[Fact]:
    """One-shot evaluation of a single predicate."""
    return Engine(program).evaluate_predicate(db, predicate)


def fires(program: Program, db: Database) -> bool:
    """One-shot check whether a constraint program derives ``panic``."""
    return Engine(program).fires(db)
