"""Bottom-up, semi-naive evaluation of stratified datalog with builtins.

This is the execution substrate for everything in the paper that must
actually *run*: constraints (``panic`` queries), the rewritten constraints
of Section 4, and the recursive interval programs of Fig. 6.1.

Features:

* positive recursion via semi-naive (delta) iteration;
* stratified negation (checked by :mod:`repro.datalog.stratify`);
* arithmetic comparison subgoals evaluated as builtins over the dense
  total order of :mod:`repro.arith.order`;
* safety (range restriction) enforced up front, so negations and
  comparisons are always ground when reached.

The main entry points are :func:`evaluate`, :func:`evaluate_predicate`,
and :func:`fires` (does a constraint derive ``panic``).  For repeated
evaluation of one program against many databases, :class:`Engine` caches
the static analysis.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.arith.order import comparison_holds
from repro.datalog.atoms import Atom, BodyLiteral, Comparison, Negation
from repro.datalog.database import Database
from repro.datalog.rules import Program, Rule
from repro.datalog.safety import check_program_safety
from repro.datalog.stratify import stratify
from repro.datalog.substitution import Substitution, match_atom_against_fact
from repro.datalog.terms import Constant, Variable

__all__ = ["Engine", "evaluate", "evaluate_predicate", "fires", "PANIC_PREDICATE"]

PANIC_PREDICATE = "panic"

Fact = tuple


class _FactSource:
    """Union view over EDB facts and facts derived so far."""

    __slots__ = ("_edb", "_derived")

    def __init__(self, edb: Database, derived: Mapping[str, set[Fact]]) -> None:
        self._edb = edb
        self._derived = derived

    def facts(self, predicate: str) -> Iterable[Fact]:
        derived = self._derived.get(predicate)
        edb_facts = self._edb.facts(predicate)
        if derived:
            if edb_facts:
                return derived | edb_facts
            return derived
        return edb_facts

    def facts_with(self, predicate: str, column: int, value: object) -> Iterable[Fact]:
        """Facts whose *column* equals *value*, using the EDB hash index
        where available; derived facts are filtered by scan."""
        relation = self._edb.relation(predicate)
        if relation is not None:
            indexed: Iterable[Fact] = relation.lookup(column, value)
        else:
            indexed = ()
        derived = self._derived.get(predicate)
        if not derived:
            return indexed
        matching = {fact for fact in derived if fact[column] == value}
        if not matching:
            return indexed
        return set(indexed) | matching

    def contains(self, predicate: str, fact: Fact) -> bool:
        derived = self._derived.get(predicate)
        if derived is not None and fact in derived:
            return True
        return self._edb.contains(predicate, fact)


def _ground_value(term) -> object:
    if isinstance(term, Constant):
        return term.value
    raise AssertionError(f"expected ground term, found {term!r}")  # pragma: no cover


def _comparison_ground_holds(comparison: Comparison, subst: Substitution) -> bool:
    left = subst.apply_term(comparison.left)
    right = subst.apply_term(comparison.right)
    return comparison_holds(comparison.op, _ground_value(left), _ground_value(right))


def _order_body(rule: Rule) -> list[BodyLiteral]:
    """Choose an evaluation order: positive atoms in given order, with each
    comparison/negation placed as early as its variables allow.

    This keeps joins small by filtering eagerly while preserving safety
    (every comparison/negation is ground when reached).
    """
    bound: set[Variable] = set()
    pending = list(rule.body)
    ordered: list[BodyLiteral] = []
    while pending:
        placed = False
        for i, literal in enumerate(pending):
            if isinstance(literal, (Comparison, Negation)):
                if all(v in bound for v in literal.variables()):
                    ordered.append(pending.pop(i))
                    placed = True
                    break
        if placed:
            continue
        # No filter is ready: take the next positive atom.
        for i, literal in enumerate(pending):
            if isinstance(literal, Atom):
                ordered.append(pending.pop(i))
                bound.update(literal.variables())
                placed = True
                break
        if not placed:  # remaining literals reference unbound vars: unsafe
            ordered.extend(pending)
            break
    return ordered


def _evaluate_rule(
    rule: Rule,
    source: _FactSource,
    restrict_atom: Optional[Atom] = None,
    restrict_facts: Optional[set[Fact]] = None,
    use_indexes: bool = True,
) -> set[Fact]:
    """All head facts derivable from *rule* against *source*.

    When *restrict_atom* is given (semi-naive deltas), that particular
    subgoal occurrence draws its facts from *restrict_facts* instead of
    the full source.  ``use_indexes=False`` forces full scans (ablation).
    """
    ordered = _order_body(rule)
    results: set[Fact] = set()
    # Depth-first join over the ordered body.
    stack: list[tuple[int, Substitution]] = [(0, Substitution())]
    while stack:
        position, subst = stack.pop()
        if position == len(ordered):
            head = subst.apply_atom(rule.head)
            results.add(tuple(_ground_value(t) for t in head.args))
            continue
        literal = ordered[position]
        if isinstance(literal, Comparison):
            if _comparison_ground_holds(literal, subst):
                stack.append((position + 1, subst))
            continue
        if isinstance(literal, Negation):
            atom = subst.apply_atom(literal.atom)
            fact = tuple(_ground_value(t) for t in atom.args)
            if not source.contains(atom.predicate, fact):
                stack.append((position + 1, subst))
            continue
        assert isinstance(literal, Atom)
        if literal is restrict_atom and restrict_facts is not None:
            candidates: Iterable[Fact] = restrict_facts
        else:
            # Index-assisted retrieval: when some argument is already
            # ground (a constant, or a variable the join has bound), pull
            # only the matching bucket instead of scanning the relation.
            bound_column = -1
            bound_value: object = None
            for column, term in enumerate(literal.args):
                if isinstance(term, Constant):
                    bound_column, bound_value = column, term.value
                    break
                resolved = subst.apply_term(term)
                if isinstance(resolved, Constant):
                    bound_column, bound_value = column, resolved.value
                    break
            if bound_column >= 0 and use_indexes:
                candidates = source.facts_with(
                    literal.predicate, bound_column, bound_value
                )
            else:
                candidates = source.facts(literal.predicate)
        for fact in candidates:
            extended = match_atom_against_fact(literal, fact, subst)
            if extended is not None:
                stack.append((position + 1, extended))
    return results


class Engine:
    """A compiled program: safety-checked, stratified, ready to evaluate.

    ``seminaive=False`` switches to naive fixpoint iteration (every rule
    re-evaluated against the full fact set each round) — kept for the
    ablation benchmark; semantics are identical.
    """

    def __init__(
        self,
        program: Program,
        seminaive: bool = True,
        use_indexes: bool = True,
    ) -> None:
        check_program_safety(program)
        self.program = program
        self.seminaive = seminaive
        self.use_indexes = use_indexes
        self.strata: list[set[str]] = stratify(program)
        self._rules_by_stratum: list[list[Rule]] = [
            [rule for rule in program if rule.head.predicate in stratum]
            for stratum in self.strata
        ]

    def evaluate(self, db: Database) -> Database:
        """Return a database of all derived IDB facts (EDB not included)."""
        derived: dict[str, set[Fact]] = {}
        for stratum_preds, rules in zip(self.strata, self._rules_by_stratum):
            self._evaluate_stratum(db, derived, stratum_preds, rules)
        result = Database()
        for predicate, facts in derived.items():
            for fact in facts:
                result.insert(predicate, fact)
        return result

    def _evaluate_stratum(
        self,
        db: Database,
        derived: dict[str, set[Fact]],
        stratum_preds: set[str],
        rules: Sequence[Rule],
    ) -> None:
        source = _FactSource(db, derived)
        if not self.seminaive:
            # Naive mode: keep re-running every rule until nothing is new.
            changed = True
            while changed:
                changed = False
                for rule in rules:
                    new_facts = _evaluate_rule(
                        rule, source, use_indexes=self.use_indexes
                    )
                    existing = derived.setdefault(rule.head.predicate, set())
                    fresh = new_facts - existing
                    if fresh:
                        existing.update(fresh)
                        changed = True
            return
        recursive_rules: list[Rule] = []
        # Round 0: full evaluation of every rule in the stratum.
        delta: dict[str, set[Fact]] = {}
        for rule in rules:
            new_facts = _evaluate_rule(rule, source, use_indexes=self.use_indexes)
            pred = rule.head.predicate
            existing = derived.setdefault(pred, set())
            fresh = new_facts - existing
            if fresh:
                existing.update(fresh)
                delta.setdefault(pred, set()).update(fresh)
            if any(
                isinstance(lit, Atom) and lit.predicate in stratum_preds
                for lit in rule.body
            ):
                recursive_rules.append(rule)
        # Semi-naive iteration for the recursive rules.
        while delta:
            new_delta: dict[str, set[Fact]] = {}
            for rule in recursive_rules:
                for literal in rule.body:
                    if not isinstance(literal, Atom):
                        continue
                    if literal.predicate not in stratum_preds:
                        continue
                    delta_facts = delta.get(literal.predicate)
                    if not delta_facts:
                        continue
                    new_facts = _evaluate_rule(
                        rule, source, literal, delta_facts, self.use_indexes
                    )
                    pred = rule.head.predicate
                    existing = derived.setdefault(pred, set())
                    fresh = new_facts - existing
                    if fresh:
                        existing.update(fresh)
                        new_delta.setdefault(pred, set()).update(fresh)
            delta = new_delta

    def evaluate_predicate(self, db: Database, predicate: str) -> frozenset[Fact]:
        """Facts derived for one predicate."""
        return self.evaluate(db).facts(predicate)

    def fires(self, db: Database) -> bool:
        """True when the program derives the 0-ary ``panic`` fact.

        In the paper's terms: the database *violates* the constraint
        exactly when this returns True.
        """
        return () in self.evaluate_predicate(db, PANIC_PREDICATE)


def evaluate(program: Program, db: Database) -> Database:
    """One-shot evaluation; see :class:`Engine` for the reusable form."""
    return Engine(program).evaluate(db)


def evaluate_predicate(program: Program, db: Database, predicate: str) -> frozenset[Fact]:
    """One-shot evaluation of a single predicate."""
    return Engine(program).evaluate_predicate(db, predicate)


def fires(program: Program, db: Database) -> bool:
    """One-shot check whether a constraint program derives ``panic``."""
    return Engine(program).fires(db)
