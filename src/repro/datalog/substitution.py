"""Substitutions (variable bindings) and one-way unification.

Substitutions map :class:`~repro.datalog.terms.Variable` to terms.  The
datalog engine, the containment-mapping enumerator and the RED reduction
operator all build on this module.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from repro.datalog.atoms import Atom, BodyLiteral, Comparison, Negation
from repro.datalog.terms import Constant, Term, Variable

__all__ = ["Substitution", "unify_terms", "match_atom_against_fact"]


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Immutability makes it safe to share partial substitutions across the
    branches of a backtracking search; :meth:`extended` returns a new
    substitution rather than mutating.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[Variable, Term] | None = None) -> None:
        self._bindings: dict[Variable, Term] = dict(bindings or {})

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, key: Variable) -> Term:
        return self._bindings[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self._bindings.items(), key=lambda kv: kv[0].name))
        return f"{{{inner}}}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._bindings == other._bindings
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    # -- construction ------------------------------------------------------
    def extended(self, var: Variable, term: Term) -> Optional["Substitution"]:
        """Return this substitution extended with ``var -> term``.

        Returns ``None`` when *var* is already bound to a different term,
        which signals a unification conflict to backtracking callers.
        """
        existing = self._bindings.get(var)
        if existing is not None:
            return self if existing == term else None
        new = Substitution(self._bindings)
        new._bindings[var] = term
        return new

    def merged(self, other: "Substitution") -> Optional["Substitution"]:
        """Combine two substitutions, or ``None`` when they conflict."""
        result: Optional[Substitution] = self
        for var, term in other.items():
            result = result.extended(var, term)
            if result is None:
                return None
        return result

    # -- application -------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        """Apply the substitution to a single term."""
        if isinstance(term, Variable):
            return self._bindings.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of an atom."""
        return Atom(atom.predicate, tuple(self.apply_term(t) for t in atom.args))

    def apply_comparison(self, comparison: Comparison) -> Comparison:
        return Comparison(
            self.apply_term(comparison.left),
            comparison.op,
            self.apply_term(comparison.right),
        )

    def apply_literal(self, literal: BodyLiteral) -> BodyLiteral:
        """Apply the substitution to any body literal."""
        if isinstance(literal, Atom):
            return self.apply_atom(literal)
        if isinstance(literal, Negation):
            return Negation(self.apply_atom(literal.atom))
        return self.apply_comparison(literal)


def unify_terms(
    pattern: Iterable[Term],
    values: Iterable[Term],
    base: Substitution | None = None,
) -> Optional[Substitution]:
    """One-way unification of a tuple of pattern terms against ground-ish terms.

    Variables in *pattern* are bound to the corresponding term of *values*;
    constants in *pattern* must match exactly.  Variables on the *values*
    side are treated as opaque terms (this is matching, not full
    unification), which is exactly what RED(t, l, C) and fact matching
    need.

    Returns the extended substitution, or ``None`` on mismatch.
    """
    subst = base or Substitution()
    pattern = tuple(pattern)
    values = tuple(values)
    if len(pattern) != len(values):
        return None
    current: Optional[Substitution] = subst
    for pat, val in zip(pattern, values):
        if isinstance(pat, Constant):
            if pat != val:
                return None
            continue
        current = current.extended(pat, val)
        if current is None:
            return None
    return current


def unify_terms_bidirectional(
    left: Iterable[Term],
    right: Iterable[Term],
) -> Optional[Substitution]:
    """Full (two-way) unification of two flat term tuples.

    Unlike :func:`unify_terms`, variables on either side may be bound:
    unifying ``(toy,)`` with ``(D,)`` yields ``{D: toy}``.  With no
    function symbols the algorithm is a single pass with chasing.
    """
    left = tuple(left)
    right = tuple(right)
    if len(left) != len(right):
        return None
    bindings: dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for a, b in zip(left, right):
        a = resolve(a)
        b = resolve(b)
        if a == b:
            continue
        if isinstance(a, Variable):
            bindings[a] = b
        elif isinstance(b, Variable):
            bindings[b] = a
        else:
            return None  # two distinct constants

    # Flatten chains so application is a single lookup.
    return Substitution({var: resolve(term) for var, term in bindings.items()})


def match_atom_against_fact(
    atom: Atom,
    fact: tuple,
    base: Substitution | None = None,
) -> Optional[Substitution]:
    """Match an atom against a database fact (a tuple of raw Python values).

    The fact's values are wrapped into :class:`Constant` terms on the fly.
    """
    if len(atom.args) != len(fact):
        return None
    return unify_terms(atom.args, tuple(Constant(v) for v in fact), base)
