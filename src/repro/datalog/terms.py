"""Terms of the datalog/conjunctive-query language: variables and constants.

The paper follows the Prolog convention: names beginning with a lower-case
letter are constants (including predicate names), and names beginning with
a capital are variables.  We mirror that in the parser; at the AST level a
term is either a :class:`Variable` or a :class:`Constant`.

Constants wrap plain Python values (``int``, ``float``, ``Fraction`` or
``str``).  The total order over constants used by arithmetic comparisons is
defined in :mod:`repro.arith.order`; this module is purely structural.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "ConstantValue",
    "is_variable",
    "is_constant",
    "fresh_variables",
    "FreshVariableFactory",
]

#: Python types allowed as the payload of a :class:`Constant`.
ConstantValue = Union[int, float, Fraction, str]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, written with a leading capital (``X``, ``Emp``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant term wrapping a Python value.

    Two constants are equal when their payloads are equal under Python
    equality, which conflates ``1`` and ``1.0`` — intentionally, since the
    arithmetic domain treats them as the same point of the dense order.
    """

    value: ConstantValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            # Bare lowercase identifiers print without quotes, like the
            # paper's `toy`, `jones`; anything else is quoted.
            if self.value.isidentifier() and self.value[0].islower():
                return self.value
            return repr(self.value)
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable(term: object) -> bool:
    """Return True when *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return True when *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


class FreshVariableFactory:
    """Produce variables guaranteed not to collide with a set of names.

    The factory is seeded with every name to avoid; each call to
    :meth:`fresh` returns a new :class:`Variable` and remembers it so later
    calls stay distinct.

    >>> factory = FreshVariableFactory(["X", "Y"], prefix="V")
    >>> factory.fresh().name
    'V1'
    """

    def __init__(self, avoid: Iterable[str] = (), prefix: str = "V") -> None:
        self._taken = set(avoid)
        self._prefix = prefix
        self._counter = itertools.count(1)

    def fresh(self, hint: str | None = None) -> Variable:
        """Return a variable whose name has not been seen before.

        When *hint* is given the fresh name extends it (``X`` becomes
        ``X_2``), which keeps generated programs readable.
        """
        if hint is not None and hint not in self._taken:
            self._taken.add(hint)
            return Variable(hint)
        base = hint or self._prefix
        for i in self._counter:
            name = f"{base}_{i}" if hint else f"{base}{i}"
            if name not in self._taken:
                self._taken.add(name)
                return Variable(name)
        raise AssertionError("unreachable")  # pragma: no cover


def fresh_variables(count: int, avoid: Iterable[str] = (), prefix: str = "V") -> list[Variable]:
    """Return *count* pairwise-distinct variables avoiding the given names."""
    factory = FreshVariableFactory(avoid, prefix=prefix)
    return [factory.fresh() for _ in range(count)]


def variables_in(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the variables among *terms*, in order, with duplicates."""
    for term in terms:
        if isinstance(term, Variable):
            yield term
