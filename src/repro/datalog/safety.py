"""Safety (range restriction) checks for rules and programs.

A rule is *safe* when every variable occurring in its head, in a negated
subgoal, or in an arithmetic comparison also occurs in some positive
ordinary subgoal of the body.  This matches the paper's standing
assumption for CQCs ("Variables in the c_i's must also appear in l or one
of the r_i's") and guarantees the bottom-up engine only ever evaluates
ground negations and comparisons.
"""

from __future__ import annotations

from repro.errors import SafetyError
from repro.datalog.atoms import Atom, Comparison, Negation
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Variable

__all__ = ["check_rule_safety", "check_program_safety", "is_safe"]


def _positive_variables(rule: Rule) -> set[Variable]:
    bound: set[Variable] = set()
    for atom in rule.positive_atoms:
        bound.update(atom.variables())
    return bound


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` when *rule* is not range-restricted."""
    bound = _positive_variables(rule)

    unbound_head = [v for v in rule.head.variables() if v not in bound]
    if unbound_head:
        names = ", ".join(sorted({v.name for v in unbound_head}))
        raise SafetyError(f"head variable(s) {names} of rule `{rule}` are not bound "
                          f"by any positive subgoal")

    for literal in rule.body:
        if isinstance(literal, Negation):
            unbound = [v for v in literal.variables() if v not in bound]
            if unbound:
                names = ", ".join(sorted({v.name for v in unbound}))
                raise SafetyError(
                    f"variable(s) {names} occur only in negated subgoal "
                    f"`{literal}` of rule `{rule}`"
                )
        elif isinstance(literal, Comparison):
            unbound = [v for v in literal.variables() if v not in bound]
            if unbound:
                names = ", ".join(sorted({v.name for v in unbound}))
                raise SafetyError(
                    f"variable(s) {names} occur only in comparison "
                    f"`{literal}` of rule `{rule}`"
                )
        else:
            assert isinstance(literal, Atom)


def check_program_safety(program: Program) -> None:
    """Raise :class:`SafetyError` when any rule of *program* is unsafe."""
    for rule in program:
        check_rule_safety(rule)


def is_safe(rule: Rule) -> bool:
    """Boolean form of :func:`check_rule_safety`."""
    try:
        check_rule_safety(rule)
    except SafetyError:
        return False
    return True
