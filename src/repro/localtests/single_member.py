"""The single-member local test — the pre-paper baseline.

Section 5, after Example 5.3: "The need to consider containment of a CQC
in several CQC's is the reason that the results of Gupta and Ullman
[1992] or Gupta and Widom [1993] cannot be extended to allow arithmetic
comparisons, and still get a complete test."

Those earlier works certify an insertion when the new tuple's reduction
is contained in the reduction of **one** stored tuple.  Without
arithmetic that is all there is (Sagiv–Yannakakis); with comparisons it
is still *sound* but no longer *complete*: Example 5.3's insert (4,8) is
covered by {(3,6), (5,10)} jointly but by neither alone.

This module implements the baseline so the gap can be measured
(`benchmarks/bench_thm52_local_test.py` reports the certification-rate
difference on randomized workloads) and the paper's remark demonstrated
mechanically in the tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.containment.cqc import is_contained_cqc
from repro.datalog.rules import Rule
from repro.localtests.reduction import reduce_by_tuple

__all__ = ["single_member_local_test"]


def single_member_local_test(
    constraint: Rule,
    local_predicate: str,
    inserted: tuple,
    local_relation: Iterable[tuple],
) -> bool:
    """Certify the insertion iff some single stored tuple's reduction
    contains the new tuple's reduction.

    Sound always; complete only for arithmetic-free CQCs.  Use
    :func:`~repro.localtests.complete.complete_local_test_insertion`
    (Theorem 5.2) for the complete test.
    """
    inserted = tuple(inserted)
    target = reduce_by_tuple(constraint, local_predicate, inserted)
    if target is None:
        return True
    for values in local_relation:
        member = reduce_by_tuple(constraint, local_predicate, tuple(values))
        if member is None:
            continue
        if is_contained_cqc(target, member):
            return True
    return False
