"""The reduction operator RED(t, l, C) of Section 5.

"If t is a tuple that could be in the relation for predicate l, and C is
a CQC ..., then RED(t, l, C), the reduction of C by t in l, is obtained
by substituting the components of t for the corresponding variables in
the arguments of l, and then eliminating l."

The local subgoal may contain repeated variables or constants (the
arithmetic-free Theorem 5.3 exploits this); when the tuple does not unify
with the pattern the reduction *does not exist* — Example 5.4's
``RED(t, l, C1) does not exist, because b != c`` — and we return ``None``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NotApplicableError
from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.substitution import match_atom_against_fact
from repro.datalog.terms import Variable

__all__ = ["local_subgoal", "reduce_by_tuple", "check_cqc_form"]


def check_cqc_form(constraint: Rule, local_predicate: str) -> None:
    """Validate the Section 5 CQC form w.r.t. *local_predicate*.

    Requirements: a single-rule panic query without negation, in which the
    local predicate occurs in exactly one subgoal, and every comparison
    variable appears in some ordinary subgoal (safety).
    """
    if constraint.negations:
        raise NotApplicableError("CQCs have no negated subgoals")
    occurrences = [
        atom for atom in constraint.ordinary_subgoals
        if atom.predicate == local_predicate
    ]
    if len(occurrences) != 1:
        raise NotApplicableError(
            f"the local predicate {local_predicate!r} must occur in exactly one "
            f"subgoal (found {len(occurrences)}); the paper's CQC form has one "
            f"local subgoal l"
        )
    bound: set[Variable] = set()
    for atom in constraint.ordinary_subgoals:
        bound.update(atom.variables())
    for comparison in constraint.comparisons:
        for variable in comparison.variables():
            if variable not in bound:
                raise NotApplicableError(
                    f"comparison variable {variable} appears in no ordinary subgoal"
                )


def local_subgoal(constraint: Rule, local_predicate: str) -> Atom:
    """The unique local subgoal l of the CQC."""
    check_cqc_form(constraint, local_predicate)
    for atom in constraint.ordinary_subgoals:
        if atom.predicate == local_predicate:
            return atom
    raise AssertionError("unreachable")  # pragma: no cover


def reduce_by_tuple(
    constraint: Rule, local_predicate: str, values: tuple
) -> Optional[Rule]:
    """RED(values, l, C): substitute the tuple into l and eliminate l.

    Returns ``None`` when the reduction does not exist (the tuple fails to
    unify with l's argument pattern, e.g. a repeated variable against
    distinct components, or a constant mismatch).
    """
    subgoal = local_subgoal(constraint, local_predicate)
    if len(values) != subgoal.arity:
        raise NotApplicableError(
            f"tuple arity {len(values)} does not match local subgoal "
            f"{subgoal.predicate}/{subgoal.arity}"
        )
    subst = match_atom_against_fact(subgoal, values)
    if subst is None:
        return None
    remaining = tuple(
        subst.apply_literal(lit)
        for lit in constraint.body
        if lit is not subgoal
    )
    return Rule(constraint.head, remaining)
