"""Complete local tests (Sections 5 and 6): RED, Theorems 5.2, 5.3, 6.1."""

from repro.localtests.algebraic import AlgebraicLocalTest
from repro.localtests.complete import (
    complete_local_test_insertion,
    completeness_witness,
    reductions_over_relation,
)
from repro.localtests.icq import (
    Bound,
    ICQAnalysis,
    ICQVariant,
    analyze_icq,
    box_local_test,
    boxes_cover,
    forbidden_interval,
    forbidden_intervals,
    interval_local_test,
    is_icq,
)
from repro.localtests.interval_datalog import (
    IntervalDatalogTest,
    build_interval_program,
    figure_61_program,
)
from repro.localtests.reduction import check_cqc_form, local_subgoal, reduce_by_tuple
from repro.localtests.single_member import single_member_local_test

__all__ = [
    "AlgebraicLocalTest",
    "Bound",
    "ICQAnalysis",
    "ICQVariant",
    "IntervalDatalogTest",
    "analyze_icq",
    "box_local_test",
    "boxes_cover",
    "build_interval_program",
    "check_cqc_form",
    "complete_local_test_insertion",
    "completeness_witness",
    "figure_61_program",
    "forbidden_interval",
    "forbidden_intervals",
    "interval_local_test",
    "is_icq",
    "local_subgoal",
    "reduce_by_tuple",
    "reductions_over_relation",
    "single_member_local_test",
]
