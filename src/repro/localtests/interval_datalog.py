"""Theorem 6.1 / Fig. 6.1: complete local tests as recursive datalog.

    "For any ICQ we can construct a (recursive) datalog program with
    arithmetic to serve as a complete local test."

The generator below follows the proof sketch:

* **basis rules** initialize the forbidden intervals, one rule per order
  of the bounds ("since many different variables may be the lower or
  upper bound ... we may need a different rule for every such order");
* **recursive rules** group overlapping intervals into maximal ones
  (rule (2) of Fig. 6.1, extended with the open/closed tie rules);
* **coverage rules** define the 0-ary ``covered`` predicate from the
  inserted tuple's forbidden interval (rule (3) of Fig. 6.1, "modified
  for the possibility of open intervals and infinite intervals").

Endpoint encoding: the paper notes the general construction may need "as
many as eight different predicates corresponding to ``interval``" for the
open/closed/infinite combinations.  We generate an equivalent program
over a single 4-ary predicate ``interval(Lo, LoClosed, Hi, HiClosed)``
with 0/1 closedness flags and the sentinels ``neg_inf``/``pos_inf``; the
eight-predicate rendering is a partition of this relation by flag values.
The disjunctive side conditions expand into one rule per case, exactly as
the paper prescribes.

:func:`figure_61_program` reproduces the paper's literal three-rule
program for the all-closed special case (with the one adaptation needed
to make rule (3) a safe datalog rule: the inserted pair arrives as a
``query`` fact instead of unbound head variables).
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.errors import NotApplicableError
from repro.arith.order import NEG_INF, POS_INF
from repro.datalog.atoms import Atom, BodyLiteral, Comparison, ComparisonOp
from repro.datalog.database import Database
from repro.datalog.evaluation import Engine
from repro.datalog.parser import parse_program
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.localtests.icq import Bound, ICQAnalysis, ICQVariant, forbidden_interval

__all__ = ["IntervalDatalogTest", "build_interval_program", "figure_61_program"]

_INTERVAL = "interval"
_QUERY = "query"
_COVERED = "covered"


def _flag(closed: bool) -> Constant:
    return Constant(1 if closed else 0)


def _basis_rules(variant: ICQVariant, variable: Variable) -> list[Rule]:
    """One rule per choice of effective lower/upper bound and per
    resolution of the dominance disjunctions."""
    lower = variant.lower.get(variable, [])
    upper = variant.upper.get(variable, [])
    base_body: tuple[BodyLiteral, ...] = (variant.local_atom,) + tuple(variant.guards)

    def choices(bounds: list[Bound], effective_is_max: bool):
        """Yield (bound_term, closed_flag, guard_literals) alternatives."""
        if not bounds:
            sentinel = NEG_INF if effective_is_max else POS_INF
            yield Constant(sentinel), False, ()
            return
        for i, chosen in enumerate(bounds):
            guard_options: list[list[Comparison]] = []
            feasible = True
            for k, other in enumerate(bounds):
                if k == i:
                    continue
                options: list[Comparison] = []
                if effective_is_max:
                    options.append(Comparison(other.term, ComparisonOp.LT, chosen.term))
                else:
                    options.append(Comparison(other.term, ComparisonOp.GT, chosen.term))
                # A tie is allowed when it does not steal effectiveness:
                # openness dominates at equal values, so a closed chosen
                # bound tolerates only closed ties.
                if (not chosen.closed) or other.closed:
                    options.append(Comparison(other.term, ComparisonOp.EQ, chosen.term))
                options = [c for c in options if not c.is_trivial_false()]
                if not options:
                    feasible = False
                    break
                guard_options.append(options)
            if not feasible:
                continue
            for combo in itertools.product(*guard_options):
                guards = tuple(c for c in combo if not c.is_trivial_true())
                yield chosen.term, chosen.closed, guards

    rules: list[Rule] = []
    for lo_term, lo_closed, lo_guards in choices(lower, effective_is_max=True):
        for hi_term, hi_closed, hi_guards in choices(upper, effective_is_max=False):
            head = Atom(
                _INTERVAL,
                (lo_term, _flag(lo_closed), hi_term, _flag(hi_closed)),
            )
            rules.append(Rule(head, base_body + lo_guards + hi_guards))
    return rules


def _merge_rules() -> list[Rule]:
    """Rule (2) of Fig. 6.1 with the open/closed boundary cases."""
    lo, lc, w, wc = Variable("Lo"), Variable("LC"), Variable("W"), Variable("WC")
    z, zc, hi, hc = Variable("Z"), Variable("ZC"), Variable("Hi"), Variable("HC")
    head = Atom(_INTERVAL, (lo, lc, hi, hc))
    left = Atom(_INTERVAL, (lo, lc, w, wc))
    right = Atom(_INTERVAL, (z, zc, hi, hc))
    one = Constant(1)
    return [
        # Proper overlap: the right interval starts strictly before the
        # left one ends.
        Rule(head, (left, right, Comparison(z, ComparisonOp.LT, w))),
        # Touching at a point covered by the left interval's closed end...
        Rule(head, (left, right, Comparison(z, ComparisonOp.EQ, w),
                    Comparison(wc, ComparisonOp.EQ, one))),
        # ...or by the right interval's closed start.
        Rule(head, (left, right, Comparison(z, ComparisonOp.EQ, w),
                    Comparison(zc, ComparisonOp.EQ, one))),
    ]


def _coverage_rules() -> list[Rule]:
    """Rule (3) of Fig. 6.1, expanded for open/closed/infinite endpoints:
    ``covered`` holds when a single maximal interval contains the query
    interval (maximal intervals are separated by uncovered points, so one
    interval must do the whole job)."""
    a, ac, b, bc = Variable("A"), Variable("AC"), Variable("B"), Variable("BC")
    lo, lc, hi, hc = Variable("Lo"), Variable("LC"), Variable("Hi"), Variable("HC")
    query = Atom(_QUERY, (a, ac, b, bc))
    interval = Atom(_INTERVAL, (lo, lc, hi, hc))
    one, zero = Constant(1), Constant(0)
    lo_options: list[tuple[Comparison, ...]] = [
        (Comparison(lo, ComparisonOp.LT, a),),
        (Comparison(lo, ComparisonOp.EQ, a), Comparison(lc, ComparisonOp.EQ, one)),
        (Comparison(lo, ComparisonOp.EQ, a), Comparison(ac, ComparisonOp.EQ, zero)),
    ]
    hi_options: list[tuple[Comparison, ...]] = [
        (Comparison(b, ComparisonOp.LT, hi),),
        (Comparison(b, ComparisonOp.EQ, hi), Comparison(hc, ComparisonOp.EQ, one)),
        (Comparison(b, ComparisonOp.EQ, hi), Comparison(bc, ComparisonOp.EQ, zero)),
    ]
    head = Atom(_COVERED)
    return [
        Rule(head, (query, interval) + lo_opt + hi_opt)
        for lo_opt in lo_options
        for hi_opt in hi_options
    ]


def build_interval_program(analysis: ICQAnalysis) -> Program:
    """The Theorem 6.1 datalog program for a single-constrained-variable
    ICQ: basis rules from every disequality-split variant feed one shared
    ``interval`` predicate ("creating a new IDB predicate that represents
    the union"), followed by the merge and coverage rules."""
    variable = analysis.single_variable
    if variable is None:
        raise NotApplicableError(
            "the Fig. 6.1 construction targets ICQs with one constrained "
            "remote variable; multi-variable ICQs use box_local_test or "
            "the Theorem 5.2 engine"
        )
    rules: list[Rule] = []
    for variant in analysis.variants:
        rules.extend(_basis_rules(variant, variable))
    rules.extend(_merge_rules())
    rules.extend(_coverage_rules())
    return Program(tuple(rules))


class IntervalDatalogTest:
    """A compiled Fig. 6.1-style complete local test.

    The generated program is built once per constraint (data-independent)
    and evaluated per insertion against the local relation plus a
    ``query`` fact carrying the inserted tuple's forbidden interval.
    """

    def __init__(self, analysis: ICQAnalysis) -> None:
        self.analysis = analysis
        self.variable = analysis.single_variable
        if self.variable is None:
            raise NotApplicableError(
                "IntervalDatalogTest requires a single constrained remote variable"
            )
        self.program = build_interval_program(analysis)
        self._engine = Engine(self.program)

    def passes(self, inserted: tuple, local_relation: Iterable[tuple]) -> bool:
        """The complete local test, computed by running the datalog
        program: True == the insertion cannot newly violate the ICQ."""
        inserted = tuple(inserted)
        relation = [tuple(v) for v in local_relation]
        assert self.variable is not None
        for variant in self.analysis.variants:
            query = forbidden_interval(variant, self.variable, inserted)
            if query is None:
                continue  # variant inactive or empty: nothing new forbidden
            db = Database({self.analysis.local_predicate: relation})
            db.insert(
                _QUERY,
                (query.lo, 1 if query.lo_closed else 0,
                 query.hi, 1 if query.hi_closed else 0),
            )
            derived = self._engine.evaluate_predicate(db, _COVERED)
            if () not in derived:
                return False
        return True


def figure_61_program() -> Program:
    """The verbatim program of Fig. 6.1 (all-closed intervals), with the
    inserted pair supplied as a ``query(A, B)`` fact so that rule (3) is a
    safe datalog rule::

        interval(X,Y) :- l(X,Y)
        interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W
        ok :- query(A,B) & interval(X,Y) & X <= A & B <= Y
    """
    return parse_program(
        """
        interval(X,Y) :- l(X,Y)
        interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W
        ok :- query(A,B) & interval(X,Y) & X <= A & B <= Y
        """
    )
