"""Independently constrained queries (ICQs) and forbidden regions.

Section 6: "Call a variable in a CQC *remote* if it does not appear in a
local subgoal.  A CQC C is independently constrained (an ICQ) if every
comparison, except an equality comparison, involves at most one remote
variable."

The preprocessing of Theorem 6.1's proof is implemented here:

* equalities are removed by substitution ("We can remove ='s by equating
  variables and/or constants");
* ``X <> Y`` splits the ICQ in two, one with ``<`` and one with ``>``
  ("splitting the ICQ into two ICQ's");
* for each remote variable, the comparisons define a *forbidden interval*
  parameterized by the local tuple — open/closed/infinite at either end.

On top of the analysis, two fast complete local tests:

* :func:`interval_local_test` — the single-constrained-variable case of
  Example 6.1, via the :class:`~repro.arith.intervals.IntervalSet`
  algebra (the Fig. 6.1 datalog program computes the same thing — see
  :mod:`repro.localtests.interval_datalog` — and the tests cross-check);
* :func:`box_local_test` — the multi-variable generalization when the
  remote subgoal carries independent variables: coverage of a box by a
  union of boxes, decided exactly by recursive sweep decomposition.

ICQs outside these shapes still have the Theorem 5.2 test available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import NotApplicableError
from repro.arith.intervals import Interval, IntervalSet
from repro.arith.order import NEG_INF, POS_INF, compare_values, comparison_holds
from repro.datalog.atoms import Atom, Comparison, ComparisonOp
from repro.datalog.rules import Rule
from repro.datalog.substitution import Substitution
from repro.datalog.terms import Constant, Term, Variable
from repro.localtests.reduction import check_cqc_form, local_subgoal

__all__ = [
    "Bound",
    "ICQVariant",
    "ICQAnalysis",
    "analyze_icq",
    "is_icq",
    "forbidden_interval",
    "forbidden_intervals",
    "interval_local_test",
    "boxes_cover",
    "box_local_test",
]


@dataclass(frozen=True, slots=True)
class Bound:
    """One bound on a remote variable: a local term with closedness.

    ``term`` is a local variable of l or a constant; ``closed`` is True
    for ``<=``-style bounds and False for strict ones.
    """

    term: Term
    closed: bool

    def value_at(self, assignment: dict[Variable, object]) -> object:
        if isinstance(self.term, Constant):
            return self.term.value
        return assignment[self.term]


@dataclass
class ICQVariant:
    """One disequality-split variant of an ICQ, fully analyzed."""

    rule: Rule
    local_atom: Atom
    #: remote variables with their bound lists (unconstrained ones absent)
    lower: dict[Variable, list[Bound]] = field(default_factory=dict)
    upper: dict[Variable, list[Bound]] = field(default_factory=dict)
    #: comparisons among local variables/constants (guards on the tuple)
    guards: list[Comparison] = field(default_factory=list)

    @property
    def constrained_variables(self) -> list[Variable]:
        names = sorted(set(self.lower) | set(self.upper), key=lambda v: v.name)
        return names


@dataclass
class ICQAnalysis:
    """The full analysis: the variants of an ICQ plus shared structure."""

    constraint: Rule
    local_predicate: str
    local_atom: Atom
    variants: list[ICQVariant]
    remote_variables: set[Variable]

    @property
    def single_variable(self) -> Optional[Variable]:
        """The unique constrained remote variable, when there is one
        across all variants (the Example 6.1 / Fig. 6.1 shape)."""
        constrained: set[Variable] = set()
        for variant in self.variants:
            constrained.update(variant.constrained_variables)
        if len(constrained) == 1:
            return next(iter(constrained))
        return None


def _local_tuple_assignment(atom: Atom, values: tuple) -> Optional[dict[Variable, object]]:
    """Bind l's variables to the tuple's components (None on pattern
    mismatch: repeated variable or constant conflicts)."""
    assignment: dict[Variable, object] = {}
    for term, value in zip(atom.args, values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            if term in assignment and assignment[term] != value:
                return None
            assignment[term] = value
    return assignment


def _split_disequalities(rule: Rule, remote: set[Variable]) -> list[Rule]:
    """Replace every ``<>`` involving a remote variable by its ``<``/``>``
    split; disequalities among locals stay as guards."""
    for index, literal in enumerate(rule.body):
        if not isinstance(literal, Comparison):
            continue
        if literal.op is not ComparisonOp.NE:
            continue
        touches_remote = any(v in remote for v in literal.variables())
        if not touches_remote:
            continue
        less = Comparison(literal.left, ComparisonOp.LT, literal.right)
        greater = Comparison(literal.left, ComparisonOp.GT, literal.right)
        body = list(rule.body)
        results: list[Rule] = []
        for replacement in (less, greater):
            body[index] = replacement
            results.extend(_split_disequalities(Rule(rule.head, tuple(body)), remote))
        return results
    return [rule]


def _eliminate_remote_equalities(rule: Rule, remote: set[Variable]) -> Rule:
    """Substitute away ``=`` comparisons that touch a remote variable."""
    changed = True
    current = rule
    while changed:
        changed = False
        for literal in current.body:
            if not isinstance(literal, Comparison) or literal.op is not ComparisonOp.EQ:
                continue
            left, right = literal.left, literal.right
            target: Optional[Variable] = None
            replacement: Optional[Term] = None
            if isinstance(left, Variable) and left in remote:
                target, replacement = left, right
            elif isinstance(right, Variable) and right in remote:
                target, replacement = right, left
            if target is None or replacement == target:
                continue
            body = tuple(lit for lit in current.body if lit is not literal)
            subst = Substitution({target: replacement})
            current = Rule(current.head, tuple(subst.apply_literal(l) for l in body))
            remote.discard(target)
            changed = True
            break
    return current


def analyze_icq(constraint: Rule, local_predicate: str) -> ICQAnalysis:
    """Analyze *constraint* as an ICQ w.r.t. *local_predicate*.

    Raises :class:`~repro.errors.NotApplicableError` when some
    non-equality comparison involves two remote variables (not an ICQ).
    """
    check_cqc_form(constraint, local_predicate)
    atom = local_subgoal(constraint, local_predicate)
    local_vars = set(atom.variables())
    remote = {
        v for v in constraint.variables() if v not in local_vars
    }

    base = _eliminate_remote_equalities(constraint, set(remote))
    # Recompute remoteness after substitution.
    atom = local_subgoal(base, local_predicate)
    local_vars = set(atom.variables())
    remote = {v for v in base.variables() if v not in local_vars}

    for comparison in base.comparisons:
        if comparison.op is ComparisonOp.EQ:
            continue
        touched = [v for v in comparison.variables() if v in remote]
        if len(set(touched)) > 1:
            raise NotApplicableError(
                f"comparison `{comparison}` involves two remote variables: "
                f"the constraint is not independently constrained"
            )

    variants: list[ICQVariant] = []
    for split in _split_disequalities(base, remote):
        variant = ICQVariant(rule=split, local_atom=atom)
        for comparison in split.comparisons:
            sides = (comparison.left, comparison.right)
            remote_sides = [
                s for s in sides if isinstance(s, Variable) and s in remote
            ]
            if not remote_sides:
                variant.guards.append(comparison)
                continue
            # Orient as `bound op Z` with Z remote.
            if isinstance(comparison.right, Variable) and comparison.right in remote:
                z = comparison.right
                bound_term = comparison.left
                op = comparison.op
            else:
                z = comparison.left  # type: ignore[assignment]
                bound_term = comparison.right
                op = comparison.op.flipped
            assert isinstance(z, Variable)
            if op is ComparisonOp.LE:
                variant.lower.setdefault(z, []).append(Bound(bound_term, True))
            elif op is ComparisonOp.LT:
                variant.lower.setdefault(z, []).append(Bound(bound_term, False))
            elif op is ComparisonOp.GE:
                variant.upper.setdefault(z, []).append(Bound(bound_term, True))
            elif op is ComparisonOp.GT:
                variant.upper.setdefault(z, []).append(Bound(bound_term, False))
            elif op is ComparisonOp.EQ:
                # Equality between two remote variables (both sides remote)
                # would have been substituted away; equality remote=local
                # likewise.  Reaching here means l shares the variable.
                variant.guards.append(comparison)
            else:  # pragma: no cover - NE split already removed these
                raise AssertionError("unsplit disequality")
        variants.append(variant)

    return ICQAnalysis(
        constraint=constraint,
        local_predicate=local_predicate,
        local_atom=atom,
        variants=variants,
        remote_variables=remote,
    )


def is_icq(constraint: Rule, local_predicate: str) -> bool:
    """True when *constraint* is independently constrained."""
    try:
        analyze_icq(constraint, local_predicate)
    except NotApplicableError:
        return False
    return True


def _guards_hold(guards: Sequence[Comparison], assignment: dict[Variable, object]) -> bool:
    for guard in guards:
        left = (
            guard.left.value if isinstance(guard.left, Constant)
            else assignment[guard.left]
        )
        right = (
            guard.right.value if isinstance(guard.right, Constant)
            else assignment[guard.right]
        )
        if not comparison_holds(guard.op, left, right):
            return False
    return True


def forbidden_interval(
    variant: ICQVariant, variable: Variable, values: tuple
) -> Optional[Interval]:
    """The forbidden interval of *variable* induced by one local tuple
    under one variant, or ``None`` when the tuple does not activate the
    variant (pattern mismatch or failed guard).

    "Define the maximum of the lower bounds on Z to be the low end of the
    interval (-inf if none) and the minimum of the upper bounds to be the
    high end (+inf if none)."  Ties resolve toward openness, since the
    forbidden region is the *intersection* of the half-lines.
    """
    assignment = _local_tuple_assignment(variant.local_atom, values)
    if assignment is None:
        return None
    if not _guards_hold(variant.guards, assignment):
        return None

    lo: object = NEG_INF
    lo_closed = False
    for bound in variant.lower.get(variable, ()):
        value = bound.value_at(assignment)
        sign = compare_values(value, lo)
        if sign > 0 or lo is NEG_INF:
            lo, lo_closed = value, bound.closed
        elif sign == 0 and not bound.closed:
            lo_closed = False
    hi: object = POS_INF
    hi_closed = False
    for bound in variant.upper.get(variable, ()):
        value = bound.value_at(assignment)
        sign = compare_values(value, hi)
        if sign < 0 or hi is POS_INF:
            hi, hi_closed = value, bound.closed
        elif sign == 0 and not bound.closed:
            hi_closed = False
    interval = Interval(lo, lo_closed, hi, hi_closed)
    if interval.is_empty():
        return None
    return interval


def forbidden_intervals(
    analysis: ICQAnalysis, variable: Variable, relation: Iterable[tuple]
) -> IntervalSet:
    """The union of forbidden intervals over all local tuples and all
    variants — "the longest possible intervals constructed from the given
    intervals" that Fig. 6.1's recursion computes."""
    intervals: list[Interval] = []
    for values in relation:
        values = tuple(values)
        for variant in analysis.variants:
            interval = forbidden_interval(variant, variable, values)
            if interval is not None:
                intervals.append(interval)
    return IntervalSet(intervals)


def interval_local_test(
    analysis: ICQAnalysis, inserted: tuple, relation: Iterable[tuple]
) -> bool:
    """Example 6.1's complete local test, for the single-constrained-
    variable shape: the inserted tuple's forbidden interval (per variant)
    must be covered by the union of all existing forbidden intervals.
    """
    variable = analysis.single_variable
    if variable is None:
        raise NotApplicableError(
            "the interval test applies when exactly one remote variable is "
            "constrained; use box_local_test or the Theorem 5.2 engine"
        )
    inserted = tuple(inserted)
    relation = [tuple(v) for v in relation]
    covered = forbidden_intervals(analysis, variable, relation)
    for variant in analysis.variants:
        query = forbidden_interval(variant, variable, inserted)
        if query is None:
            continue  # this variant contributes no new forbidden points
        if not covered.covers(query):
            return False
    return True


# -- multi-dimensional boxes ----------------------------------------------------

def boxes_cover(query: Sequence[Interval], boxes: Sequence[Sequence[Interval]]) -> bool:
    """Exact coverage of a k-dimensional box by a union of k-dimensional
    boxes, by sweep decomposition on the first dimension.

    Elementary pieces (breakpoint points and the open gaps between them)
    contain no box boundary in their interior, so the active box set is
    constant on each; recursion on the remaining dimensions finishes the
    job.  Exponential in k in the worst case, exact always.
    """
    query = list(query)
    if any(interval.is_empty() for interval in query):
        return True
    if not query:
        return bool(boxes)
    dim = query[0]
    candidates = [
        box for box in boxes
        if not box[0].intersect(dim).is_empty() or box[0].contains_interval(dim)
    ]
    # Breakpoints: finite endpoint values of dim and of candidate boxes,
    # restricted to dim's span.
    values = set()
    for interval in [dim] + [box[0] for box in candidates]:
        for endpoint in (interval.lo, interval.hi):
            if endpoint is NEG_INF or endpoint is POS_INF:
                continue
            lo_ok = compare_values(endpoint, dim.lo) >= 0 or dim.lo is NEG_INF
            hi_ok = compare_values(endpoint, dim.hi) <= 0 or dim.hi is POS_INF
            if lo_ok and hi_ok:
                values.add(endpoint)
    ordered = sorted(values, key=lambda v: _sort_key(v))

    pieces: list[Interval] = []
    for value in ordered:
        point = Interval.point(value)
        if dim.contains_interval(point):
            pieces.append(point)
    for a, b in zip(ordered, ordered[1:]):
        pieces.append(Interval.open(a, b))
    if dim.lo is NEG_INF:
        first = ordered[0] if ordered else POS_INF
        if first is POS_INF:
            pieces.append(dim)
        else:
            pieces.append(Interval(NEG_INF, False, first, False))
    elif ordered:
        # dim.lo is finite and is in `values`, so no left edge piece needed.
        pass
    if dim.hi is POS_INF and ordered:
        pieces.append(Interval(ordered[-1], False, POS_INF, False))
    if not ordered and dim.lo is not NEG_INF:
        pieces.append(dim)

    for piece in pieces:
        if piece.is_empty():
            continue
        active = [
            box[1:] for box in candidates if box[0].contains_interval(piece)
        ]
        if not active:
            return False
        if len(query) > 1 and not boxes_cover(query[1:], active):
            return False
    return True


def _sort_key(value: object):
    from repro.arith.order import sort_key

    return sort_key(value)


def box_local_test(
    analysis: ICQAnalysis, inserted: tuple, relation: Iterable[tuple]
) -> bool:
    """The multi-variable generalization of the interval test: the
    inserted tuple's forbidden *box* (one interval per constrained remote
    variable) must be covered by the union of existing boxes.

    Valid when the constrained remote variables are independent — the ICQ
    property guarantees per-variable comparisons, so each local tuple's
    forbidden region is a box and Theorem 5.2's containment specializes
    to box coverage.
    """
    dims: list[Variable] = sorted(
        {
            v
            for variant in analysis.variants
            for v in variant.constrained_variables
        },
        key=lambda v: v.name,
    )
    if not dims:
        return True
    inserted = tuple(inserted)
    relation = [tuple(v) for v in relation]

    def box_for(variant: ICQVariant, values: tuple) -> Optional[list[Interval]]:
        box: list[Interval] = []
        assignment = _local_tuple_assignment(variant.local_atom, values)
        if assignment is None or not _guards_hold(variant.guards, assignment):
            return None
        for variable in dims:
            interval = forbidden_interval(variant, variable, values)
            if interval is None:
                # Unconstrained-for-this-variant dimension: whole line —
                # but forbidden_interval returned None only on pattern or
                # guard failure (checked above) or empty interval.
                return None
            box.append(interval)
        return box

    existing: list[list[Interval]] = []
    for values in relation:
        for variant in analysis.variants:
            box = box_for(variant, values)
            if box is not None:
                existing.append(box)
    for variant in analysis.variants:
        query = box_for(variant, inserted)
        if query is None:
            continue
        if not boxes_cover(query, existing):
            return False
    return True
