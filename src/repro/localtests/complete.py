"""Theorem 5.2: the complete local test for CQC constraints.

    Let C be a CQC and let t be a tuple inserted into the local relation L
    for predicate l.  Assume C holds before the update.  Then the complete
    local test for guaranteeing that C holds after the update is whether

        RED(t, l, C)  subseteq  UNION over s in L of RED(s, l, C).

The left-hand reduction ranges over *remote* predicates only, so the
containment (decided with the Theorem 5.1 union test) consults nothing but
the constraint, the inserted tuple, and the local relation.

Properties delivered (and property-tested):

* **correct** — a YES answer guarantees the constraint still holds for
  every remote state consistent with "C held before";
* **complete** — on a NO answer, :func:`completeness_witness` constructs
  an explicit remote state, consistent with the constraint having held,
  in which the insertion violates the constraint ("whenever the test says
  'I don't know', there is some state of the information not accessed by
  the test for which the constraint ceases to hold").

The extension mentioned after the theorem — several constraints assumed
to hold before the update — is the ``assumed`` parameter: their
reductions by all tuples of L join the union on the right.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.arith.implication import refuting_model
from repro.containment.cqc import is_contained_in_union_cqc
from repro.containment.mappings import containment_mappings
from repro.containment.normalize import normalize_cqc
from repro.datalog.atoms import Comparison
from repro.datalog.database import Database
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.localtests.reduction import reduce_by_tuple

__all__ = [
    "complete_local_test_insertion",
    "completeness_witness",
    "reductions_over_relation",
]


def reductions_over_relation(
    constraint: Rule, local_predicate: str, relation: Iterable[tuple]
) -> list[Rule]:
    """RED(s, l, C) for every tuple s of the local relation (skipping
    tuples whose reduction does not exist)."""
    out: list[Rule] = []
    for values in relation:
        reduced = reduce_by_tuple(constraint, local_predicate, tuple(values))
        if reduced is not None:
            out.append(reduced)
    return out


def complete_local_test_insertion(
    constraint: Rule,
    local_predicate: str,
    inserted: tuple,
    local_relation: Iterable[tuple],
    assumed: Sequence[Rule] = (),
) -> bool:
    """Theorem 5.2's test.  True == "yes, C still holds"; False == "I
    don't know" (some remote state could now violate C).

    *assumed* lists additional CQC constraints over the same local
    predicate known to hold before the update; their reductions join the
    right-hand union.
    """
    inserted = tuple(inserted)
    target = reduce_by_tuple(constraint, local_predicate, inserted)
    if target is None:
        # The inserted tuple cannot instantiate l at all: the insertion is
        # incapable of creating a violation (Example 5.4's "the complete
        # local test is 'true'").
        return True
    relation = [tuple(v) for v in local_relation]
    union: list[Rule] = reductions_over_relation(constraint, local_predicate, relation)
    for other in assumed:
        union.extend(reductions_over_relation(other, local_predicate, relation))
    return is_contained_in_union_cqc(target, union)


def completeness_witness(
    constraint: Rule,
    local_predicate: str,
    inserted: tuple,
    local_relation: Iterable[tuple],
    assumed: Sequence[Rule] = (),
) -> Optional[Database]:
    """When the local test is inconclusive, build the remote state it is
    worried about: a database for the remote predicates such that

    * the constraint (and each assumed constraint) held before the
      insertion, and
    * the constraint is violated once *inserted* joins the local relation.

    Returns ``None`` when the test passes (no such state exists — that is
    exactly what completeness means).
    """
    inserted = tuple(inserted)
    target = reduce_by_tuple(constraint, local_predicate, inserted)
    if target is None:
        return None
    relation = [tuple(v) for v in local_relation]
    union: list[Rule] = reductions_over_relation(constraint, local_predicate, relation)
    for other in assumed:
        union.extend(reductions_over_relation(other, local_predicate, relation))

    # Mirror the Theorem 5.1 refutation: normalize, enumerate mappings,
    # and ask for a model of A(target) that falsifies every disjunct.
    normalized_target = normalize_cqc(target)
    disjuncts: list[list[Comparison]] = []
    for member in union:
        normalized_member = normalize_cqc(member)
        for mapping in containment_mappings(normalized_member, normalized_target):
            disjuncts.append(
                [mapping.apply_comparison(c) for c in normalized_member.comparisons]
            )
    model = refuting_model(list(normalized_target.comparisons), disjuncts)
    if model is None:
        return None

    db = Database()
    for atom in normalized_target.ordinary_subgoals:
        fact = []
        for term in atom.args:
            if isinstance(term, Constant):
                fact.append(term.value)
            else:
                assert isinstance(term, Variable)
                # A variable in no comparison is unconstrained: any value
                # completes the witness.
                fact.append(model.get(term, 0))
        db.insert(atom.predicate, tuple(fact))
    return db
