"""Theorem 5.3: relational-algebra complete local tests, arithmetic-free.

    "In time at most exponential in the size of an arithmetic-free CQC it
    is possible to construct an expression of relational algebra whose
    nonemptiness is the complete local test for preservation of the CQC
    after an insertion to the local relation."

Construction (following the proof sketch and Example 5.4): let tau be a
tuple of fresh variables for the local relation L.  RED(tau, l, C) is the
reduction by a *generic* tuple; the pattern of l (repeated variables,
constants) becomes *pattern conditions* on tau.  Every containment
mapping from RED(tau, l, C) to RED(t, l, C) — enumerated structurally as
a *skeleton*: an assignment of each remote subgoal to a same-predicate
remote subgoal — yields equality constraints on tau's components, which
"can easily be translated into an algebraic expression on L".

Because the CQC is arithmetic-free, containment in a union reduces to
containment in one member (Sagiv–Yannakakis), so the union over skeletons
of selections over L is the complete test.  The skeleton enumeration
happens once, at construction time — exponential only in the size of the
CQC and **independent of the data**, which the T5.3 benchmark verifies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import NotApplicableError
from repro.datalog.atoms import Atom, ComparisonOp
from repro.datalog.database import Database
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.localtests.reduction import check_cqc_form, local_subgoal
from repro.relalg.evaluate import evaluate_expression
from repro.relalg.expressions import (
    Col,
    Condition,
    Expression,
    Lit,
    RelationRef,
    Select,
    Union,
)

__all__ = ["AlgebraicLocalTest"]


# A symbolic term of the template: either a component index of the local
# tuple, a remote variable, or a constant value.
@dataclass(frozen=True, slots=True)
class _Component:
    index: int


@dataclass(frozen=True, slots=True)
class _TemplateAtom:
    predicate: str
    args: tuple  # of _Component | Variable | object-constant


class AlgebraicLocalTest:
    """A compiled Theorem 5.3 test for one arithmetic-free CQC.

    Usage::

        test = AlgebraicLocalTest(rule, "l")
        test.passes(t, local_tuples)      # the complete local test
        test.expression_for(t)            # the RA expression over L
    """

    def __init__(self, constraint: Rule, local_predicate: str) -> None:
        if constraint.comparisons:
            raise NotApplicableError(
                "Theorem 5.3 requires an arithmetic-free CQC; use the "
                "Theorem 5.2 engine or the ICQ machinery for comparisons"
            )
        check_cqc_form(constraint, local_predicate)
        self.constraint = constraint
        self.local_predicate = local_predicate
        subgoal = local_subgoal(constraint, local_predicate)
        self.arity = subgoal.arity

        # Pattern of l: map each of l's variables to its first component
        # index; repeated variables and constants become conditions that
        # any tuple (inserted or stored) must satisfy to have a reduction.
        self._var_component: dict[Variable, int] = {}
        self.pattern_conditions: list[tuple[int, object]] = []  # (col, col|value)
        self._pattern_eq_cols: list[tuple[int, int]] = []
        self._pattern_const_cols: list[tuple[int, object]] = []
        for position, term in enumerate(subgoal.args):
            if isinstance(term, Constant):
                self._pattern_const_cols.append((position, term.value))
            elif term in self._var_component:
                self._pattern_eq_cols.append((self._var_component[term], position))
            else:
                self._var_component[term] = position

        # Remote subgoals with l's variables replaced by components.
        self._template: list[_TemplateAtom] = []
        for atom in constraint.ordinary_subgoals:
            if atom is subgoal:
                continue
            args = []
            for term in atom.args:
                if isinstance(term, Constant):
                    args.append(term.value)
                elif term in self._var_component:
                    args.append(_Component(self._var_component[term]))
                else:
                    args.append(term)
            self._template.append(_TemplateAtom(atom.predicate, tuple(args)))

        # Skeletons: each template subgoal maps to a same-predicate
        # template subgoal.  Enumerated once — data-independent.
        choices: list[list[int]] = []
        for source in self._template:
            targets = [
                j for j, candidate in enumerate(self._template)
                if candidate.predicate == source.predicate
                and len(candidate.args) == len(source.args)
            ]
            choices.append(targets)
        self.skeletons: list[tuple[int, ...]] = [
            combo for combo in itertools.product(*choices)
        ]

    # -- tuple-level checks ------------------------------------------------------
    def reduction_exists(self, values: tuple) -> bool:
        """Does RED(values, l, C) exist?  (Pattern conditions of l.)"""
        if len(values) != self.arity:
            raise NotApplicableError(
                f"tuple arity {len(values)} does not match l/{self.arity}"
            )
        for a, b in self._pattern_eq_cols:
            if values[a] != values[b]:
                return False
        for column, constant in self._pattern_const_cols:
            if values[column] != constant:
                return False
        return True

    def _skeleton_conditions(
        self, skeleton: tuple[int, ...], inserted: tuple
    ) -> Optional[list[Condition]]:
        """Selection conditions on L for one skeleton given the inserted
        tuple, or ``None`` when the skeleton is inconsistent with it."""
        conditions: list[Condition] = []
        seen: set[tuple[int, object]] = set()
        var_image: dict[Variable, tuple] = {}  # remote var -> ('var', v)|('val', x)

        def resolve(term) -> tuple:
            if isinstance(term, _Component):
                return ("val", inserted[term.index])
            if isinstance(term, Variable):
                return ("var", term)
            return ("val", term)

        for i, target_index in enumerate(skeleton):
            source = self._template[i]
            target = self._template[target_index]
            for a, b in zip(source.args, target.args):
                image = resolve(b)
                if isinstance(a, _Component):
                    # s's component must equal a concrete value of RED(t).
                    if image[0] == "var":
                        return None  # a constant cannot map onto a variable
                    key = (a.index, image[1])
                    if key not in seen:
                        seen.add(key)
                        conditions.append(
                            Condition(Col(a.index), ComparisonOp.EQ, Lit(image[1]))
                        )
                elif isinstance(a, Variable):
                    existing = var_image.get(a)
                    if existing is None:
                        var_image[a] = image
                    elif existing != image:
                        # Two images are compatible only when both are the
                        # same concrete value.
                        if existing[0] == "val" and image[0] == "val":
                            if existing[1] != image[1]:
                                return None
                        else:
                            return None
                else:
                    # A constant of C itself: its image must be that value.
                    if image[0] == "var" or image[1] != a:
                        return None
        return conditions

    def _pattern_ra_conditions(self) -> list[Condition]:
        conditions = [
            Condition(Col(a), ComparisonOp.EQ, Col(b))
            for a, b in self._pattern_eq_cols
        ]
        conditions.extend(
            Condition(Col(column), ComparisonOp.EQ, Lit(value))
            for column, value in self._pattern_const_cols
        )
        return conditions

    # -- the public test -------------------------------------------------------
    def expression_for(self, inserted: tuple) -> Expression:
        """The relational algebra expression over L whose nonemptiness is
        the complete local test for inserting *inserted*.

        When the reduction of the inserted tuple does not exist the test
        is trivially true; we return the unrestricted relation L (always
        check :meth:`reduction_exists` first, as :meth:`passes` does).
        """
        inserted = tuple(inserted)
        relation = RelationRef(self.local_predicate, self.arity)
        if not self.reduction_exists(inserted):
            return relation
        pattern = self._pattern_ra_conditions()
        branches: list[Expression] = []
        for skeleton in self.skeletons:
            conditions = self._skeleton_conditions(skeleton, inserted)
            if conditions is None:
                continue
            branches.append(Select(relation, tuple(pattern + conditions)))
        return Union(tuple(branches))

    def passes(self, inserted: tuple, local_relation: Iterable[tuple]) -> bool:
        """The complete local test: True == the insertion cannot newly
        violate the constraint, given the local relation's contents."""
        inserted = tuple(inserted)
        if not self.reduction_exists(inserted):
            return True
        db = Database({self.local_predicate: [tuple(v) for v in local_relation]})
        return bool(evaluate_expression(self.expression_for(inserted), db))
