"""repro — a reproduction of *Constraint Checking with Partial Information*.

Gupta, Sagiv, Ullman, Widom; PODS 1994.

The library implements the paper end to end: the twelve constraint
language classes of Fig. 2.1, constraint subsumption (Section 3), update
rewriting and the closure results (Section 4, Figs. 4.1/4.2), the
Theorem 5.1 containment test for conjunctive queries with arithmetic,
the complete local tests of Theorems 5.2/5.3, and the recursive-datalog
interval tests of Theorem 6.1 / Fig. 6.1 — plus the substrates they run
on (a datalog engine with stratified negation and comparison builtins, a
dense-order arithmetic solver, a relational algebra, and a simulated
two-site distributed database).

Quickstart::

    from repro import Constraint, Database, Insertion, PartialInfoChecker

    constraint = Constraint(
        "panic :- emp(E,D,S) & salFloor(D,F) & S < F", "salary-floor")
    checker = PartialInfoChecker([constraint], local_predicates={"emp"})
    local = Database({"emp": [("ann", "toys", 80)]})
    report = checker.check_constraint(
        constraint, Insertion("emp", ("bob", "toys", 95)), local)
    print(report)   # satisfied at constraints+update+local-data

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the full
paper-to-module map.
"""

from repro.errors import (
    EvaluationError,
    NotApplicableError,
    ParseError,
    ReproError,
    SafetyError,
    StratificationError,
    UndecidableError,
    UnsupportedClassError,
)
from repro.arith import ComparisonSystem, Interval, IntervalSet
from repro.constraints import (
    ALL_CLASSES,
    Constraint,
    ConstraintClass,
    ConstraintSet,
    Shape,
    classify_program,
    subsumes,
)
from repro.containment import (
    is_contained_cq,
    is_contained_cqc,
    is_contained_in_union_cqc,
    is_contained_klug,
    minimize_cq,
    normalize_cqc,
)
from repro.core import CheckLevel, CheckReport, Outcome, PartialInfoChecker
from repro.datalog import (
    Atom,
    Comparison,
    ComparisonOp,
    Constant,
    Database,
    Engine,
    Negation,
    Program,
    Rule,
    Variable,
    evaluate,
    fires,
    parse_program,
    parse_rule,
)
from repro.distributed import (
    DistributedChecker,
    Site,
    TwoSiteDatabase,
    employee_workload,
    interval_workload,
)
from repro.localtests import (
    AlgebraicLocalTest,
    IntervalDatalogTest,
    analyze_icq,
    complete_local_test_insertion,
    completeness_witness,
    figure_61_program,
    interval_local_test,
    is_icq,
    reduce_by_tuple,
)
from repro.relalg import cq_to_algebra, evaluate_expression
from repro.updates import (
    Deletion,
    Insertion,
    apply_update,
    cannot_cause_violation,
    is_update_independent,
    preserved_under_deletion,
    preserved_under_insertion,
    rewrite,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_CLASSES",
    "AlgebraicLocalTest",
    "Atom",
    "CheckLevel",
    "CheckReport",
    "Comparison",
    "ComparisonOp",
    "ComparisonSystem",
    "Constant",
    "Constraint",
    "ConstraintClass",
    "ConstraintSet",
    "Database",
    "Deletion",
    "DistributedChecker",
    "Engine",
    "EvaluationError",
    "Insertion",
    "Interval",
    "IntervalDatalogTest",
    "IntervalSet",
    "Negation",
    "NotApplicableError",
    "Outcome",
    "ParseError",
    "PartialInfoChecker",
    "Program",
    "ReproError",
    "Rule",
    "SafetyError",
    "Shape",
    "Site",
    "StratificationError",
    "TwoSiteDatabase",
    "UndecidableError",
    "UnsupportedClassError",
    "Variable",
    "analyze_icq",
    "apply_update",
    "cannot_cause_violation",
    "classify_program",
    "complete_local_test_insertion",
    "completeness_witness",
    "cq_to_algebra",
    "employee_workload",
    "evaluate",
    "evaluate_expression",
    "figure_61_program",
    "fires",
    "interval_local_test",
    "interval_workload",
    "is_contained_cq",
    "is_contained_cqc",
    "is_contained_in_union_cqc",
    "is_contained_klug",
    "is_icq",
    "is_update_independent",
    "minimize_cq",
    "normalize_cqc",
    "parse_program",
    "parse_rule",
    "preserved_under_deletion",
    "preserved_under_insertion",
    "reduce_by_tuple",
    "rewrite",
    "subsumes",
]
