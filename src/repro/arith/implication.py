"""Implication of a disjunction of comparison conjunctions.

Theorem 5.1 reduces CQC containment to one logical test:

    A(C1)  =>  OR over containment mappings h of  h(A(C2))

Each disjunct is a conjunction of atomic comparisons.  The implication
holds iff ``A(C1) AND (AND_h NOT h(A(C2)))`` is unsatisfiable; since the
negation of a conjunction is a disjunction of atomic negations (totality
of the order keeps every negation atomic), deciding it is a DNF search:
pick one negated literal from each disjunct and test the resulting
conjunction.  The implication holds iff *every* branch is unsatisfiable.

The search is exponential in the number of disjuncts in the worst case —
exactly the cost profile the paper describes ("the test for satisfaction
of the implication is exponential only in the number of variables / few
containment mappings in practice") — but two prunings keep real cases
fast:

* a branch prefix that is already unsatisfiable kills its whole subtree;
* a disjunct already entailed... rather, a disjunct whose every literal is
  *inconsistent* with the base can be dropped up front, and a disjunct
  fully entailed by the base makes the implication trivially true.
"""

from __future__ import annotations

from typing import Sequence

from repro.arith.solver import ComparisonSystem
from repro.datalog.atoms import Comparison

__all__ = ["implies_disjunction", "implies", "equivalent_systems"]


def implies(base: Sequence[Comparison], conclusion: Sequence[Comparison]) -> bool:
    """Does the conjunction *base* imply the conjunction *conclusion*?"""
    system = ComparisonSystem(base)
    return system.entails_all(conclusion)


def implies_disjunction(
    base: Sequence[Comparison],
    disjuncts: Sequence[Sequence[Comparison]],
    prune: bool = True,
) -> bool:
    """Decide ``AND(base) => OR_i AND(disjuncts[i])``.

    With an empty disjunction the implication holds iff *base* is
    unsatisfiable (the paper's case "A(C1) is always false").

    ``prune=False`` disables the dead-subtree cut and the entailed-
    disjunct fast path, expanding the full DNF — kept only for the
    ablation benchmark that measures what the prunings buy.
    """
    system = ComparisonSystem(base)
    if not system.is_satisfiable():
        return True

    if prune:
        # Fast path: some disjunct is outright entailed by the base.
        for disjunct in disjuncts:
            if system.entails_all(disjunct):
                return True

    # General path: every DNF branch of the negation must be unsat.
    # Branch literals are the negations of the disjunct members.
    negated: list[list[Comparison]] = [
        [comparison.negated for comparison in disjunct] for disjunct in disjuncts
    ]
    # Order disjuncts by ascending width to fail fast.
    negated.sort(key=len)

    def all_branches_unsat(index: int, current: ComparisonSystem) -> bool:
        if prune and not current.is_satisfiable():
            return True  # whole subtree dead
        if index == len(negated):
            return not current.is_satisfiable()
        for literal in negated[index]:
            extended = current.copy().add(literal)
            if not all_branches_unsat(index + 1, extended):
                return False
        return True

    return all_branches_unsat(0, system)


def refuting_model(
    base: Sequence[Comparison],
    disjuncts: Sequence[Sequence[Comparison]],
):
    """A variable assignment witnessing that the implication FAILS, or
    ``None`` when ``AND(base) => OR_i AND(disjuncts[i])`` holds.

    The assignment satisfies *base* and falsifies every disjunct — it is
    the instantiation ``g`` of the only-if direction of Theorem 5.1's
    proof, from which the completeness witnesses (the "some state of the
    information not accessed by the test" of Section 2) are built.
    """
    system = ComparisonSystem(base)
    if not system.is_satisfiable():
        return None
    negated = [
        [comparison.negated for comparison in disjunct] for disjunct in disjuncts
    ]
    negated.sort(key=len)

    def search(index: int, current: ComparisonSystem):
        if not current.is_satisfiable():
            return None
        if index == len(negated):
            return current.model()
        for literal in negated[index]:
            model = search(index + 1, current.copy().add(literal))
            if model is not None:
                return model
        return None

    return search(0, system)


def equivalent_systems(a: Sequence[Comparison], b: Sequence[Comparison]) -> bool:
    """True when the two conjunctions have the same models."""
    return implies(a, b) and implies(b, a)
