"""Arithmetic over the dense total order: solver, implication, intervals."""

from repro.arith.implication import equivalent_systems, implies, implies_disjunction
from repro.arith.intervals import Interval, IntervalSet
from repro.arith.order import (
    NEG_INF,
    POS_INF,
    compare_values,
    comparison_holds,
    midpoint,
    sort_key,
    value_above,
    value_below,
)
from repro.arith.solver import ComparisonSystem

__all__ = [
    "NEG_INF",
    "POS_INF",
    "ComparisonSystem",
    "Interval",
    "IntervalSet",
    "compare_values",
    "comparison_holds",
    "equivalent_systems",
    "implies",
    "implies_disjunction",
    "midpoint",
    "sort_key",
    "value_above",
    "value_below",
]
