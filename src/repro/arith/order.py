"""The dense total order over constant values.

The paper's arithmetic results assume comparisons over a total order (see
the remark after Example 5.1: the simplification "is true assuming that
``<=`` is a total order"), and the completeness arguments implicitly use
density (between any two distinct points lies a third).  We fix one
concrete such order over the values our databases hold:

* all numbers (``int``/``float``/``Fraction``) ordered numerically;
* all strings ordered lexicographically, *after* every number;
* two sentinels :data:`NEG_INF` and :data:`POS_INF` below and above
  everything (used by the Fig. 6.1 interval programs for rays).

Numbers are dense (rationals); strings are order-dense in the relevant
sense for our completeness witnesses (the solver only ever needs a fresh
point strictly between two others, or beyond all others, and we construct
those explicitly in :mod:`repro.arith.solver`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.ops import ComparisonOp

__all__ = [
    "NEG_INF",
    "POS_INF",
    "compare_values",
    "comparison_holds",
    "sort_key",
    "midpoint",
    "value_below",
    "value_above",
]


class _Extreme:
    """A sentinel ordered below (sign=-1) or above (sign=+1) all values."""

    __slots__ = ("sign",)

    def __init__(self, sign: int) -> None:
        self.sign = sign

    def __repr__(self) -> str:
        return "NEG_INF" if self.sign < 0 else "POS_INF"

    def __str__(self) -> str:
        return "neg_inf" if self.sign < 0 else "pos_inf"

    # Sentinels are singletons; identity equality is what we want.


NEG_INF = _Extreme(-1)
POS_INF = _Extreme(+1)

_NUMERIC = (int, float, Fraction)


def _rank(value: object) -> int:
    """Coarse rank separating the strata of the total order."""
    if value is NEG_INF:
        return 0
    if isinstance(value, bool):  # bools are ints in Python; treat as numbers
        return 1
    if isinstance(value, _NUMERIC):
        return 1
    if isinstance(value, str):
        return 2
    if value is POS_INF:
        return 3
    raise TypeError(f"value {value!r} is not in the ordered domain")


def compare_values(a: object, b: object) -> int:
    """Three-way comparison: -1, 0, or +1 as *a* <, =, > *b*."""
    ra, rb = _rank(a), _rank(b)
    if ra != rb:
        return -1 if ra < rb else 1
    if ra in (0, 3):  # both the same sentinel
        return 0
    if a == b:
        return 0
    return -1 if a < b else 1  # type: ignore[operator]


def comparison_holds(op: ComparisonOp, a: object, b: object) -> bool:
    """Evaluate a ground comparison under the dense total order."""
    # Fast path: two plain ints/floats (the overwhelmingly common case on
    # the maintenance hot path) compare natively, skipping the rank
    # machinery.  bool is excluded so it keeps flowing through the same
    # code path _rank classifies it under.
    ta, tb = type(a), type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        if op is ComparisonOp.LT:
            return a < b
        if op is ComparisonOp.LE:
            return a <= b
        if op is ComparisonOp.GT:
            return a > b
        if op is ComparisonOp.GE:
            return a >= b
        if op is ComparisonOp.EQ:
            return a == b
        return a != b  # NE
    if ta is str and tb is str:
        if op is ComparisonOp.LT:
            return a < b
        if op is ComparisonOp.LE:
            return a <= b
        if op is ComparisonOp.GT:
            return a > b
        if op is ComparisonOp.GE:
            return a >= b
        if op is ComparisonOp.EQ:
            return a == b
        return a != b  # NE
    sign = compare_values(a, b)
    if op is ComparisonOp.LT:
        return sign < 0
    if op is ComparisonOp.LE:
        return sign <= 0
    if op is ComparisonOp.GT:
        return sign > 0
    if op is ComparisonOp.GE:
        return sign >= 0
    if op is ComparisonOp.EQ:
        return sign == 0
    return sign != 0  # NE


def sort_key(value: object):
    """A key usable with ``sorted`` that realizes the total order."""
    rank = _rank(value)
    if rank in (0, 3):
        return (rank, 0)
    return (rank, value)


def _ensure_comparable(values: Iterable[object]) -> None:
    for value in values:
        _rank(value)


def midpoint(a: object, b: object) -> object:
    """A fresh point strictly between *a* and *b* (requires ``a < b``).

    Used by the completeness witnesses (canonical databases): the proof of
    Theorem 5.1 needs to realize an arbitrary consistent order with actual
    domain elements.
    """
    if compare_values(a, b) >= 0:
        raise ValueError(f"midpoint requires a < b, got {a!r} and {b!r}")
    if a is NEG_INF and b is POS_INF:
        return Fraction(0)
    if a is NEG_INF:
        return value_below(b)
    if b is POS_INF:
        return value_above(a)
    a_num = isinstance(a, _NUMERIC)
    b_num = isinstance(b, _NUMERIC)
    if a_num and b_num:
        return (Fraction(a) + Fraction(b)) / 2
    if a_num and isinstance(b, str):
        # Between the numbers and the strings: any number above `a` works.
        return Fraction(a) + 1
    if isinstance(a, str) and isinstance(b, str):
        # `a` extended with the minimal character sorts strictly between a
        # and b in every case except b == a + chr(0) exactly — the one
        # place the lexicographic order on strings fails to be dense.
        candidate = a + "\x00"
        if candidate < b:
            return candidate
        raise ValueError(
            f"strings {a!r} and {b!r} are lexicographically adjacent; "
            f"the string order is not dense at this pair"
        )
    raise ValueError(f"no midpoint available between {a!r} and {b!r}")


def value_below(b: object) -> object:
    """A fresh point strictly below *b*."""
    if b is NEG_INF:
        raise ValueError("nothing lies below NEG_INF")
    if b is POS_INF:
        return Fraction(0)
    if isinstance(b, _NUMERIC):
        return Fraction(b) - 1
    return Fraction(0)  # numbers sort below strings


def value_above(a: object) -> object:
    """A fresh point strictly above *a*."""
    if a is POS_INF:
        raise ValueError("nothing lies above POS_INF")
    if a is NEG_INF:
        return Fraction(0)
    if isinstance(a, _NUMERIC):
        return Fraction(a) + 1
    return a + "\x00"  # strings: immediate-ish successor
