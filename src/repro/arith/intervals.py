"""Interval algebra with open/closed and infinite endpoints.

This is the reference implementation behind the *forbidden intervals*
example (Examples 5.3 and 6.1): each local tuple forbids an interval of
values to the remote variable, and the complete local test for an
insertion is containment of the new forbidden interval in the union of
the existing ones.  Theorem 6.1 expresses the same computation as a
recursive datalog program (see :mod:`repro.localtests.interval_datalog`);
tests cross-check the two implementations against each other.

Endpoints may be open or closed, and may be the sentinels
:data:`~repro.arith.order.NEG_INF` / :data:`~repro.arith.order.POS_INF`
("intervals may be open to infinity or minus infinity, and they may be
open or closed at either end" — proof sketch of Theorem 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.arith.order import NEG_INF, POS_INF, compare_values, sort_key

__all__ = ["Interval", "IntervalSet"]


@dataclass(frozen=True)
class Interval:
    """A (possibly empty, possibly unbounded) interval of the dense order."""

    lo: object
    lo_closed: bool
    hi: object
    hi_closed: bool

    def __post_init__(self) -> None:
        # Closedness at an infinite endpoint is meaningless; normalize open.
        if self.lo is NEG_INF and self.lo_closed:
            object.__setattr__(self, "lo_closed", False)
        if self.hi is POS_INF and self.hi_closed:
            object.__setattr__(self, "hi_closed", False)

    # -- constructors --------------------------------------------------------
    @staticmethod
    def closed(lo: object, hi: object) -> "Interval":
        return Interval(lo, True, hi, True)

    @staticmethod
    def open(lo: object, hi: object) -> "Interval":
        return Interval(lo, False, hi, False)

    @staticmethod
    def point(value: object) -> "Interval":
        return Interval(value, True, value, True)

    @staticmethod
    def at_most(hi: object, closed: bool = True) -> "Interval":
        return Interval(NEG_INF, False, hi, closed)

    @staticmethod
    def at_least(lo: object, closed: bool = True) -> "Interval":
        return Interval(lo, closed, POS_INF, False)

    @staticmethod
    def everything() -> "Interval":
        return Interval(NEG_INF, False, POS_INF, False)

    # -- basic predicates -------------------------------------------------------
    def is_empty(self) -> bool:
        sign = compare_values(self.lo, self.hi)
        if sign > 0:
            return True
        if sign == 0:
            return not (self.lo_closed and self.hi_closed)
        return False

    def contains_point(self, value: object) -> bool:
        lo_sign = compare_values(self.lo, value)
        if lo_sign > 0 or (lo_sign == 0 and not self.lo_closed):
            return False
        hi_sign = compare_values(value, self.hi)
        if hi_sign > 0 or (hi_sign == 0 and not self.hi_closed):
            return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        """Set containment: every point of *other* lies in *self*."""
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        lo_sign = compare_values(self.lo, other.lo)
        lo_ok = lo_sign < 0 or (lo_sign == 0 and (self.lo_closed or not other.lo_closed))
        hi_sign = compare_values(other.hi, self.hi)
        hi_ok = hi_sign < 0 or (hi_sign == 0 and (self.hi_closed or not other.hi_closed))
        return lo_ok and hi_ok

    def intersect(self, other: "Interval") -> "Interval":
        """The intersection (possibly empty)."""
        lo_sign = compare_values(self.lo, other.lo)
        if lo_sign > 0 or (lo_sign == 0 and not self.lo_closed):
            lo, lo_closed = self.lo, self.lo_closed
        else:
            lo, lo_closed = other.lo, other.lo_closed
        hi_sign = compare_values(self.hi, other.hi)
        if hi_sign < 0 or (hi_sign == 0 and not self.hi_closed):
            hi, hi_closed = self.hi, self.hi_closed
        else:
            hi, hi_closed = other.hi, other.hi_closed
        return Interval(lo, lo_closed, hi, hi_closed)

    def _merges_with(self, other: "Interval") -> bool:
        """True when the union of the two intervals is again an interval.

        Assumes ``self`` starts no later than ``other``; they merge when
        they overlap or touch at a point covered by at least one side.
        """
        sign = compare_values(self.hi, other.lo)
        if sign > 0:
            return True
        if sign == 0:
            return self.hi_closed or other.lo_closed
        return False

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (assumes they merge)."""
        hi_sign = compare_values(self.hi, other.hi)
        if hi_sign > 0 or (hi_sign == 0 and self.hi_closed):
            hi, hi_closed = self.hi, self.hi_closed
        else:
            hi, hi_closed = other.hi, other.hi_closed
        return Interval(self.lo, self.lo_closed, hi, hi_closed)

    def _start_key(self):
        # Closed start begins "earlier" than open start at the same value.
        return (sort_key(self.lo), 0 if self.lo_closed else 1)

    def __str__(self) -> str:
        left = "[" if self.lo_closed else "("
        right = "]" if self.hi_closed else ")"
        lo = "-inf" if self.lo is NEG_INF else str(self.lo)
        hi = "+inf" if self.hi is POS_INF else str(self.hi)
        return f"{left}{lo}, {hi}{right}"


class IntervalSet:
    """A normalized (disjoint, maximal) union of intervals.

    This realizes the fixpoint that the Fig. 6.1 recursive rules compute:
    "we combine overlapping intervals into one interval that includes them
    both, until we have the longest possible intervals".
    """

    __slots__ = ("_members",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        members = sorted(
            (iv for iv in intervals if not iv.is_empty()),
            key=Interval._start_key,
        )
        merged: list[Interval] = []
        for interval in members:
            if merged and merged[-1]._merges_with(interval):
                merged[-1] = merged[-1].hull(interval)
            else:
                merged.append(interval)
        self._members = tuple(merged)

    @property
    def members(self) -> tuple[Interval, ...]:
        """The maximal intervals, in increasing order."""
        return self._members

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def covers_point(self, value: object) -> bool:
        return any(member.contains_point(value) for member in self._members)

    def covers(self, interval: Interval) -> bool:
        """Set containment of *interval* in the union.

        Because members are maximal and pairwise non-mergeable (separated
        by at least one missing point), a connected interval is covered
        iff a single member contains it.
        """
        if interval.is_empty():
            return True
        return any(member.contains_interval(interval) for member in self._members)

    def union(self, other: "IntervalSet | Iterable[Interval]") -> "IntervalSet":
        extra: Sequence[Interval]
        if isinstance(other, IntervalSet):
            extra = other._members
        else:
            extra = tuple(other)
        return IntervalSet(self._members + tuple(extra))

    def with_interval(self, interval: Interval) -> "IntervalSet":
        return IntervalSet(self._members + (interval,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._members == other._members

    def __hash__(self) -> int:
        return hash(self._members)

    def __str__(self) -> str:
        if not self._members:
            return "{}"
        return " u ".join(str(member) for member in self._members)
