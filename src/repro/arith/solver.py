"""Satisfiability of comparison conjunctions over the dense total order.

This module decides conjunctions of atomic comparisons (``<``, ``<=``,
``=``, ``<>``, ``>=``, ``>``) whose sides are variables or constants, and
produces *models* (satisfying assignments) for witness construction.

Algorithm
---------

We keep a digraph over the terms of the system where an edge ``x -> y``
carries a strictness flag: ``x < y`` (strict) or ``x <= y``.  Equalities
contribute edges both ways; disequalities are kept in a side set.
Constants are seeded with their ground-truth order edges.  Transitive
closure (Floyd–Warshall over the (<=, <) composition: a path is strict
when any hop is strict) then makes the following checks complete over a
dense order:

* unsatisfiable iff some term reaches itself strictly, or some ``<>``
  pair is forced equal (``x <= y`` and ``y <= x`` both derived);
* density means disequalities never force anything beyond that check.

Entailment of a single comparison ``c`` is refutation: the system plus
``not c`` (again atomic, thanks to totality) must be unsatisfiable.

Complexities match the paper's expectations: each satisfiability check is
polynomial; the exponential behaviour of the full containment test lives
in :mod:`repro.arith.implication` (the disjunction search), not here.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arith.order import (
    compare_values,
    comparison_holds,
    midpoint,
    sort_key,
    value_above,
    value_below,
)
from repro.datalog.atoms import Comparison, ComparisonOp
from repro.datalog.terms import Constant, Term, Variable

__all__ = ["ComparisonSystem"]

_Node = Term  # Variables and Constants are both frozen/hashable.


class ComparisonSystem:
    """A mutable conjunction of atomic comparisons with lazy closure."""

    __slots__ = ("_edges", "_ne", "_nodes", "_constants", "_false", "_closed")

    def __init__(self, comparisons: Iterable[Comparison] = ()) -> None:
        # _edges[(x, y)] = True for x < y, False for x <= y (strongest known).
        self._edges: dict[tuple[_Node, _Node], bool] = {}
        self._ne: set[frozenset] = set()
        self._nodes: set[_Node] = set()
        self._constants: list[Constant] = []
        self._false = False
        self._closed = True
        for comparison in comparisons:
            self.add(comparison)

    # -- construction ----------------------------------------------------------
    def copy(self) -> "ComparisonSystem":
        new = ComparisonSystem()
        new._edges = dict(self._edges)
        new._ne = set(self._ne)
        new._nodes = set(self._nodes)
        new._constants = list(self._constants)
        new._false = self._false
        new._closed = self._closed
        return new

    def _add_node(self, term: _Node) -> None:
        if term in self._nodes:
            return
        self._nodes.add(term)
        if isinstance(term, Constant):
            # Seed ground-truth order against every other known constant.
            for other in self._constants:
                sign = compare_values(term.value, other.value)
                if sign < 0:
                    self._raw_edge(term, other, strict=True)
                elif sign > 0:
                    self._raw_edge(other, term, strict=True)
                # equal payloads collapse to the same node (Constant(1) ==
                # Constant(1.0)), so sign == 0 cannot reach here.
            self._constants.append(term)
        self._closed = False

    def _raw_edge(self, x: _Node, y: _Node, strict: bool) -> None:
        key = (x, y)
        current = self._edges.get(key)
        if current is None or (strict and not current):
            self._edges[key] = strict
            self._closed = False

    def add(self, comparison: Comparison) -> "ComparisonSystem":
        """Conjoin one comparison (mutates and returns self)."""
        left, op, right = comparison.left, comparison.op, comparison.right
        if isinstance(left, Constant) and isinstance(right, Constant):
            if not comparison_holds(op, left.value, right.value):
                self._false = True
            return self
        if comparison.is_trivial_false():
            self._false = True
            return self
        if comparison.is_trivial_true():
            return self
        self._add_node(left)
        self._add_node(right)
        if op is ComparisonOp.LT:
            self._raw_edge(left, right, strict=True)
        elif op is ComparisonOp.LE:
            self._raw_edge(left, right, strict=False)
        elif op is ComparisonOp.GT:
            self._raw_edge(right, left, strict=True)
        elif op is ComparisonOp.GE:
            self._raw_edge(right, left, strict=False)
        elif op is ComparisonOp.EQ:
            self._raw_edge(left, right, strict=False)
            self._raw_edge(right, left, strict=False)
        else:  # NE
            self._ne.add(frozenset((left, right)))
        return self

    def add_all(self, comparisons: Iterable[Comparison]) -> "ComparisonSystem":
        for comparison in comparisons:
            self.add(comparison)
        return self

    # -- closure ------------------------------------------------------------------
    def _close(self) -> None:
        if self._closed:
            return
        nodes = list(self._nodes)
        edges = self._edges
        # Floyd–Warshall: path strictness is OR over hops.
        for k in nodes:
            into_k = [(x, edges[(x, k)]) for x in nodes if (x, k) in edges]
            from_k = [(y, edges[(k, y)]) for y in nodes if (k, y) in edges]
            if not into_k or not from_k:
                continue
            for x, s1 in into_k:
                for y, s2 in from_k:
                    if x == k or y == k:
                        continue
                    strict = s1 or s2
                    key = (x, y)
                    current = edges.get(key)
                    if current is None or (strict and not current):
                        edges[key] = strict
        self._closed = True

    # -- decisions ----------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Decide satisfiability over the dense total order."""
        if self._false:
            return False
        self._close()
        for node in self._nodes:
            if self._edges.get((node, node)):
                return False
        for pair in self._ne:
            members = tuple(pair)
            if len(members) == 1:  # x <> x
                return False
            x, y = members
            # Over a dense order a disequality only fails when equality is
            # forced: non-strict edges both ways (a strict edge either way
            # would have produced x < x above instead).
            if (
                self._edges.get((x, y)) is False
                and self._edges.get((y, x)) is False
            ):
                return False
        return True

    def entails(self, comparison: Comparison) -> bool:
        """True when every model of the system satisfies *comparison*."""
        if not self.is_satisfiable():
            return True
        return not self.copy().add(comparison.negated).is_satisfiable()

    def entails_all(self, comparisons: Iterable[Comparison]) -> bool:
        return all(self.entails(c) for c in comparisons)

    # -- models ---------------------------------------------------------------------
    def _equivalence_classes(self) -> tuple[list[list[_Node]], dict[_Node, int]]:
        """Group terms forced equal by the closed system."""
        self._close()
        index: dict[_Node, int] = {}
        classes: list[list[_Node]] = []
        for node in self._nodes:
            if node in index:
                continue
            group = [node]
            index[node] = len(classes)
            for other in self._nodes:
                if other in index:
                    continue
                eq = (
                    self._edges.get((node, other)) is False
                    and self._edges.get((other, node)) is False
                )
                if eq:
                    index[other] = len(classes)
                    group.append(other)
            classes.append(group)
        return classes, index

    def model(self) -> Optional[dict[Variable, object]]:
        """A satisfying assignment for the variables, or ``None`` if unsat.

        Constants are respected (a variable forced equal to ``5`` maps to
        ``5``); otherwise distinct equivalence classes receive pairwise
        distinct values, realizable because the order is dense.  This is
        the canonical-database construction used by the Klug baseline and
        by the completeness witnesses of Theorem 5.1.
        """
        if not self.is_satisfiable():
            return None
        classes, index = self._equivalence_classes()
        n = len(classes)
        # Strict-or-not edges between classes.
        less: dict[int, set[int]] = {i: set() for i in range(n)}
        for (x, y), _strict in self._edges.items():
            ix, iy = index[x], index[y]
            if ix != iy:
                less[ix].add(iy)
        # Pin classes containing constants.
        pinned: dict[int, object] = {}
        for i, group in enumerate(classes):
            for member in group:
                if isinstance(member, Constant):
                    pinned[i] = member.value
                    break
        order = self._linearize(n, less, pinned)
        values = self._assign_values(order, pinned)
        assignment: dict[Variable, object] = {}
        for i, group in enumerate(classes):
            for member in group:
                if isinstance(member, Variable):
                    assignment[member] = values[i]
        return assignment

    @staticmethod
    def _linearize(n: int, less: dict[int, set[int]], pinned: dict[int, object]) -> list[int]:
        """Topological order of the class DAG, pinned classes kept in
        ground-truth value order (guaranteed consistent by seeding)."""
        indegree = {i: 0 for i in range(n)}
        for src, dsts in less.items():
            for dst in dsts:
                indegree[dst] += 1
        ready = [i for i in range(n) if indegree[i] == 0]
        order: list[int] = []
        while ready:
            # Deterministic choice: pinned classes by value, then index.
            ready.sort(key=lambda i: (0, sort_key(pinned[i])) if i in pinned else (1, (0, i)))
            node = ready.pop(0)
            order.append(node)
            for dst in less[node]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        assert len(order) == n, "cycle survived satisfiability check"
        return order

    @staticmethod
    def _assign_values(order: list[int], pinned: dict[int, object]) -> dict[int, object]:
        """Assign strictly increasing values along the linear order,
        respecting pinned constants (dense order: always possible)."""
        values: dict[int, object] = {}
        positions_of_pinned = [pos for pos, cls in enumerate(order) if cls in pinned]
        previous: object | None = None
        for pos, cls in enumerate(order):
            if cls in pinned:
                values[cls] = pinned[cls]
                previous = pinned[cls]
                continue
            # Find the next pinned value downstream, if any.
            next_pinned: object | None = None
            for later_pos in positions_of_pinned:
                if later_pos > pos:
                    next_pinned = pinned[order[later_pos]]
                    break
            if previous is None and next_pinned is None:
                value: object = pos  # free: integers keep it readable
            elif previous is None:
                value = value_below(next_pinned)
            elif next_pinned is None:
                value = value_above(previous)
            else:
                value = midpoint(previous, next_pinned)
            values[cls] = value
            previous = value
        return values

    # -- introspection -----------------------------------------------------------
    @property
    def nodes(self) -> frozenset[_Node]:
        return frozenset(self._nodes)

    def __repr__(self) -> str:
        self._close()
        parts: list[str] = []
        for (x, y), strict in sorted(self._edges.items(), key=lambda e: (str(e[0][0]), str(e[0][1]))):
            parts.append(f"{x} {'<' if strict else '<='} {y}")
        for pair in self._ne:
            members = sorted(pair, key=str)
            if len(members) == 2:
                parts.append(f"{members[0]} <> {members[1]}")
        status = "" if not self._false else " [FALSE]"
        return f"ComparisonSystem({'; '.join(parts)}){status}"
