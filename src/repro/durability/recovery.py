"""Rebuild the exact pre-crash state from a checkpoint + journal tail.

Recovery is **replay over a consistent prefix**, not recomputation: the
newest valid checkpoint manifest provides the state at stream position
P, and only the journal records *after* P are replayed — and replayed as
pure state application (facts in/out per the journalled effective
deltas, pending descriptors appended, stats folded from the journalled
verdicts), never by re-running the checking pipeline.  The checking
pipeline re-runs only for the updates the journal never persisted (the
unsynced suffix a crash legitimately loses), which the resumed stream
processes live — and because the persisted prefix carries the remote
link's RNG/breaker state as of its last record, the live re-run draws
exactly the faults the crashed run drew.

Invariants the caller (``check-stream --resume``) relies on:

* every journal record at ``pos <= P`` is also reflected in the
  checkpoint (checkpoints are cut at safe points after a sync);
* pending-entry optimistic facts are *included* in the record deltas, so
  replaying deltas and re-queueing descriptors never double-applies;
* drains are not journalled — a crash mid-drain recovers to the
  pre-drain state and the resumed run re-drains deterministically;
* rebalance cut changes are journalled last-wins; verdicts and final
  state are cut-independent, so recovery only needs *a* consistent cut
  vector, which it re-partitions the recovered facts by.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.datalog.database import Database
from repro.distributed.stats import ProtocolStats
from repro.durability.checkpoint import latest_checkpoint
from repro.durability.journal import read_journal, report_from_json
from repro.errors import ReproError, StorageBackendMismatch

__all__ = [
    "RecoveredState",
    "recover",
    "write_meta",
    "load_meta",
    "check_backend_compatible",
]

META_FILE = "meta.json"


def write_meta(directory: str, config: dict) -> None:
    """Persist the run's configuration fingerprint next to the journal.

    ``--resume`` refuses to continue a journal under a different
    configuration (constraints, placement, policies): the journal's
    meaning depends on it.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, META_FILE)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(config, fh, sort_keys=True, indent=1)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())


def check_backend_compatible(meta: Optional[dict], backend: str) -> None:
    """Refuse a ``--resume`` under a different storage backend.

    Raised *before* the generic whole-fingerprint comparison so the
    operator gets a typed, actionable error naming both backends.
    Journals written before the backend key existed are treated as
    ``memory`` (the only backend that existed then).
    """
    if meta is None:
        return
    recorded = meta.get("backend", "memory")
    if recorded != backend:
        raise StorageBackendMismatch(recorded, backend)


def load_meta(directory: str) -> Optional[dict]:
    path = os.path.join(directory, META_FILE)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


@dataclass
class RecoveredState:
    """Everything ``--resume`` needs to reconstruct the checker."""

    #: stream position of the last recovered update record
    pos: int
    #: recovered local-site facts, predicate -> set of fact tuples
    facts: dict[str, set[tuple]] = field(default_factory=dict)
    #: pending-verdict descriptors (journal JSON form), seq ascending
    pending: list[dict] = field(default_factory=list)
    #: highest pending seq ever issued (the arrival clock restarts past it)
    seq: int = 0
    #: recovered protocol counters
    stats: ProtocolStats = field(default_factory=ProtocolStats)
    #: per-session SessionStats dicts as of the checkpoint (shard order);
    #: the tail's session-gauge contributions are not journalled, so
    #: these under-count by at most one checkpoint interval
    session_stats: list[dict] = field(default_factory=list)
    #: per-shard pending-queue descriptors as of the checkpoint (shard
    #: order); ``None`` for unsharded manifests and pre-PR-9 journals
    shard_pending: Optional[list[list[dict]]] = None
    #: per-shard arrival-clock cells (the seq last stamped on each
    #: shard); ``None`` when the manifest predates them or is unsharded
    shard_seq: Optional[list[int]] = None
    #: per-shard worker-restart counters (process executor), so a
    #: resumed run's supervision budget carries over; ``None`` otherwise
    worker_restarts: Optional[list[int]] = None
    #: pending descriptors replayed from the journal *tail* (a subset of
    #: ``pending``); these are not in ``shard_pending`` and the resuming
    #: checker must route them by its own partitioner
    tail_pending: list[dict] = field(default_factory=list)
    #: key-range cut vectors, predicate -> list of boundaries
    cuts: dict[str, list] = field(default_factory=dict)
    #: remote link ``state_dict`` as of the last recovered record
    link_state: Optional[dict] = None
    #: the run's configuration fingerprint (meta.json)
    meta: Optional[dict] = None
    #: every valid update record, stream order (for verdict echo)
    records: list[dict] = field(default_factory=list)
    #: update records replayed from the tail (pos > checkpoint pos)
    replayed: int = 0
    #: torn/corrupt journal lines dropped at validation
    dropped_lines: int = 0

    def database(self) -> Database:
        return Database(
            {predicate: sorted(facts, key=repr) for predicate, facts in self.facts.items()}
        )


def _apply_delta(facts: dict[str, set[tuple]], delta: dict) -> None:
    for predicate, removed in delta["del"].items():
        bucket = facts.get(predicate)
        if bucket is None:
            continue
        for fact in removed:
            bucket.discard(tuple(fact))
    for predicate, added in delta["ins"].items():
        bucket = facts.setdefault(predicate, set())
        for fact in added:
            bucket.add(tuple(fact))


def recover(directory: str) -> RecoveredState:
    """Restore the newest valid checkpoint and replay the journal tail."""
    checkpoint = latest_checkpoint(directory)
    if checkpoint is None:
        raise ReproError(
            f"no valid checkpoint manifest in {directory!r}; "
            "nothing to resume from"
        )
    records, dropped = read_journal(directory)
    meta = load_meta(directory)
    apply_on_unknown = True if meta is None else meta.get("apply_on_unknown", True)

    state = RecoveredState(
        pos=int(checkpoint["pos"]),
        facts={
            predicate: {tuple(fact) for fact in bucket}
            for predicate, bucket in checkpoint["facts"].items()
        },
        pending=list(checkpoint.get("pending", [])),
        seq=int(checkpoint.get("seq", 0)),
        stats=ProtocolStats.from_dict(checkpoint["stats"]),
        session_stats=list(checkpoint.get("session_stats", [])),
        shard_pending=checkpoint.get("shard_pending"),
        shard_seq=checkpoint.get("shard_seq"),
        worker_restarts=checkpoint.get("worker_restarts"),
        cuts={
            predicate: list(bounds)
            for predicate, bounds in checkpoint.get("cuts", {}).items()
        },
        link_state=checkpoint.get("link"),
        meta=meta,
        dropped_lines=dropped,
    )

    updates = [r for r in records if r.get("t") == "u"]
    updates.sort(key=lambda r: r["pos"])
    state.records = updates
    for record in updates:
        if record["pos"] <= state.pos:
            continue
        if record["pos"] != state.pos + 1:
            raise ReproError(
                f"journal gap: expected record {state.pos + 1}, "
                f"found {record['pos']}"
            )
        state.pos = record["pos"]
        state.replayed += 1
        if record["applied"] and record["delta"] is not None:
            _apply_delta(state.facts, record["delta"])
        if record["pending"] is not None:
            state.pending.append(record["pending"])
            state.tail_pending.append(record["pending"])
        if "link" in record:
            state.link_state = record["link"]
        # Fold the journalled verdicts exactly the way the live checker
        # folded them (ProtocolStats.record_reports is the shared path).
        reports = [report_from_json(r) for r in record["reports"]]
        state.stats.updates += 1
        state.stats.record_reports(reports, apply_on_unknown)

    # Rebalance cuts: last record wins per predicate (cut-independence
    # means any consistent vector reproduces the verdicts, but the
    # newest is what the crashed run was actually routing by).
    for record in records:
        if record.get("t") == "r":
            state.cuts[record["pred"]] = list(record["cuts"])

    # Future patches: an "fp" record says the in-flight fetch journalled
    # with the matching pending descriptor landed before the crash —
    # clear the marker so the recovered descriptors reflect it.
    landed = {
        record["seq"] for record in records if record.get("t") == "fp"
    }
    if landed:
        for descriptor in state.pending:
            marker = descriptor.get("future")
            if marker is not None and int(descriptor["seq"]) in landed:
                descriptor["future"] = dict(marker, pending=False)

    for descriptor in state.pending:
        state.seq = max(state.seq, int(descriptor["seq"]))
    if state.shard_seq:
        state.seq = max(state.seq, *state.shard_seq)
    return state
