"""Durable journal + checkpoint/resume for the check-stream protocol.

The paper's protocol runs over an unbounded update stream; this package
makes a stream run survive a crash at any point:

* :mod:`repro.durability.journal` — an append-only JSONL write-ahead
  *effects* journal: one CRC-guarded record per stream update carrying
  the update, its final verdicts, the effective database delta, and the
  queued pending-verdict descriptor, with batched fsync;
* :mod:`repro.durability.checkpoint` — periodic atomic-rename manifest
  snapshots (site facts, pending queue, arrival clock, protocol stats,
  shard boundary cuts) validated by a payload hash;
* :mod:`repro.durability.recovery` — restores the newest valid
  checkpoint and replays only the journal *tail* to the exact pre-crash
  consistent prefix, from which ``check-stream --resume`` continues the
  stream byte-identically to an uninterrupted run.
"""

from repro.durability.checkpoint import (
    latest_checkpoint,
    list_checkpoints,
    write_checkpoint,
)
from repro.durability.journal import JournalWriter, read_journal
from repro.durability.recovery import RecoveredState, recover

__all__ = [
    "JournalWriter",
    "RecoveredState",
    "latest_checkpoint",
    "list_checkpoints",
    "read_journal",
    "recover",
    "write_checkpoint",
]
