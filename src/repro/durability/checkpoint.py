"""Atomic, hash-validated checkpoint manifests.

A checkpoint is one JSON file ``checkpoint-<pos>.json`` whose payload is
wrapped with its own SHA-256 — a manifest that fails the hash (torn
write, bit rot) is ignored by recovery, which falls back to the next
newest valid one.  Writes are crash-atomic: the manifest is written to a
temp file in the same directory, fsynced, and ``os.replace``d into
place, so a crash mid-checkpoint leaves either the old file set or the
new one, never a half manifest under the final name.

The payload layout is owned by the CLI/recovery layer (see
:mod:`repro.durability.recovery`); this module only guarantees
atomicity, validation, and newest-valid-wins selection keyed on the
stream position embedded in the filename.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Optional

__all__ = [
    "write_checkpoint",
    "list_checkpoints",
    "latest_checkpoint",
    "manifest_digest",
]

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d+)\.json$")


def manifest_digest(payload: dict) -> str:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_checkpoint(directory: str, payload: dict) -> str:
    """Atomically write ``checkpoint-<payload['pos']>.json``; returns the
    final path.  An existing manifest at the same position is replaced
    (idempotent re-checkpoint after an unchanged resume)."""
    pos = int(payload["pos"])
    os.makedirs(directory, exist_ok=True)
    wrapped = {"sha256": manifest_digest(payload), "payload": payload}
    final = os.path.join(directory, f"checkpoint-{pos:09d}.json")
    temp = final + ".tmp"
    with open(temp, "w", encoding="utf-8") as fh:
        json.dump(wrapped, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(temp, final)
    return final


def _load_manifest(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            wrapped = json.load(fh)
        payload = wrapped["payload"]
        if manifest_digest(payload) != wrapped["sha256"]:
            return None
        return payload
    except (OSError, ValueError, KeyError, TypeError):
        return None


def list_checkpoints(directory: str) -> list[tuple[int, str]]:
    """Every manifest file present, as ``(pos, path)`` sorted ascending —
    including invalid ones (validation happens at load time)."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


def latest_checkpoint(directory: str) -> Optional[dict]:
    """The newest manifest that validates, or ``None``."""
    for _pos, path in reversed(list_checkpoints(directory)):
        payload = _load_manifest(path)
        if payload is not None:
            return payload
    return None
