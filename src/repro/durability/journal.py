"""Append-only write-ahead journal for check-stream runs.

The journal is an *effects log*: exactly one JSONL record per stream
update, in arrival order, carrying everything recovery needs to reapply
the update as pure state — the update itself, its final per-constraint
verdicts, whether it stayed applied, the *effective* delta its
application made (the ``UndoToken`` contents, so recovery never
re-derives redundant-insert edge cases), the pending-verdict descriptor
it queued (if any), and the remote link's mutable state whenever that
state changed.  Rebalance cut changes get their own record type.

Each line is ``<crc32 hex> <json>``; a torn tail (half-written line,
flipped bit) fails the CRC and is truncated, not trusted.  Records are
buffered in memory and flushed with one ``write`` + ``fsync`` every
``sync_every`` safe points, so durability costs one syscall pair per
batch, not per update.  A crash loses at most the unsynced suffix —
which is exactly the *consistent prefix* property recovery relies on:
the lost updates are simply reprocessed live, and because the persisted
prefix includes the link/RNG state as of its last record, the re-run
draws the same faults the crashed run drew.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Callable, Iterable, Optional

from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.session import PendingVerdict
from repro.datalog.database import UndoToken
from repro.errors import ReproError
from repro.updates.update import Deletion, Insertion, Modification, Update

__all__ = [
    "JournalWriter",
    "OrderedJournalCommitter",
    "read_journal",
    "update_to_json",
    "update_from_json",
    "report_to_json",
    "report_from_json",
    "token_to_json",
    "token_from_json",
    "entry_to_json",
    "entry_from_json",
    "JOURNAL_FILE",
]

JOURNAL_FILE = "journal.jsonl"


# -- serialization helpers ---------------------------------------------------
#
# ``str(update)`` does not round-trip through the CLI's update parser
# (tuple reprs disagree with the update grammar on 1-tuples and quoting),
# so updates are journalled structurally.

def update_to_json(update: Update) -> dict:
    if isinstance(update, Insertion):
        return {"op": "+", "pred": update.predicate, "values": list(update.values)}
    if isinstance(update, Deletion):
        return {"op": "-", "pred": update.predicate, "values": list(update.values)}
    if isinstance(update, Modification):
        return {
            "op": "~",
            "pred": update.predicate,
            "old": list(update.old_values),
            "new": list(update.new_values),
        }
    raise TypeError(f"not a journallable update: {update!r}")


def update_from_json(payload: dict) -> Update:
    op = payload["op"]
    if op == "+":
        return Insertion(payload["pred"], tuple(payload["values"]))
    if op == "-":
        return Deletion(payload["pred"], tuple(payload["values"]))
    if op == "~":
        return Modification(
            payload["pred"], tuple(payload["old"]), tuple(payload["new"])
        )
    raise ValueError(f"unknown update op {op!r}")


def report_to_json(report: CheckReport) -> list:
    return [
        report.constraint_name,
        report.outcome.value,
        int(report.level),
        report.remote_accessed,
        report.detail,
    ]


def report_from_json(payload: list) -> CheckReport:
    name, outcome, level, remote_accessed, detail = payload
    return CheckReport(
        name, Outcome(outcome), CheckLevel(level), remote_accessed, detail
    )


def token_to_json(token: UndoToken) -> dict:
    return {
        "ins": {
            predicate: sorted((list(fact) for fact in facts), key=repr)
            for predicate, facts in sorted(token.insertions.items())
            if facts
        },
        "del": {
            predicate: sorted((list(fact) for fact in facts), key=repr)
            for predicate, facts in sorted(token.deletions.items())
            if facts
        },
    }


def token_from_json(payload: dict) -> UndoToken:
    return UndoToken(
        {
            predicate: {tuple(fact) for fact in facts}
            for predicate, facts in payload["ins"].items()
        },
        {
            predicate: {tuple(fact) for fact in facts}
            for predicate, facts in payload["del"].items()
        },
    )


def entry_to_json(entry: PendingVerdict) -> dict:
    """A queued deferred verdict as a plain descriptor.

    An overlapped-escalation future cannot ride the journal (it is a live
    handle, not data), so an entry that carries one is described by a
    *future-pending* marker instead: the predicates the fetch was covering
    and whether it had landed when the descriptor was cut.  Recovery
    re-queues the entry without a future — the resumed drain simply
    re-fetches synchronously, which is sound because drains are never
    journalled and remote site contents are fetch-order independent.
    """
    descriptor = {
        "seq": entry.seq,
        "update": update_to_json(entry.update),
        "unresolved": list(entry.unresolved),
        "reports": [report_to_json(r) for r in entry.reports.values()],
        "applied": entry.applied,
        "token": None if entry.token is None else token_to_json(entry.token),
    }
    if entry.future is not None:
        descriptor["future"] = {
            "pending": not entry.future.done(),
            "predicates": (
                None
                if entry.future_predicates is None
                else sorted(entry.future_predicates)
            ),
        }
    return descriptor


def entry_from_json(payload: dict) -> PendingVerdict:
    # A "future" marker (see entry_to_json) is informational only: the
    # restored entry never carries a live future, so the resumed drain
    # fetches its remote needs synchronously.
    reports = [report_from_json(r) for r in payload["reports"]]
    return PendingVerdict(
        seq=payload["seq"],
        update=update_from_json(payload["update"]),
        unresolved=tuple(payload["unresolved"]),
        reports={r.constraint_name: r for r in reports},
        applied=payload["applied"],
        token=(
            None if payload["token"] is None else token_from_json(payload["token"])
        ),
    )


def _encode_line(record: dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + body + b"\n"


def _decode_line(line: bytes) -> Optional[dict]:
    """Parse one journal line; ``None`` means torn/corrupt."""
    if not line.endswith(b"\n"):
        return None
    try:
        crc_text, body = line[:-1].split(b" ", 1)
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        return json.loads(body)
    except ValueError:
        return None


class JournalWriter:
    """The session-facing durability sink (``CheckSession.effect_log``).

    One writer serves a whole checker run — serial shard mode shares it
    across sessions directly (updates settle in arrival order), while
    parallel and process-pool modes route concurrently-settled effects
    through an :class:`OrderedJournalCommitter` in front of it.  The
    writer owns:

    * the record counter ``pos`` (1-based stream position of the last
      update record — batching is a maintenance optimization, so batch
      members get one record each);
    * **link-state change detection**: when a record is written and the
      attached link's ``(fetches, attempts)`` moved since the previous
      record, the link's full ``state_dict()`` rides on the record, so
      recovery restores the fetch/RNG/breaker state as of the consistent
      prefix and a resumed run draws the same faults;
    * **batched fsync** via :meth:`safe_point`, called by the session at
      each between-updates boundary: every ``sync_every`` safe points the
      buffer is written and fsynced (``sync_every=1`` is write-through);
    * the **checkpoint cadence**: ``checkpoint_every`` safe points after
      the last checkpoint, ``checkpoint_cb(pos)`` fires (the CLI wires a
      manifest writer in), always after a sync so a manifest never
      references unsynced records;
    * the ``"update"`` chaos point: ``crash_injector.hit("update")`` at
      each safe point, after the sync/checkpoint work, so a hard kill at
      an update boundary leaves a cleanly synced prefix.
    """

    def __init__(
        self,
        directory: str,
        sync_every: int = 16,
        link=None,
        checkpoint_every: int = 0,
        checkpoint_cb: Optional[Callable[[int], None]] = None,
        crash_injector=None,
    ) -> None:
        if sync_every < 1:
            raise ReproError("sync_every must be at least 1")
        if checkpoint_every < 0:
            raise ReproError("checkpoint_every must be non-negative")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, JOURNAL_FILE)
        self.sync_every = sync_every
        self.link = link
        self.checkpoint_every = checkpoint_every
        self.checkpoint_cb = checkpoint_cb
        self.crash_injector = crash_injector
        #: stream position of the last recorded update (resume appends)
        self.pos = 0
        self._buffer: list[bytes] = []
        self._safe_points_since_sync = 0
        self._safe_points_since_checkpoint = 0
        self._last_link_probe: Optional[tuple] = None
        self._closed = False
        self._fh = open(self.path, "ab")
        if self.link is not None:
            self._last_link_probe = self._link_probe()

    # -- link plumbing -----------------------------------------------------
    def _link_probe(self) -> tuple:
        stats = self.link.stats
        return (stats.fetches, stats.attempts)

    def _link_state_if_changed(self) -> Optional[dict]:
        if self.link is None:
            return None
        probe = self._link_probe()
        if probe == self._last_link_probe:
            return None
        self._last_link_probe = probe
        return self.link.state_dict()

    # -- the effect-log protocol ------------------------------------------
    def record_update(
        self,
        update: Update,
        reports: Iterable[CheckReport],
        applied: bool,
        token: Optional[UndoToken],
        entry: Optional[PendingVerdict],
    ) -> None:
        self.pos += 1
        record = {
            "t": "u",
            "pos": self.pos,
            "update": update_to_json(update),
            "reports": [report_to_json(r) for r in reports],
            "applied": applied,
            "delta": None if token is None else token_to_json(token),
            "pending": None if entry is None else entry_to_json(entry),
        }
        link_state = self._link_state_if_changed()
        if link_state is not None:
            record["link"] = link_state
        self._buffer.append(_encode_line(record))

    def record_rebalance(self, predicate: str, cuts: Iterable) -> None:
        """Journal a cut-vector change (last record wins on recovery)."""
        self._buffer.append(
            _encode_line(
                {"t": "r", "pos": self.pos, "pred": predicate, "cuts": list(cuts)}
            )
        )

    def record_future_patch(self, seq: int) -> None:
        """Journal that a pending entry's in-flight fetch has landed.

        Patches the future-pending marker a ``"u"`` record carried for the
        entry with arrival stamp ``seq``: recovery clears the marker on the
        matching descriptor, so a manifest-less resume still knows the
        overlap window closed before the record was cut.
        """
        self._buffer.append(
            _encode_line({"t": "fp", "pos": self.pos, "seq": seq})
        )

    def safe_point(self, defer_checkpoint: bool = False) -> None:
        """Between-updates boundary: sync cadence, checkpoint cadence, chaos.

        Under concurrent execution the caller passes ``defer_checkpoint``:
        the cadence still accumulates (and syncs still fire), but the
        manifest write is postponed to the next :meth:`barrier`, where the
        in-memory state provably equals the committed prefix.  A manifest
        cut mid-segment would pair a prefix position with state from
        updates whose records are still staged.
        """
        self._safe_points_since_sync += 1
        if self._safe_points_since_sync >= self.sync_every:
            self.sync()
        if self.checkpoint_every and self.checkpoint_cb is not None:
            self._safe_points_since_checkpoint += 1
            if (
                not defer_checkpoint
                and self._safe_points_since_checkpoint >= self.checkpoint_every
            ):
                self._safe_points_since_checkpoint = 0
                self.sync()
                self.checkpoint_cb(self.pos)
        if self.crash_injector is not None:
            self.crash_injector.hit("update")

    def barrier(self) -> None:
        """Fire a checkpoint deferred by ``safe_point(defer_checkpoint=True)``.

        Called at fence/flush barriers, where every record at ``pos <=
        self.pos`` is committed and the checker's in-memory state reflects
        exactly those records.  At most one manifest is cut per barrier,
        however many safe points accumulated inside the segment.
        """
        if (
            self.checkpoint_every
            and self.checkpoint_cb is not None
            and self._safe_points_since_checkpoint >= self.checkpoint_every
        ):
            self._safe_points_since_checkpoint = 0
            self.sync()
            self.checkpoint_cb(self.pos)

    # -- durability --------------------------------------------------------
    def sync(self) -> None:
        """Write and fsync everything buffered."""
        self._safe_points_since_sync = 0
        if not self._buffer:
            return
        self._fh.write(b"".join(self._buffer))
        self._buffer.clear()
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def abandon(self) -> None:
        """Drop the unsynced buffer and close — simulate a crash.

        What a real crash does to the unsynced suffix, in process: the
        kill-anywhere property test calls this instead of SIGKILLing
        itself, then recovers from what actually reached the disk.
        Idempotent, in either order with :meth:`close`.
        """
        self._buffer.clear()
        if not self._closed:
            self._closed = True
            self._fh.close()

    def checkpoint_now(self, payload_extra: Optional[dict] = None) -> None:
        """Sync and fire the checkpoint callback unconditionally (the CLI
        calls this once at end-of-stream, *before* the drain — drains are
        never journalled; recovery re-drains deterministically)."""
        self.sync()
        self._safe_points_since_checkpoint = 0
        if self.checkpoint_cb is not None:
            self.checkpoint_cb(self.pos)

    def close(self) -> None:
        """Sync and close.  Idempotent; a no-op after :meth:`abandon`."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._fh.close()


class OrderedJournalCommitter:
    """Commit concurrently-settled effects in contiguous stream order.

    Parallel and process-pool execution settle updates out of stream
    order (shard slices race), but the journal's meaning depends on
    contiguous positions: recovery refuses gaps, and a crash must lose a
    *suffix*, never punch a hole.  So effects are **emitted at settle
    time but committed in arrival order**: any thread may :meth:`stage`
    the effect for stream position ``pos``; the committer buffers it and
    flushes only the contiguous prefix into the wrapped
    :class:`JournalWriter` — each flushed record also advances the
    writer's sync cadence and passes the ``"update"`` chaos point, so a
    kill at "update K" means kill at the K-th *committed* record exactly
    as in serial mode.  Checkpoint manifests are deferred to
    :meth:`barrier` (see ``JournalWriter.safe_point``).
    """

    def __init__(self, writer: JournalWriter) -> None:
        self.writer = writer
        self._lock = threading.Lock()
        self._staged: dict[int, tuple] = {}
        self._next = writer.pos + 1

    @property
    def prefix_pos(self) -> int:
        """Stream position of the last committed record."""
        return self._next - 1

    def reserve_next(self) -> int:
        """The position a positionless (fence-serial) record will take.

        Only valid between segments, when nothing is staged — a reserved
        position is immediately satisfiable, so staging it commits it.
        """
        with self._lock:
            if self._staged:
                raise ReproError(
                    "cannot reserve a journal position while "
                    f"{len(self._staged)} staged record(s) await commit"
                )
            return self._next

    def stage(self, pos: int, effect: tuple) -> None:
        """Stage the effect for stream position ``pos`` (1-based).

        ``effect`` is ``("u", update, reports, applied, token, entry)`` or
        ``("r", predicate, cuts)``.  Thread-safe; flushes every staged
        record the new arrival makes contiguous.
        """
        with self._lock:
            if pos < self._next or pos in self._staged:
                raise ReproError(
                    f"duplicate journal record for stream position {pos} "
                    f"(committed prefix ends at {self._next - 1})"
                )
            self._staged[pos] = effect
            while self._next in self._staged:
                effect = self._staged.pop(self._next)
                self._next += 1
                if effect[0] == "u":
                    _, update, reports, applied, token, entry = effect
                    self.writer.record_update(
                        update, reports, applied=applied, token=token,
                        entry=entry,
                    )
                    self.writer.safe_point(defer_checkpoint=True)
                elif effect[0] == "r":
                    _, predicate, cuts = effect
                    self.writer.record_rebalance(predicate, cuts)
                else:
                    raise ReproError(f"unknown staged effect kind {effect[0]!r}")

    def barrier(self) -> None:
        """Assert the prefix is whole and cut any due checkpoint manifest.

        Called at fence/flush barriers after every in-flight slice has
        settled; staged leftovers here would mean a hole in the stream.
        """
        with self._lock:
            if self._staged:
                missing = min(self._staged)
                raise ReproError(
                    f"journal commit barrier with {len(self._staged)} "
                    f"staged record(s) but position {self._next} missing "
                    f"(earliest staged: {missing})"
                )
        self.writer.barrier()


def read_journal(directory: str) -> tuple[list[dict], int]:
    """Read every valid record; returns ``(records, dropped_lines)``.

    Validation stops at the first torn/corrupt line — everything after
    it is untrusted even if individually well-formed, because the
    journal's meaning depends on contiguous stream order.
    """
    path = os.path.join(directory, JOURNAL_FILE)
    records: list[dict] = []
    dropped = 0
    if not os.path.exists(path):
        return records, dropped
    with open(path, "rb") as fh:
        lines = fh.readlines()
    for index, line in enumerate(lines):
        record = _decode_line(line)
        if record is None:
            dropped = len(lines) - index
            break
        records.append(record)
    return records, dropped
