"""Relational algebra expressions with positional columns.

Theorem 5.3 promises a complete local test "expressible in relational
algebra ... likely to be within the query language of any database
system"; this package is that target language.  Expressions are
positional (columns are 0-based indices, as in the paper's ``#1=a``
selections of Example 5.4) and build from:

* :class:`RelationRef` — a base relation;
* :class:`ConstantRelation` — an inline table of tuples;
* :class:`Select` — selection by a conjunction of comparisons between
  columns and/or constants;
* :class:`Project` — projection to a list of columns (or constants);
* :class:`Product` — cartesian product;
* :class:`Union` / :class:`Difference` — set operations.

Evaluation lives in :mod:`repro.relalg.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion

from repro.datalog.atoms import ComparisonOp

__all__ = [
    "Col",
    "Lit",
    "Condition",
    "RelationRef",
    "ConstantRelation",
    "Select",
    "Project",
    "Product",
    "Union",
    "Difference",
    "Expression",
]


@dataclass(frozen=True, slots=True)
class Col:
    """A reference to a (0-based) column of the input."""

    index: int

    def __str__(self) -> str:
        return f"#{self.index + 1}"  # print 1-based, like the paper


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal value operand."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Operand = TypingUnion[Col, Lit]


@dataclass(frozen=True, slots=True)
class Condition:
    """An atomic selection condition ``left op right``."""

    left: Operand
    op: ComparisonOp
    right: Operand

    def __str__(self) -> str:
        return f"{self.left}{self.op}{self.right}"


@dataclass(frozen=True)
class RelationRef:
    """A base relation, read from the database at evaluation time."""

    name: str
    arity: int

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstantRelation:
    """An inline relation (used for singleton "the inserted tuple" tables)."""

    tuples: tuple[tuple, ...]
    arity: int

    def __str__(self) -> str:
        return f"{{{', '.join(map(repr, self.tuples))}}}"


@dataclass(frozen=True)
class Select:
    """Selection: keep tuples satisfying every condition."""

    source: "Expression"
    conditions: tuple[Condition, ...]

    def __str__(self) -> str:
        conds = " & ".join(str(c) for c in self.conditions)
        return f"select[{conds}]({self.source})"


@dataclass(frozen=True)
class Project:
    """Projection: each output column is an input column or a constant."""

    source: "Expression"
    columns: tuple[Operand, ...]

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"project[{cols}]({self.source})"


@dataclass(frozen=True)
class Product:
    """Cartesian product; right-hand columns shift by the left arity."""

    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


@dataclass(frozen=True)
class Union:
    """Set union of same-arity expressions (empty union is empty)."""

    sources: tuple["Expression", ...]

    def __str__(self) -> str:
        if not self.sources:
            return "empty"
        return " u ".join(f"({s})" for s in self.sources)


@dataclass(frozen=True)
class Difference:
    """Set difference ``left - right``."""

    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


Expression = TypingUnion[
    RelationRef, ConstantRelation, Select, Project, Product, Union, Difference
]


def arity_of(expression: Expression) -> int:
    """The output arity of *expression* (validating arities on the way)."""
    if isinstance(expression, RelationRef):
        return expression.arity
    if isinstance(expression, ConstantRelation):
        return expression.arity
    if isinstance(expression, Select):
        return arity_of(expression.source)
    if isinstance(expression, Project):
        return len(expression.columns)
    if isinstance(expression, Product):
        return arity_of(expression.left) + arity_of(expression.right)
    if isinstance(expression, Union):
        arities = {arity_of(s) for s in expression.sources}
        if len(arities) > 1:
            raise ValueError(f"union of mismatched arities: {sorted(arities)}")
        return arities.pop() if arities else 0
    if isinstance(expression, Difference):
        left = arity_of(expression.left)
        right = arity_of(expression.right)
        if left != right:
            raise ValueError(f"difference of mismatched arities: {left} vs {right}")
        return left
    raise TypeError(f"not a relational algebra expression: {expression!r}")
