"""Relational algebra: expressions, evaluator, CQ compiler."""

from repro.relalg.evaluate import evaluate_expression, is_nonempty
from repro.relalg.expressions import (
    Col,
    Condition,
    ConstantRelation,
    Difference,
    Expression,
    Lit,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    arity_of,
)
from repro.relalg.from_cq import cq_to_algebra

__all__ = [
    "Col",
    "Condition",
    "ConstantRelation",
    "Difference",
    "Expression",
    "Lit",
    "Product",
    "Project",
    "RelationRef",
    "Select",
    "Union",
    "arity_of",
    "cq_to_algebra",
    "evaluate_expression",
    "is_nonempty",
]
