"""Compile relational algebra — and Theorem 5.3 local tests — to SQL.

Theorem 5.3 promises a complete local test "likely to be within the
query language of any database system"; this module takes the promise
literally.  Two compilers live here:

* :func:`expression_to_sql` turns any
  :mod:`~repro.relalg.expressions` tree into one parameterized SQLite
  ``SELECT``: products and selections become joins, repeated-variable
  and constant conditions become ``WHERE`` clauses, unions become
  ``UNION`` and differences ``EXCEPT``.  Every literal binds as a
  parameter and every identifier is quoted, so adversarial predicate
  names and constants cannot escape into the SQL text.

* :func:`compile_local_test` compiles an
  :class:`~repro.localtests.algebraic.AlgebraicLocalTest` *once*,
  symbolically over the not-yet-known inserted tuple: each component of
  the tuple becomes a parameter slot, each Theorem 5.3 skeleton becomes
  one ``SELECT 1 FROM L WHERE ...`` branch, and skeleton conditions
  that depend on the inserted values become runtime parameter guards
  (``? = ?``) instead of branch pruning.  The resulting
  ``SELECT EXISTS(... UNION ALL ...)`` statement is executed many times
  with only the parameter vector changing — the compile-once /
  execute-many shape the statement cache preserves.

Zero-arity relations are represented by a single phantom column ``c0``
holding ``0`` (SQL has no zero-column tables); callers translate a
phantom row back to ``()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.ops import ComparisonOp
from repro.relalg.expressions import (
    Col,
    Condition,
    ConstantRelation,
    Difference,
    Expression,
    Lit,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    arity_of,
)

__all__ = [
    "quote_identifier",
    "SqlQuery",
    "expression_to_sql",
    "CompiledLocalTest",
    "compile_local_test",
]

#: every ComparisonOp value is already a valid SQLite operator
_SQL_OPS = {op: op.value for op in ComparisonOp}


def quote_identifier(name: str) -> str:
    """Quote *name* for use as a SQL identifier.

    Internal double quotes are doubled per the SQL standard; a NUL byte
    cannot be represented in a SQLite identifier at all and is rejected.
    """
    if "\x00" in name:
        raise EvaluationError(f"identifier {name!r} contains a NUL byte")
    return '"' + name.replace('"', '""') + '"'


def _columns(arity: int) -> list[str]:
    """The physical column list for a logical arity (phantom for 0)."""
    return [f"c{i}" for i in range(max(arity, 1))]


@dataclass(frozen=True)
class SqlQuery:
    """One compiled ``SELECT``: text, bound parameters, logical arity."""

    sql: str
    params: tuple
    arity: int

    def rows_to_tuples(self, rows) -> frozenset[tuple]:
        """Translate fetched rows back to logical tuples (phantom-aware)."""
        if self.arity == 0:
            return frozenset(() for _ in rows)
        return frozenset(tuple(row) for row in rows)


def _operand_sql(operand, params: list) -> str:
    if isinstance(operand, Col):
        return f"c{operand.index}"
    assert isinstance(operand, Lit)
    params.append(operand.value)
    return "?"


def _condition_sql(condition: Condition, params: list) -> str:
    left = _operand_sql(condition.left, params)
    op = _SQL_OPS[condition.op]
    right = _operand_sql(condition.right, params)
    return f"{left} {op} {right}"


def _empty_select(arity: int) -> str:
    cols = ", ".join(f"NULL AS {c}" for c in _columns(arity))
    return f"SELECT {cols} WHERE 0"


def _compile(expression: Expression, params: list) -> str:
    if isinstance(expression, RelationRef):
        cols = ", ".join(_columns(expression.arity))
        return f"SELECT {cols} FROM {quote_identifier(expression.name)}"
    if isinstance(expression, ConstantRelation):
        if not expression.tuples:
            return _empty_select(expression.arity)
        selects = []
        for row in expression.tuples:
            if expression.arity == 0:
                selects.append("SELECT 0 AS c0")
                continue
            cells = []
            for column, value in zip(_columns(expression.arity), row):
                params.append(value)
                cells.append(f"? AS {column}")
            selects.append("SELECT " + ", ".join(cells))
        return " UNION ALL ".join(selects)
    if isinstance(expression, Select):
        source = _compile(expression.source, params)
        if not expression.conditions:
            return f"SELECT * FROM ({source})"
        clauses = " AND ".join(
            _condition_sql(c, params) for c in expression.conditions
        )
        return f"SELECT * FROM ({source}) WHERE {clauses}"
    if isinstance(expression, Project):
        # The projection cells precede the source subquery in the SQL
        # text, so their parameters must precede the source's too.
        inner_params: list = []
        source = _compile(expression.source, inner_params)
        if not expression.columns:
            params.extend(inner_params)
            return f"SELECT 0 AS c0 FROM ({source})"
        cells = []
        for position, operand in enumerate(expression.columns):
            cells.append(f"{_operand_sql(operand, params)} AS o{position}")
        params.extend(inner_params)
        # Rename o* back to c* in a wrapper so Col references inside the
        # projection read the *source* columns, never the outputs.
        body = ", ".join(cells)
        outer = ", ".join(
            f"o{i} AS c{i}" for i in range(len(expression.columns))
        )
        return f"SELECT {outer} FROM (SELECT {body} FROM ({source}))"
    if isinstance(expression, Product):
        left_arity = arity_of(expression.left)
        right_arity = arity_of(expression.right)
        left = _compile(expression.left, params)
        right = _compile(expression.right, params)
        cells = [f"a.c{i} AS c{i}" for i in range(left_arity)]
        cells.extend(
            f"b.c{j} AS c{left_arity + j}" for j in range(right_arity)
        )
        if not cells:
            cells = ["0 AS c0"]
        return (
            f"SELECT {', '.join(cells)} FROM ({left}) AS a, ({right}) AS b"
        )
    if isinstance(expression, Union):
        arity = arity_of(expression)  # validates member arities
        if not expression.sources:
            return _empty_select(arity)
        parts = [
            f"SELECT * FROM ({_compile(source, params)})"
            for source in expression.sources
        ]
        return " UNION ".join(parts)
    if isinstance(expression, Difference):
        arity_of(expression)  # validates the two arities match
        left = _compile(expression.left, params)
        right = _compile(expression.right, params)
        return f"SELECT * FROM ({left}) EXCEPT SELECT * FROM ({right})"
    raise TypeError(f"not a relational algebra expression: {expression!r}")


def expression_to_sql(expression: Expression) -> SqlQuery:
    """Compile *expression* to one parameterized SQLite ``SELECT``."""
    params: list = []
    sql = _compile(expression, params)
    return SqlQuery(sql, tuple(params), arity_of(expression))


# -- Theorem 5.3 local tests, compiled once over a symbolic tuple -------------

# A symbolic parameter value: component *i* of the (future) inserted
# tuple, or a constant baked in at compile time.  Both bind as SQL
# parameters at execution — constants never enter the SQL text.
_COMP = "c"
_CONST = "v"


def _sym_component(index: int) -> tuple:
    return (_COMP, index)


def _sym_const(value: object) -> tuple:
    return (_CONST, value)


@dataclass(frozen=True)
class CompiledLocalTest:
    """One Theorem 5.3 test as a reusable ``SELECT EXISTS`` statement.

    ``sql`` is ``None`` when every skeleton branch was pruned statically
    (the test is constant-False for any tuple whose reduction exists).
    ``param_plan`` names, in positional order, what each ``?`` binds:
    ``("c", i)`` for component *i* of the inserted tuple, ``("v", x)``
    for the compile-time constant *x*.  ``index_columns`` lists the
    column sets the branches bind with equalities — the composite
    indexes that make each branch an indexed probe.
    """

    predicate: str
    arity: int
    sql: str | None
    param_plan: tuple[tuple, ...]
    index_columns: tuple[tuple[int, ...], ...]
    branches: int

    def bind(self, inserted: tuple) -> list:
        """The parameter vector for one concrete inserted tuple."""
        return [
            inserted[spec[1]] if spec[0] == _COMP else spec[1]
            for spec in self.param_plan
        ]


def _symbolic_branch(test, skeleton):
    """The symbolic skeleton conditions: ``(conditions, guards)`` where
    conditions are ``(column, sym)`` equalities on L and guards are
    ``(sym, sym)`` equalities between parameters, or ``None`` when the
    skeleton is inconsistent for *every* inserted tuple.

    Mirrors ``AlgebraicLocalTest._skeleton_conditions`` with the inserted
    tuple left symbolic: decisions that depend on concrete component
    values become runtime guards instead of static pruning.
    """
    from repro.datalog.terms import Variable
    from repro.localtests.algebraic import _Component

    conditions: list[tuple[int, tuple]] = []
    guards: list[tuple[tuple, tuple]] = []
    seen: set[tuple] = set()
    var_image: dict = {}  # remote var -> ("var", v) | ("sym", sym)

    def resolve(term):
        if isinstance(term, _Component):
            return ("sym", _sym_component(term.index))
        if isinstance(term, Variable):
            return ("var", term)
        return ("sym", _sym_const(term))

    def syms_equal(first, second):
        """Constrain two symbolic values to be equal; False = statically
        impossible, True = statically satisfied, otherwise a guard."""
        if first == second:
            return True
        if first[0] == _CONST and second[0] == _CONST:
            return first[1] == second[1]
        guards.append((first, second))
        return True

    for i, target_index in enumerate(skeleton):
        source = test._template[i]
        target = test._template[target_index]
        for a, b in zip(source.args, target.args):
            image = resolve(b)
            if isinstance(a, _Component):
                if image[0] == "var":
                    return None  # a concrete column cannot map to a variable
            if isinstance(a, _Component):
                key = (a.index, image[1])
                if key not in seen:
                    seen.add(key)
                    conditions.append((a.index, image[1]))
            elif isinstance(a, Variable):
                existing = var_image.get(a)
                if existing is None:
                    var_image[a] = image
                elif existing != image:
                    if existing[0] == "var" or image[0] == "var":
                        return None  # distinct variables never unify
                    if not syms_equal(existing[1], image[1]):
                        return None
            else:
                # A constant of C itself: its image must be that value.
                if image[0] == "var":
                    return None
                if not syms_equal(_sym_const(a), image[1]):
                    return None
    return conditions, guards


def compile_local_test(test) -> CompiledLocalTest:
    """Compile *test* (an :class:`AlgebraicLocalTest`) to one reusable
    parameterized statement.

    The Python-side :meth:`~AlgebraicLocalTest.reduction_exists` check
    stays with the caller — it is a handful of tuple comparisons and
    gates whether the statement runs at all.
    """
    table = quote_identifier(test.local_predicate)
    param_plan: list[tuple] = []
    branch_sql: list[str] = []
    index_columns: set[tuple[int, ...]] = set()

    pattern_clauses: list[str] = []
    pattern_params: list[tuple] = []
    for a, b in test._pattern_eq_cols:
        pattern_clauses.append(f"c{a} = c{b}")
    for column, value in test._pattern_const_cols:
        pattern_clauses.append(f"c{column} = ?")
        pattern_params.append(_sym_const(value))

    for skeleton in test.skeletons:
        branch = _symbolic_branch(test, skeleton)
        if branch is None:
            continue
        conditions, guards = branch
        clauses = list(pattern_clauses)
        params = list(pattern_params)
        bound = {column for column, _ in test._pattern_const_cols}
        for column, sym in conditions:
            clauses.append(f"c{column} = ?")
            params.append(sym)
            bound.add(column)
        for first, second in guards:
            clauses.append("? = ?")
            params.append(first)
            params.append(second)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        branch_sql.append(f"SELECT 1 FROM {table}{where}")
        param_plan.extend(params)
        if bound:
            index_columns.add(tuple(sorted(bound)))

    if not branch_sql:
        sql = None
    else:
        union = " UNION ALL ".join(branch_sql)
        sql = f"SELECT EXISTS ({union})"
    return CompiledLocalTest(
        predicate=test.local_predicate,
        arity=test.arity,
        sql=sql,
        param_plan=tuple(param_plan),
        index_columns=tuple(sorted(index_columns)),
        branches=len(branch_sql),
    )
