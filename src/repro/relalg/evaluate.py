"""Evaluation of relational algebra expressions over a Database.

``Select`` over a ``Product`` with cross-factor equality conditions is
evaluated as a hash join: the product is flattened into its factors and
built left to right, probing a hash index on the equated columns instead
of materializing the full cartesian product.  Output is identical to the
naive evaluation (the regression tests hold the two pointwise equal);
only the intermediate size changes.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.arith.order import comparison_holds
from repro.datalog.database import Database
from repro.ops import ComparisonOp
from repro.relalg.expressions import (
    Col,
    Condition,
    ConstantRelation,
    Difference,
    Expression,
    Lit,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
    arity_of,
)

__all__ = ["evaluate_expression", "is_nonempty"]


def _operand_value(operand, row: tuple) -> object:
    if isinstance(operand, Col):
        return row[operand.index]
    assert isinstance(operand, Lit)
    return operand.value


def _condition_holds(condition: Condition, row: tuple) -> bool:
    return comparison_holds(
        condition.op,
        _operand_value(condition.left, row),
        _operand_value(condition.right, row),
    )


def _flatten_product(expression: Expression) -> list[Expression]:
    if isinstance(expression, Product):
        return _flatten_product(expression.left) + _flatten_product(
            expression.right
        )
    return [expression]


def _max_col(condition: Condition) -> int:
    return max(
        (
            operand.index
            for operand in (condition.left, condition.right)
            if isinstance(operand, Col)
        ),
        default=-1,
    )


def _try_hash_join(expression: Select, db: Database):
    """Evaluate ``Select(Product(...), conditions)`` as a left-to-right
    hash join, or return ``None`` when no equality condition crosses a
    factor boundary (the naive path is then no worse).

    Equality-key matching uses Python hash/equality, which coincides with
    ``comparison_holds`` EQ over the value domain (numeric equality
    across int/float/bool, code-point equality for strings, False across
    strata) — so the output is exactly the naive evaluation's.
    """
    factors = _flatten_product(expression.source)
    boundaries = [0]
    for factor in factors:
        boundaries.append(boundaries[-1] + arity_of(factor))
    total = boundaries[-1]

    def crosses(condition: Condition) -> bool:
        if condition.op is not ComparisonOp.EQ:
            return False
        if not (
            isinstance(condition.left, Col)
            and isinstance(condition.right, Col)
        ):
            return False
        a, b = condition.left.index, condition.right.index
        if not (0 <= a < total and 0 <= b < total):
            return False
        factor_of_a = next(i for i in range(len(factors)) if a < boundaries[i + 1])
        factor_of_b = next(i for i in range(len(factors)) if b < boundaries[i + 1])
        return factor_of_a != factor_of_b

    if not any(crosses(condition) for condition in expression.conditions):
        return None

    # Evaluate every factor up front (the naive path does too, so arity
    # errors surface identically even when an early factor is empty).
    factor_rows = [evaluate_expression(factor, db) for factor in factors]

    pending = dict(enumerate(expression.conditions))
    rows: list[tuple] = [()]
    prefix = 0
    for width, fact_rows in zip(
        (arity_of(factor) for factor in factors), factor_rows
    ):
        new_prefix = prefix + width
        keys: list[tuple[int, int, int]] = []  # (cond idx, prefix col, factor col)
        for idx, condition in pending.items():
            if condition.op is not ComparisonOp.EQ:
                continue
            if not (
                isinstance(condition.left, Col)
                and isinstance(condition.right, Col)
            ):
                continue
            a, b = condition.left.index, condition.right.index
            lo, hi = min(a, b), max(a, b)
            if lo < prefix and prefix <= hi < new_prefix:
                keys.append((idx, lo, hi - prefix))
        if keys and rows:
            for idx, _, _ in keys:
                del pending[idx]
            index: dict = {}
            for fact_row in fact_rows:
                key = tuple(fact_row[fcol] for _, _, fcol in keys)
                index.setdefault(key, []).append(fact_row)
            rows = [
                prefix_row + fact_row
                for prefix_row in rows
                for fact_row in index.get(
                    tuple(prefix_row[pcol] for _, pcol, _ in keys), ()
                )
            ]
        else:
            rows = [
                prefix_row + fact_row
                for prefix_row in rows
                for fact_row in fact_rows
            ]
        prefix = new_prefix
        # Apply every remaining condition the prefix now fully binds.
        filters = [
            (idx, condition)
            for idx, condition in pending.items()
            if _max_col(condition) < prefix
        ]
        if filters and rows:
            for idx, _ in filters:
                del pending[idx]
            rows = [
                row
                for row in rows
                if all(
                    _condition_holds(condition, row)
                    for _, condition in filters
                )
            ]
    # Conditions referencing columns past the product's arity: evaluate
    # them per row exactly as the naive path would (IndexError included).
    if pending and rows:
        rows = [
            row
            for row in rows
            if all(
                _condition_holds(condition, row)
                for condition in pending.values()
            )
        ]
    return frozenset(rows)


def evaluate_expression(expression: Expression, db: Database) -> frozenset[tuple]:
    """Evaluate *expression* against *db*, returning a set of tuples."""
    if isinstance(expression, RelationRef):
        relation = db.relation(expression.name)
        if relation is None:
            return frozenset()
        if relation.arity != expression.arity:
            raise EvaluationError(
                f"relation {expression.name!r} has arity {relation.arity}, "
                f"expression expects {expression.arity}"
            )
        return frozenset(relation)
    if isinstance(expression, ConstantRelation):
        return frozenset(expression.tuples)
    if isinstance(expression, Select):
        if isinstance(expression.source, Product):
            joined = _try_hash_join(expression, db)
            if joined is not None:
                return joined
        source = evaluate_expression(expression.source, db)
        return frozenset(
            row
            for row in source
            if all(_condition_holds(c, row) for c in expression.conditions)
        )
    if isinstance(expression, Project):
        source = evaluate_expression(expression.source, db)
        return frozenset(
            tuple(_operand_value(op, row) for op in expression.columns)
            for row in source
        )
    if isinstance(expression, Product):
        left = evaluate_expression(expression.left, db)
        right = evaluate_expression(expression.right, db)
        return frozenset(l + r for l in left for r in right)
    if isinstance(expression, Union):
        result: set[tuple] = set()
        for source in expression.sources:
            result |= evaluate_expression(source, db)
        return frozenset(result)
    if isinstance(expression, Difference):
        left = evaluate_expression(expression.left, db)
        right = evaluate_expression(expression.right, db)
        return frozenset(left - right)
    raise TypeError(f"not a relational algebra expression: {expression!r}")


def is_nonempty(expression: Expression, db: Database) -> bool:
    """Nonemptiness — the form in which Theorem 5.3 states its test."""
    return bool(evaluate_expression(expression, db))
