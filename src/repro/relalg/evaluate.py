"""Evaluation of relational algebra expressions over a Database."""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.arith.order import comparison_holds
from repro.datalog.database import Database
from repro.relalg.expressions import (
    Col,
    Condition,
    ConstantRelation,
    Difference,
    Expression,
    Lit,
    Product,
    Project,
    RelationRef,
    Select,
    Union,
)

__all__ = ["evaluate_expression", "is_nonempty"]


def _operand_value(operand, row: tuple) -> object:
    if isinstance(operand, Col):
        return row[operand.index]
    assert isinstance(operand, Lit)
    return operand.value


def _condition_holds(condition: Condition, row: tuple) -> bool:
    return comparison_holds(
        condition.op,
        _operand_value(condition.left, row),
        _operand_value(condition.right, row),
    )


def evaluate_expression(expression: Expression, db: Database) -> frozenset[tuple]:
    """Evaluate *expression* against *db*, returning a set of tuples."""
    if isinstance(expression, RelationRef):
        relation = db.relation(expression.name)
        if relation is None:
            return frozenset()
        if relation.arity != expression.arity:
            raise EvaluationError(
                f"relation {expression.name!r} has arity {relation.arity}, "
                f"expression expects {expression.arity}"
            )
        return frozenset(relation)
    if isinstance(expression, ConstantRelation):
        return frozenset(expression.tuples)
    if isinstance(expression, Select):
        source = evaluate_expression(expression.source, db)
        return frozenset(
            row
            for row in source
            if all(_condition_holds(c, row) for c in expression.conditions)
        )
    if isinstance(expression, Project):
        source = evaluate_expression(expression.source, db)
        return frozenset(
            tuple(_operand_value(op, row) for op in expression.columns)
            for row in source
        )
    if isinstance(expression, Product):
        left = evaluate_expression(expression.left, db)
        right = evaluate_expression(expression.right, db)
        return frozenset(l + r for l in left for r in right)
    if isinstance(expression, Union):
        result: set[tuple] = set()
        for source in expression.sources:
            result |= evaluate_expression(source, db)
        return frozenset(result)
    if isinstance(expression, Difference):
        left = evaluate_expression(expression.left, db)
        right = evaluate_expression(expression.right, db)
        return frozenset(left - right)
    raise TypeError(f"not a relational algebra expression: {expression!r}")


def is_nonempty(expression: Expression, db: Database) -> bool:
    """Nonemptiness — the form in which Theorem 5.3 states its test."""
    return bool(evaluate_expression(expression, db))
