"""Compiling conjunctive queries (with comparisons) to relational algebra.

Witnesses the Section 1 requirement that tests "can be expressed in the
query language of the database system": a CQ or CQC compiles into a
product of its relations, a selection for repeated variables / constants
/ comparisons, and a projection onto the head.  Negated subgoals are out
of scope here (they need set difference per subgoal and are not required
by any theorem we compile).
"""

from __future__ import annotations

from repro.errors import NotApplicableError
from repro.datalog.atoms import ComparisonOp
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.relalg.expressions import (
    Col,
    Condition,
    ConstantRelation,
    Expression,
    Lit,
    Product,
    Project,
    RelationRef,
    Select,
)

__all__ = ["cq_to_algebra"]


def cq_to_algebra(rule: Rule) -> Expression:
    """Compile a CQ/CQC *rule* into a relational algebra expression whose
    value is the set of head tuples."""
    if rule.negations:
        raise NotApplicableError("negated subgoals are not supported by cq_to_algebra")

    subgoals = rule.ordinary_subgoals
    if not subgoals:
        # A body of pure ground comparisons: the head is produced iff all
        # hold.  Encode as a selection over a unit relation.
        unit: Expression = ConstantRelation(((),), 0)
        conditions = []
        for comparison in rule.comparisons:
            if isinstance(comparison.left, Variable) or isinstance(comparison.right, Variable):
                raise NotApplicableError("unsafe rule: comparison variable never bound")
            conditions.append(
                Condition(Lit(comparison.left.value), comparison.op, Lit(comparison.right.value))
            )
        selected: Expression = Select(unit, tuple(conditions)) if conditions else unit
        head = tuple(Lit(t.value) for t in rule.head.args)  # type: ignore[union-attr]
        return Project(selected, head)

    # Product of all subgoal relations; record where each variable lands.
    expression: Expression | None = None
    offset = 0
    first_column: dict[Variable, int] = {}
    conditions: list[Condition] = []
    for atom in subgoals:
        ref = RelationRef(atom.predicate, atom.arity)
        expression = ref if expression is None else Product(expression, ref)
        for position, term in enumerate(atom.args):
            column = offset + position
            if isinstance(term, Constant):
                conditions.append(Condition(Col(column), ComparisonOp.EQ, Lit(term.value)))
            else:
                if term in first_column:
                    conditions.append(
                        Condition(Col(column), ComparisonOp.EQ, Col(first_column[term]))
                    )
                else:
                    first_column[term] = column
        offset += atom.arity

    for comparison in rule.comparisons:
        def operand(term):
            if isinstance(term, Constant):
                return Lit(term.value)
            if term not in first_column:
                raise NotApplicableError(
                    f"unsafe rule: comparison variable {term} never bound"
                )
            return Col(first_column[term])

        conditions.append(
            Condition(operand(comparison.left), comparison.op, operand(comparison.right))
        )

    assert expression is not None
    if conditions:
        expression = Select(expression, tuple(conditions))

    head_columns = []
    for term in rule.head.args:
        if isinstance(term, Constant):
            head_columns.append(Lit(term.value))
        else:
            if term not in first_column:
                raise NotApplicableError(f"unsafe rule: head variable {term} never bound")
            head_columns.append(Col(first_column[term]))
    return Project(expression, tuple(head_columns))
