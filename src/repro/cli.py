"""Command-line interface: classify, check, test, and subsume constraints.

Usage (see ``python -m repro --help``)::

    python -m repro classify constraints.dl
    python -m repro check constraints.dl --db data.json --update '+emp(ann, toys, 50)'
    python -m repro local-test constraints.dl --db data.json \\
        --local emp --update '+emp(bob, toys, 60)'
    python -m repro subsume constraints.dl --target NAME

File formats:

* constraints: datalog text; ``%%`` lines separate named constraints, a
  ``%% name`` header names the one that follows (unnamed constraints get
  ``c1``, ``c2``, ...);
* databases: JSON mapping predicate names to lists of tuples (lists).

Update syntax: ``+pred(v1, v2, ...)`` to insert, ``-pred(...)`` to
delete, ``~pred(old, ...)->(new, ...)`` to modify; values parse like
datalog terms (numbers, lowercase names, or quoted strings).

``check-stream`` reads one update per line (blank lines and ``#``
comments ignored) from a file or stdin and drives the incremental
:class:`~repro.core.session.CheckSession` through the whole stream,
printing per-update verdicts and the protocol statistics.  With
``--batch [N]`` consecutive safe updates share one maintenance pass
(identical verdicts); with ``--transaction`` the stream is atomic and
any rejection rolls the local site back exactly.

The ``--fault-rate`` / ``--outage`` / ``--retries`` /
``--remote-timeout`` / ``--remote-latency`` / ``--fault-seed`` flags
simulate an unreliable remote site behind a retry/backoff/circuit-
breaker link: updates whose escalation cannot reach the remote come
back DEFERRED, are drained by ``resolve_pending`` once the link
recovers, and the run ends with a degradation summary.  ``--pessimistic``
holds updates back (instead of applying optimistically) until every
verdict is SATISFIED.

``--shards N`` partitions the local site into N per-shard check
sessions (verdicts identical to a single session); ``--parallel N``
additionally runs shard-confined updates on N worker threads with
explicit fences around cross-shard work, and ``--overlap-remote``
issues remote escalations asynchronously so the stream keeps flowing
while a slow fetch is in flight.  ``--executor process`` moves each
shard session into its own worker process (escalations bounce through
the parent's fault-tolerant link; verdicts stay identical), and
``--rebalance [N]`` enables live key-range rebalancing: every N routed
updates a hot shard's range is split at its sampled median key and the
affected facts (and pending verdicts) migrate at a fence.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.constraints.constraint import Constraint, ConstraintSet
from repro.constraints.subsumption import subsumes
from repro.core.engine import PartialInfoChecker
from repro.core.outcomes import Outcome
from repro.datalog.database import Database
from repro.datalog.parser import parse_program, parse_term_list
from repro.datalog.terms import Constant
from repro.updates.update import Deletion, Insertion, Modification, Update

__all__ = ["main", "parse_update", "load_constraints", "load_database", "load_updates"]


def load_constraints(path: str) -> ConstraintSet:
    """Parse a constraint file into a named ConstraintSet."""
    with open(path) as handle:
        text = handle.read()
    blocks: list[tuple[str | None, list[str]]] = [(None, [])]
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("%%"):
            name = stripped[2:].strip() or None
            blocks.append((name, []))
        else:
            blocks[-1][1].append(line)
    constraints = ConstraintSet()
    counter = 0
    for name, lines in blocks:
        source = "\n".join(lines).strip()
        if not source:
            continue
        program = parse_program(source)
        if not program.rules:
            continue  # a comment-only block (e.g. a file header)
        counter += 1
        constraints.add(Constraint(program, name or f"c{counter}"))
    return constraints


def load_database(path: str) -> Database:
    """Load a JSON database: {"pred": [[v, ...], ...], ...}."""
    with open(path) as handle:
        raw = json.load(handle)
    db = Database()
    for predicate, facts in raw.items():
        for fact in facts:
            db.insert(predicate, tuple(fact))
    return db


def _parse_values(inner: str, context: str) -> tuple:
    # Tokenize rather than split on raw commas: a quoted value like
    # "a,b" is one constant, not two.
    values: list[object] = []
    for term in parse_term_list(inner):
        if not isinstance(term, Constant):
            raise ReproError(f"update values must be constants: {term!r}")
        values.append(term.value)
    return tuple(values)


def parse_update(text: str) -> Update:
    """Parse ``+pred(a, 1)`` / ``-pred(a, 1)`` /
    ``~pred(a, 1)->(b, 2)`` into an update object."""
    text = text.strip()
    if not text or text[0] not in "+-~":
        raise ReproError(f"update must start with '+', '-' or '~': {text!r}")
    sign, rest = text[0], text[1:].strip()
    open_paren = rest.find("(")
    if open_paren < 0 or not rest.endswith(")"):
        raise ReproError(f"update must look like +pred(v1, v2): {text!r}")
    predicate = rest[:open_paren].strip()
    if sign == "~":
        body = rest[open_paren:]
        arrow = body.find("->")
        if arrow < 0 or not body[:arrow].rstrip().endswith(")"):
            raise ReproError(
                f"modification must look like ~pred(old)->(new): {text!r}"
            )
        old_part = body[:arrow].strip()
        new_part = body[arrow + 2 :].strip()
        if not (new_part.startswith("(") and new_part.endswith(")")):
            raise ReproError(
                f"modification must look like ~pred(old)->(new): {text!r}"
            )
        return Modification(
            predicate,
            _parse_values(old_part[1:-1], text),
            _parse_values(new_part[1:-1], text),
        )
    values = _parse_values(rest[open_paren + 1 : -1], text)
    if sign == "+":
        return Insertion(predicate, values)
    return Deletion(predicate, values)


def _cmd_classify(args: argparse.Namespace) -> int:
    constraints = load_constraints(args.constraints)
    width = max((len(c.name) for c in constraints), default=4)
    for constraint in constraints:
        print(f"{constraint.name:<{width}}  {constraint.constraint_class.name}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    constraints = load_constraints(args.constraints)
    db = load_database(args.db) if args.db else Database()
    if args.update:
        update = parse_update(args.update)
        local_predicates = set(args.local or db.predicates() or {update.predicate})
        checker = PartialInfoChecker(constraints, local_predicates)
        local = db.restricted_to(local_predicates)
        remote = db.restricted_to(db.predicates() - local_predicates)
        exit_code = 0
        for report in checker.check(update, local, remote):
            print(report)
            if report.outcome is Outcome.VIOLATED:
                exit_code = 1
        return exit_code
    # No update: plain evaluation.
    violated = constraints.violated(db)
    for constraint in constraints:
        status = "VIOLATED" if constraint in violated else "holds"
        print(f"{constraint.name}: {status}")
    return 1 if violated else 0


def load_updates(path: str | None) -> list[Update]:
    """Read updates, one per line, from *path* (``-``/None = stdin)."""
    if path in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    updates: list[Update] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        updates.append(parse_update(stripped))
    return updates


def _build_remote_link(args: argparse.Namespace, remote_site, rate=None):
    """The fault-tolerant link for ``check-stream``, or ``None`` when no
    fault/retry flag asks for one.  *rate* overrides ``--fault-rate``
    for this site (``--site-fault-rate``)."""
    from repro.distributed.faults import FaultModel, UnreliableRemote, parse_outage
    from repro.distributed.remote import FetchPolicy, RemoteLink

    effective_rate = args.fault_rate if rate is None else rate
    faulty = bool(
        effective_rate or args.outage or args.remote_latency
        or args.remote_timeout is not None
    )
    if not faulty and args.retries is None:
        if getattr(args, "overlap_remote", False):
            # Overlap needs a link (the async queue lives there) even
            # with a perfectly healthy remote.
            return RemoteLink(remote_site)
        return None
    faults = FaultModel(
        failure_rate=effective_rate,
        latency=args.remote_latency,
        outages=tuple(parse_outage(spec) for spec in args.outage or ()),
        seed=args.fault_seed,
    )
    policy = FetchPolicy(
        max_attempts=args.retries if args.retries is not None else 4,
        attempt_timeout=args.remote_timeout,
    )
    return RemoteLink(
        UnreliableRemote(remote_site, faults), policy, seed=args.fault_seed
    )


def _parse_site_fault_rates(args: argparse.Namespace) -> dict[str, float]:
    """``--site-fault-rate SITE=P`` specs (a bare ``P`` keys ``"*"``,
    the every-site default).

    Rejects duplicate site names and probabilities outside ``[0, 1]``
    instead of silently letting the last (or a nonsensical) spec win;
    unknown site names are checked against the built topology by the
    caller."""
    rates: dict[str, float] = {}
    for spec in getattr(args, "site_fault_rate", None) or ():
        name, sep, value = spec.partition("=")
        key = name.strip() if sep else "*"
        try:
            rate = float(value if sep else spec)
        except ValueError:
            raise ReproError(
                f"--site-fault-rate must look like SITE=P or P: {spec!r}"
            )
        if sep and not key:
            raise ReproError(
                f"--site-fault-rate must look like SITE=P or P: {spec!r}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ReproError(
                f"--site-fault-rate probability must be in [0, 1]: {spec!r}"
            )
        if key in rates:
            label = "the default rate" if key == "*" else f"site {key!r}"
            raise ReproError(
                f"--site-fault-rate given twice for {label}: {spec!r} "
                f"(already {rates[key]})"
            )
        rates[key] = rate
    return rates


def _build_sites(args: argparse.Namespace, db: Database, local_predicates: set[str]):
    """The (possibly federated) site topology for ``check-stream``.

    ``--sites 2`` (the default) is the classic local + single-remote
    split.  ``--sites N`` with N > 2 deals the remote predicates
    round-robin (sorted, so deterministic) across N-1 named remote
    sites ``remote1`` .. ``remoteN-1``."""
    from repro.distributed.site import FederatedDatabase, Site, TwoSiteDatabase

    total = args.sites if getattr(args, "sites", None) else 2
    if total < 2:
        raise ReproError("--sites needs at least 2 (one local, one remote)")
    local = Site("local", db.restricted_to(local_predicates))
    remote_predicates = sorted(db.predicates() - local_predicates)
    if total == 2:
        return TwoSiteDatabase(
            local=local,
            remote=Site("remote", db.restricted_to(set(remote_predicates))),
            local_predicates=local_predicates,
        )
    count = total - 1
    placement: dict[str, list[str]] = {
        f"remote{i + 1}": [] for i in range(count)
    }
    for index, predicate in enumerate(remote_predicates):
        placement[f"remote{(index % count) + 1}"].append(predicate)
    remotes = [
        Site(name, db.restricted_to(set(owned)))
        for name, owned in placement.items()
    ]
    return FederatedDatabase(
        local=local,
        remotes=remotes,
        local_predicates=local_predicates,
        site_predicates=placement,
    )


def _parse_boundary(text: str) -> object:
    """A key-range cut point: int, then float, then bare string."""
    text = text.strip()
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def _build_partitioner(args: argparse.Namespace, local_predicates: set[str]):
    """The shard partitioner for ``--shards``: key-range when any
    ``--shard-by`` spec is given, round-robin by predicate otherwise."""
    from repro.distributed.sharded import KeyRangePartitioner, PredicatePartitioner

    if not args.shard_by:
        return PredicatePartitioner(args.shards, local_predicates)
    boundaries: dict[str, list] = {}
    for spec in args.shard_by:
        predicate, sep, cuts = spec.partition("=")
        if not sep or not predicate.strip():
            raise ReproError(
                f"--shard-by must look like pred=cut1,cut2,...: {spec!r}"
            )
        boundaries[predicate.strip()] = [
            _parse_boundary(cut) for cut in cuts.split(",") if cut.strip()
        ]
    return KeyRangePartitioner(args.shards, boundaries, local_predicates)


#: resolve_pending rounds before ``check-stream`` gives up on a dead link
_MAX_DRAIN_ROUNDS = 100


def _drain_pending(checker) -> tuple[list, int]:
    """Drain deferred verdicts until settled or the link looks dead."""
    settled: list = []
    for _ in range(_MAX_DRAIN_ROUNDS):
        if not checker.pending_count:
            break
        settled.extend(checker.resolve_pending())
    return settled, checker.pending_count


def _cmd_check_stream(args: argparse.Namespace) -> int:
    from repro.distributed.checker import DistributedChecker

    constraints = load_constraints(args.constraints)
    db = load_database(args.db) if args.db else Database()
    updates = load_updates(args.updates)
    local_predicates = set(args.local or db.predicates())
    sites = _build_sites(args, db, local_predicates)
    site_rates = _parse_site_fault_rates(args)
    unknown_rates = set(site_rates) - {"*"} - set(sites.site_names)
    if unknown_rates:
        raise ReproError(
            f"--site-fault-rate names unknown site(s): {sorted(unknown_rates)} "
            f"(sites: {sorted(sites.site_names)})"
        )

    def _site_link(name: str, site):
        return _build_remote_link(
            args, site, rate=site_rates.get(name, site_rates.get("*"))
        )

    if len(sites.remotes) == 1:
        name, remote_site = next(iter(sites.remotes.items()))
        remote_link = _site_link(name, remote_site)
        remote_links = None
    else:
        remote_link = None
        remote_links = {
            name: built
            for name, site in sites.remotes.items()
            if (built := _site_link(name, site)) is not None
        } or None
    if args.parallel and not args.shards:
        raise ReproError(
            "--parallel needs --shards: the workers are per-shard sessions"
        )
    if args.executor == "process" and not args.shards:
        raise ReproError(
            "--executor process needs --shards: the workers are per-shard "
            "sessions"
        )
    if args.executor == "process" and args.overlap_remote:
        raise ReproError(
            "--overlap-remote needs the thread executor: an async fetch "
            "future cannot cross the process boundary"
        )
    if args.rebalance is not None:
        if args.rebalance < 1:
            raise ReproError("--rebalance interval must be >= 1")
        if not (args.shards and args.shard_by):
            raise ReproError(
                "--rebalance needs --shards and --shard-by: it moves "
                "key-range cut points"
            )
    if args.shards:
        from repro.distributed.rebalance import RebalancePolicy
        from repro.distributed.sharded import ShardedChecker

        if args.transaction:
            raise ReproError(
                "--transaction cannot be combined with --shards: the "
                "atomic rollback spans one session, not a shard fleet"
            )
        checker = ShardedChecker(
            constraints, sites,
            shards=args.shards,
            partitioner=_build_partitioner(args, local_predicates),
            apply_on_unknown=not args.pessimistic,
            remote_link=remote_link,
            remote_links=remote_links,
            snapshot_ttl=args.snapshot_ttl,
            parallelism=args.parallel or 1,
            overlap_remote=args.overlap_remote,
            executor=args.executor,
            rebalance=(
                RebalancePolicy(interval=args.rebalance)
                if args.rebalance is not None
                else None
            ),
        )
    else:
        checker = DistributedChecker(
            constraints, sites,
            apply_on_unknown=not args.pessimistic,
            remote_link=remote_link,
            remote_links=remote_links,
            snapshot_ttl=args.snapshot_ttl,
            overlap_remote=args.overlap_remote,
        )
    # The checker may have promoted the per-site links into a single
    # FederationLink; tear down whatever it actually escalates through.
    link = checker.remote_link
    exit_code = 0
    if args.transaction:
        committed, all_reports = checker.process_transaction(updates)
        for update, reports in zip(updates, all_reports):
            rejected = any(r.outcome is Outcome.VIOLATED for r in reports)
            print(f"{update}: {'REJECTED' if rejected else 'ok'}")
            if args.verbose:
                for report in reports:
                    print(f"    {report}")
        if committed:
            print("transaction: COMMITTED")
        else:
            print("transaction: ROLLED BACK (local site restored exactly)")
            exit_code = 1
    else:
        results = checker.check_stream(updates, batch_size=args.batch)
        for update, reports in zip(updates, results):
            rejected = any(r.outcome is Outcome.VIOLATED for r in reports)
            deferred = any(r.outcome is Outcome.DEFERRED for r in reports)
            if rejected:
                exit_code = 1
                status = "REJECTED"
            elif deferred:
                status = "DEFERRED (remote unreachable)"
            elif args.pessimistic and any(
                r.outcome is Outcome.UNKNOWN for r in reports
            ):
                status = "held (unknown)"
            else:
                status = "applied"
            print(f"{update}: {status}")
            if args.verbose:
                for report in reports:
                    print(f"    {report}")
    if checker.pending_count:
        print()
        print(f"resolving {checker.pending_count} deferred verdict(s)...")
        if link is not None and args.overlap_remote:
            # Let the in-flight escalation futures land so the drain can
            # settle from their results instead of breaking on them.
            link.wait_inflight()
        settled, remaining = _drain_pending(checker)
        for update, reports in settled:
            rejected = any(r.outcome is Outcome.VIOLATED for r in reports)
            if rejected:
                exit_code = 1
            print(f"{update}: {'REJECTED' if rejected else 'applied'} (resolved)")
            if args.verbose:
                for report in reports:
                    print(f"    {report}")
        if remaining:
            print(
                f"{remaining} update(s) still pending after "
                f"{_MAX_DRAIN_ROUNDS} drain rounds — remote unreachable"
            )
            exit_code = exit_code or 2
    print()
    width = max(len(label) for label, _ in checker.stats.summary_rows())
    for label, value in checker.stats.summary_rows():
        print(f"{label:<{width}}  {value}")
    # Tear down the process-pool workers (thread mode: no-op).
    if hasattr(checker, "close"):
        checker.close()
    if link is not None:
        from repro.distributed.remote import FederationLink

        link.close()

        def _print_rows(rows):
            width = max(len(label) for label, _ in rows)
            for label, value in rows:
                print(f"{label:<{width}}  {value}")

        print()
        print("-- remote link degradation --")
        rows = (
            link.summary_rows()
            if isinstance(link, FederationLink)
            else link.stats.summary_rows()
        )
        rows.append(("breaker state at exit", str(link.state)))
        rows.append(("simulated link clock", round(link.clock, 4)))
        _print_rows(rows)
        if isinstance(link, FederationLink):
            for name, site_link in sorted(link.links.items()):
                print()
                print(f"-- site {name} --")
                rows = site_link.stats.summary_rows()
                rows.append(("breaker state at exit", str(site_link.state)))
                rows.append(("simulated link clock", round(site_link.clock, 4)))
                _print_rows(rows)
    return exit_code


def _cmd_local_test(args: argparse.Namespace) -> int:
    from repro.localtests.complete import (
        complete_local_test_insertion,
        completeness_witness,
    )

    constraints = load_constraints(args.constraints)
    db = load_database(args.db) if args.db else Database()
    update = parse_update(args.update)
    if not isinstance(update, Insertion):
        raise ReproError("the complete local test covers insertions")
    relation = sorted(db.facts(args.local))
    exit_code = 0
    for constraint in constraints:
        if not constraint.is_single_rule:
            print(f"{constraint.name}: skipped (not a single-rule CQC)")
            continue
        try:
            verdict = complete_local_test_insertion(
                constraint.as_rule(), args.local, update.values, relation
            )
        except ReproError as exc:
            print(f"{constraint.name}: skipped ({exc})")
            continue
        if verdict:
            print(f"{constraint.name}: YES — the insertion cannot violate it")
        else:
            exit_code = 2
            print(f"{constraint.name}: UNKNOWN — a remote state could violate it")
            if args.witness:
                witness = completeness_witness(
                    constraint.as_rule(), args.local, update.values, relation
                )
                if witness is not None:
                    for predicate in sorted(witness.predicates()):
                        for fact in sorted(witness.facts(predicate), key=repr):
                            print(f"    e.g. {predicate}{fact!r}")
    return exit_code


def _cmd_subsume(args: argparse.Namespace) -> int:
    constraints = load_constraints(args.constraints)
    target = constraints[args.target]
    others = constraints.others(target)
    try:
        verdict = subsumes(others, target)
    except ReproError as exc:
        print(f"undecidable/unsupported: {exc}")
        return 2
    if verdict:
        print(f"{target.name} is subsumed: it never needs to be checked "
              f"while the others are maintained")
        return 0
    print(f"{target.name} is NOT subsumed by the rest of the set")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint checking with partial information (PODS 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser("classify", help="place constraints in the Fig. 2.1 lattice")
    classify.add_argument("constraints")
    classify.set_defaults(func=_cmd_classify)

    check = sub.add_parser("check", help="evaluate constraints / check an update")
    check.add_argument("constraints")
    check.add_argument("--db", help="JSON database file")
    check.add_argument("--update", help="+pred(v, ...) or -pred(v, ...)")
    check.add_argument(
        "--local", nargs="*", help="predicates stored locally (default: all)"
    )
    check.set_defaults(func=_cmd_check)

    stream = sub.add_parser(
        "check-stream",
        help="run an update stream through an incremental check session",
    )
    stream.add_argument("constraints")
    stream.add_argument("--db", help="JSON database file (split by --local)")
    stream.add_argument(
        "--updates", help="file of updates, one per line (default: stdin)"
    )
    stream.add_argument(
        "--local", nargs="*", help="predicates stored locally (default: all)"
    )
    stream.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the per-constraint reports for every update",
    )
    mode = stream.add_mutually_exclusive_group()
    mode.add_argument(
        "--batch", type=int, nargs="?", const=64, default=None, metavar="N",
        help="coalesce up to N consecutive safe updates into one "
        "maintenance pass (default N=64); verdicts are identical to "
        "per-update mode",
    )
    mode.add_argument(
        "--transaction", action="store_true",
        help="treat the whole stream as one atomic transaction: any "
        "rejection rolls back every applied update exactly (exit 1)",
    )
    stream.add_argument(
        "--pessimistic", action="store_true",
        help="apply an update only when every verdict is SATISFIED "
        "(UNKNOWN/DEFERRED hold it back)",
    )
    stream.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the local site into N shards, one check session "
        "each (verdicts identical to a single session); incompatible "
        "with --transaction",
    )
    stream.add_argument(
        "--shard-by", action="append", metavar="PRED=CUT1,CUT2,...",
        help="key-range split PRED across the shards on its first "
        "column (N-1 sorted cut points; repeatable); other predicates "
        "stay whole, round-robin",
    )
    stream.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="run shard-confined updates on N worker threads "
        "(fence-scheduled; verdicts identical to serial); needs --shards",
    )
    stream.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="run the shard sessions on worker threads (default) or in "
        "one worker process per shard (verdicts identical; escalations "
        "bounce through the parent's link); needs --shards",
    )
    stream.add_argument(
        "--rebalance", type=int, nargs="?", const=256, default=None,
        metavar="N",
        help="enable live key-range rebalancing: every N routed updates "
        "(default 256) a hot shard's range is split at its sampled "
        "median and migrated at a fence; needs --shards and --shard-by",
    )
    stream.add_argument(
        "--sites", type=int, default=2, metavar="N",
        help="total number of sites: one local plus N-1 remotes; with "
        "N > 2 the remote predicates are dealt round-robin (sorted) "
        "across sites remote1..remoteN-1 and escalations fan out over "
        "a federated link (default 2, the classic two-site split)",
    )
    stream.add_argument(
        "--snapshot-ttl", type=float, default=None, metavar="SECS",
        help="cache each remote site's fetched snapshot for SECS "
        "simulated seconds on the federated link (default: no cache)",
    )
    stream.add_argument(
        "--overlap-remote", action="store_true",
        help="issue remote escalations asynchronously: the update "
        "defers immediately and the stream keeps flowing while the "
        "fetch is in flight (settled by the post-stream drain)",
    )
    faults = stream.add_argument_group(
        "fault simulation",
        "simulate an unreliable remote site; any of these flags routes "
        "escalations through a retry/backoff/circuit-breaker link and "
        "degrades unreachable-remote verdicts to DEFERRED",
    )
    faults.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="per-attempt transient failure probability in [0,1]",
    )
    faults.add_argument(
        "--outage", action="append", metavar="START:LENGTH",
        help="hard-outage window over the remote attempt index "
        "(repeatable); every attempt inside it fails",
    )
    faults.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per remote fetch before deferring (default 4)",
    )
    faults.add_argument(
        "--remote-timeout", type=float, default=None, metavar="SECS",
        help="per-attempt timeout in simulated seconds",
    )
    faults.add_argument(
        "--remote-latency", type=float, default=0.0, metavar="SECS",
        help="simulated latency per remote attempt",
    )
    faults.add_argument(
        "--site-fault-rate", action="append", metavar="SITE=P",
        help="per-site transient failure probability, overriding "
        "--fault-rate for that site (repeatable; a bare P applies to "
        "every site)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed for the fault model and retry jitter (default 0)",
    )
    stream.set_defaults(func=_cmd_check_stream)

    local_test = sub.add_parser(
        "local-test", help="run the Theorem 5.2 complete local test"
    )
    local_test.add_argument("constraints")
    local_test.add_argument("--db", help="JSON database file")
    local_test.add_argument("--local", required=True, help="the local predicate")
    local_test.add_argument("--update", required=True)
    local_test.add_argument(
        "--witness", action="store_true",
        help="on UNKNOWN, print a violating remote state",
    )
    local_test.set_defaults(func=_cmd_local_test)

    subsume = sub.add_parser("subsume", help="is a constraint subsumed by the rest?")
    subsume.add_argument("constraints")
    subsume.add_argument("--target", required=True, help="constraint name")
    subsume.set_defaults(func=_cmd_subsume)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
