"""Command-line interface: classify, check, test, and subsume constraints.

Usage (see ``python -m repro --help``)::

    python -m repro classify constraints.dl
    python -m repro check constraints.dl --db data.json --update '+emp(ann, toys, 50)'
    python -m repro local-test constraints.dl --db data.json \\
        --local emp --update '+emp(bob, toys, 60)'
    python -m repro subsume constraints.dl --target NAME

File formats:

* constraints: datalog text; ``%%`` lines separate named constraints, a
  ``%% name`` header names the one that follows (unnamed constraints get
  ``c1``, ``c2``, ...);
* databases: JSON mapping predicate names to lists of tuples (lists).

Update syntax: ``+pred(v1, v2, ...)`` to insert, ``-pred(...)`` to
delete, ``~pred(old, ...)->(new, ...)`` to modify; values parse like
datalog terms (numbers, lowercase names, or quoted strings).

``check-stream`` reads one update per line (blank lines and ``#``
comments ignored) from a file or stdin and drives the incremental
:class:`~repro.core.session.CheckSession` through the whole stream,
printing per-update verdicts and the protocol statistics.  With
``--batch [N]`` consecutive safe updates share one maintenance pass
(identical verdicts); with ``--transaction`` the stream is atomic and
any rejection rolls the local site back exactly.

The ``--fault-rate`` / ``--outage`` / ``--retries`` /
``--remote-timeout`` / ``--remote-latency`` / ``--fault-seed`` flags
simulate an unreliable remote site behind a retry/backoff/circuit-
breaker link: updates whose escalation cannot reach the remote come
back DEFERRED, are drained by ``resolve_pending`` once the link
recovers, and the run ends with a degradation summary.  ``--pessimistic``
holds updates back (instead of applying optimistically) until every
verdict is SATISFIED.

``--shards N`` partitions the local site into N per-shard check
sessions (verdicts identical to a single session); ``--parallel N``
additionally runs shard-confined updates on N worker threads with
explicit fences around cross-shard work, and ``--overlap-remote``
issues remote escalations asynchronously so the stream keeps flowing
while a slow fetch is in flight.  ``--executor process`` moves each
shard session into its own worker process (escalations bounce through
the parent's fault-tolerant link; verdicts stay identical), and
``--rebalance [N]`` enables live key-range rebalancing: every N routed
updates a hot shard's range is split at its sampled median key and the
affected facts (and pending verdicts) migrate at a fence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.errors import InjectedCrash, ReproError
from repro.constraints.constraint import Constraint, ConstraintSet
from repro.constraints.subsumption import subsumes
from repro.core.engine import PartialInfoChecker
from repro.core.outcomes import Outcome
from repro.datalog.database import Database
from repro.datalog.parser import parse_program, parse_term_list
from repro.datalog.terms import Constant
from repro.updates.update import Deletion, Insertion, Modification, Update

__all__ = ["main", "parse_update", "load_constraints", "load_database", "load_updates"]


def load_constraints(path: str) -> ConstraintSet:
    """Parse a constraint file into a named ConstraintSet."""
    with open(path) as handle:
        text = handle.read()
    blocks: list[tuple[str | None, list[str]]] = [(None, [])]
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("%%"):
            name = stripped[2:].strip() or None
            blocks.append((name, []))
        else:
            blocks[-1][1].append(line)
    constraints = ConstraintSet()
    counter = 0
    for name, lines in blocks:
        source = "\n".join(lines).strip()
        if not source:
            continue
        program = parse_program(source)
        if not program.rules:
            continue  # a comment-only block (e.g. a file header)
        counter += 1
        constraints.add(Constraint(program, name or f"c{counter}"))
    return constraints


def load_database(path: str) -> Database:
    """Load a JSON database: {"pred": [[v, ...], ...], ...}."""
    with open(path) as handle:
        raw = json.load(handle)
    db = Database()
    for predicate, facts in raw.items():
        for fact in facts:
            db.insert(predicate, tuple(fact))
    return db


def _parse_values(inner: str, context: str) -> tuple:
    # Tokenize rather than split on raw commas: a quoted value like
    # "a,b" is one constant, not two.
    values: list[object] = []
    for term in parse_term_list(inner):
        if not isinstance(term, Constant):
            raise ReproError(f"update values must be constants: {term!r}")
        values.append(term.value)
    return tuple(values)


def parse_update(text: str) -> Update:
    """Parse ``+pred(a, 1)`` / ``-pred(a, 1)`` /
    ``~pred(a, 1)->(b, 2)`` into an update object."""
    text = text.strip()
    if not text or text[0] not in "+-~":
        raise ReproError(f"update must start with '+', '-' or '~': {text!r}")
    sign, rest = text[0], text[1:].strip()
    open_paren = rest.find("(")
    if open_paren < 0 or not rest.endswith(")"):
        raise ReproError(f"update must look like +pred(v1, v2): {text!r}")
    predicate = rest[:open_paren].strip()
    if sign == "~":
        body = rest[open_paren:]
        arrow = body.find("->")
        if arrow < 0 or not body[:arrow].rstrip().endswith(")"):
            raise ReproError(
                f"modification must look like ~pred(old)->(new): {text!r}"
            )
        old_part = body[:arrow].strip()
        new_part = body[arrow + 2 :].strip()
        if not (new_part.startswith("(") and new_part.endswith(")")):
            raise ReproError(
                f"modification must look like ~pred(old)->(new): {text!r}"
            )
        return Modification(
            predicate,
            _parse_values(old_part[1:-1], text),
            _parse_values(new_part[1:-1], text),
        )
    values = _parse_values(rest[open_paren + 1 : -1], text)
    if sign == "+":
        return Insertion(predicate, values)
    return Deletion(predicate, values)


def _cmd_classify(args: argparse.Namespace) -> int:
    constraints = load_constraints(args.constraints)
    width = max((len(c.name) for c in constraints), default=4)
    for constraint in constraints:
        print(f"{constraint.name:<{width}}  {constraint.constraint_class.name}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    constraints = load_constraints(args.constraints)
    db = load_database(args.db) if args.db else Database()
    if args.update:
        update = parse_update(args.update)
        local_predicates = set(args.local or db.predicates() or {update.predicate})
        checker = PartialInfoChecker(constraints, local_predicates)
        local = db.restricted_to(local_predicates)
        remote = db.restricted_to(db.predicates() - local_predicates)
        exit_code = 0
        for report in checker.check(update, local, remote):
            print(report)
            if report.outcome is Outcome.VIOLATED:
                exit_code = 1
        return exit_code
    # No update: plain evaluation.
    violated = constraints.violated(db)
    for constraint in constraints:
        status = "VIOLATED" if constraint in violated else "holds"
        print(f"{constraint.name}: {status}")
    return 1 if violated else 0


def load_updates(path: str | None) -> list[Update]:
    """Read updates, one per line, from *path* (``-``/None = stdin)."""
    if path in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    updates: list[Update] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        updates.append(parse_update(stripped))
    return updates


def _build_remote_link(args: argparse.Namespace, remote_site, rate=None):
    """The fault-tolerant link for ``check-stream``, or ``None`` when no
    fault/retry flag asks for one.  *rate* overrides ``--fault-rate``
    for this site (``--site-fault-rate``)."""
    from repro.distributed.faults import FaultModel, UnreliableRemote, parse_outage
    from repro.distributed.remote import FetchPolicy, RemoteLink

    effective_rate = args.fault_rate if rate is None else rate
    faulty = bool(
        effective_rate or args.outage or args.remote_latency
        or args.remote_timeout is not None
    )
    if not faulty and args.retries is None:
        if getattr(args, "overlap_remote", False):
            # Overlap needs a link (the async queue lives there) even
            # with a perfectly healthy remote.
            return RemoteLink(remote_site)
        return None
    faults = FaultModel(
        failure_rate=effective_rate,
        latency=args.remote_latency,
        outages=tuple(parse_outage(spec) for spec in args.outage or ()),
        seed=args.fault_seed,
    )
    policy = FetchPolicy(
        max_attempts=args.retries if args.retries is not None else 4,
        attempt_timeout=args.remote_timeout,
    )
    return RemoteLink(
        UnreliableRemote(remote_site, faults), policy, seed=args.fault_seed
    )


def _parse_site_fault_rates(args: argparse.Namespace) -> dict[str, float]:
    """``--site-fault-rate SITE=P`` specs (a bare ``P`` keys ``"*"``,
    the every-site default).

    Rejects duplicate site names and probabilities outside ``[0, 1]``
    instead of silently letting the last (or a nonsensical) spec win;
    unknown site names are checked against the built topology by the
    caller."""
    rates: dict[str, float] = {}
    for spec in getattr(args, "site_fault_rate", None) or ():
        name, sep, value = spec.partition("=")
        key = name.strip() if sep else "*"
        try:
            rate = float(value if sep else spec)
        except ValueError:
            raise ReproError(
                f"--site-fault-rate must look like SITE=P or P: {spec!r}"
            )
        if sep and not key:
            raise ReproError(
                f"--site-fault-rate must look like SITE=P or P: {spec!r}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ReproError(
                f"--site-fault-rate probability must be in [0, 1]: {spec!r}"
            )
        if key in rates:
            label = "the default rate" if key == "*" else f"site {key!r}"
            raise ReproError(
                f"--site-fault-rate given twice for {label}: {spec!r} "
                f"(already {rates[key]})"
            )
        rates[key] = rate
    return rates


def _build_sites(args: argparse.Namespace, db: Database, local_predicates: set[str]):
    """The (possibly federated) site topology for ``check-stream``.

    ``--sites 2`` (the default) is the classic local + single-remote
    split.  ``--sites N`` with N > 2 deals the remote predicates
    round-robin (sorted, so deterministic) across N-1 named remote
    sites ``remote1`` .. ``remoteN-1``."""
    from repro.distributed.site import FederatedDatabase, Site, TwoSiteDatabase

    total = args.sites if getattr(args, "sites", None) else 2
    if total < 2:
        raise ReproError("--sites needs at least 2 (one local, one remote)")
    backend_name = getattr(args, "backend", None) or "memory"
    if backend_name == "memory":
        local = Site("local", db.restricted_to(local_predicates))
    else:
        from repro.storage import make_backend

        local = Site(
            "local",
            db.restricted_to(local_predicates),
            backend=make_backend(backend_name),
        )
    remote_predicates = sorted(db.predicates() - local_predicates)
    if total == 2:
        return TwoSiteDatabase(
            local=local,
            remote=Site("remote", db.restricted_to(set(remote_predicates))),
            local_predicates=local_predicates,
        )
    count = total - 1
    placement: dict[str, list[str]] = {
        f"remote{i + 1}": [] for i in range(count)
    }
    for index, predicate in enumerate(remote_predicates):
        placement[f"remote{(index % count) + 1}"].append(predicate)
    remotes = [
        Site(name, db.restricted_to(set(owned)))
        for name, owned in placement.items()
    ]
    return FederatedDatabase(
        local=local,
        remotes=remotes,
        local_predicates=local_predicates,
        site_predicates=placement,
    )


def _parse_boundary(text: str) -> object:
    """A key-range cut point: int, then float, then bare string."""
    text = text.strip()
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def _build_partitioner(args: argparse.Namespace, local_predicates: set[str]):
    """The shard partitioner for ``--shards``: key-range when any
    ``--shard-by`` spec is given, round-robin by predicate otherwise."""
    from repro.distributed.sharded import KeyRangePartitioner, PredicatePartitioner

    if not args.shard_by:
        return PredicatePartitioner(args.shards, local_predicates)
    boundaries: dict[str, list] = {}
    for spec in args.shard_by:
        predicate, sep, cuts = spec.partition("=")
        if not sep or not predicate.strip():
            raise ReproError(
                f"--shard-by must look like pred=cut1,cut2,...: {spec!r}"
            )
        boundaries[predicate.strip()] = [
            _parse_boundary(cut) for cut in cuts.split(",") if cut.strip()
        ]
    return KeyRangePartitioner(args.shards, boundaries, local_predicates)


#: resolve_pending rounds before ``check-stream`` gives up on a dead link
_MAX_DRAIN_ROUNDS = 100


# -- durability (--journal / --resume) ---------------------------------------


def _journal_flag_conflicts(args: argparse.Namespace) -> None:
    """Reject ``--journal`` combinations the journal cannot serialize.

    Parallel segments, process-pool workers, and overlapped escalation
    futures all journal now (effects are emitted at settle time and
    committed in arrival order through the
    :class:`~repro.durability.journal.OrderedJournalCommitter`).  What
    remains out: transactional rollback (a rolled-back prefix has no
    durable meaning) and the federation snapshot cache (a snapshot-served
    verdict depends on cache age the journal cannot replay)."""
    conflicts = (
        (args.transaction, "--transaction"),
        (args.snapshot_ttl is not None, "--snapshot-ttl"),
    )
    for active, name in conflicts:
        if active:
            raise ReproError(
                f"--journal cannot be combined with {name}: the journal "
                "needs durable effect records the checker can replay "
                "in arrival order"
            )
    for value, name in (
        (args.sync_every, "--sync-every"),
        (args.checkpoint_every, "--checkpoint-every"),
    ):
        if value < 1:
            raise ReproError(
                f"{name} must be at least 1 (got {value}); the journal's "
                "sync and checkpoint cadences count safe points"
            )


def _journal_config(args: argparse.Namespace, constraints, local_predicates):
    """The run-configuration fingerprint persisted as ``meta.json``.
    ``--resume`` refuses a journal whose fingerprint differs — the
    journal's records only mean anything under the configuration that
    wrote them."""
    return {
        "constraints": [[c.name, str(c.program)] for c in constraints],
        "local": sorted(local_predicates),
        "backend": getattr(args, "backend", None) or "memory",
        "sites": args.sites,
        "shards": args.shards or 0,
        "shard_by": sorted(args.shard_by or ()),
        "parallel": args.parallel or 0,
        "executor": args.executor,
        "overlap_remote": bool(args.overlap_remote),
        "batch": args.batch or 0,
        "apply_on_unknown": not args.pessimistic,
        "rebalance": args.rebalance or 0,
        "faults": {
            "rate": args.fault_rate,
            "outages": sorted(args.outage or ()),
            "retries": args.retries,
            "timeout": args.remote_timeout,
            "latency": args.remote_latency,
            "seed": args.fault_seed,
            "site_rates": sorted(args.site_fault_rate or ()),
        },
    }


def _overlay_recovered_facts(db: Database, local_predicates, recovered) -> Database:
    """The resumed run's database: remote predicates straight from the
    ``--db`` file (remote sites are never mutated), local predicates
    exactly as recovered — a local predicate absent from the recovered
    state was empty at the crash, so nothing falls back to the file."""
    merged = Database()
    for predicate in db.predicates():
        if predicate in local_predicates:
            continue
        for fact in db.facts(predicate):
            merged.insert(predicate, fact)
    for predicate, facts in recovered.facts.items():
        for fact in sorted(facts, key=repr):
            merged.insert(predicate, fact)
    return merged


def _checkpoint_payload(pos: int, args: argparse.Namespace, checker, link) -> dict:
    """One checkpoint manifest payload: everything ``--resume`` needs at
    stream position *pos* (facts, pending queue, arrival clock floor,
    protocol + session stats, shard cuts + per-shard queues/clock cells,
    worker-restart counters, link state).

    Sharded manifests carry the pending queues *per shard*
    (``shard_pending``) alongside the flat sorted list, plus each
    shard's arrival-clock cell (``shard_seq``) — a shard may have
    stamped sequence numbers without queueing anything, and the resumed
    arrival clock must restart past those too.  Manifests are only cut
    at barriers (or the serial between-updates boundary), where the
    checkpointed state provably equals the journal's committed prefix.
    """
    from repro.durability.journal import entry_to_json

    shard_pending = None
    shard_seq = None
    worker_restarts = None
    if args.shards and getattr(checker, "_procpool", None) is not None:
        states = checker._procpool.checkpoint_state()
        local_db = checker.local_database()
        shard_pending = [
            [entry_to_json(entry) for entry in state["pending"]]
            for state in states
        ]
        shard_seq = [state["seq"] for state in states]
        worker_restarts = checker._procpool.restart_counts()
        session_stats = [state["stats"].to_dict() for state in states]
        pending = sorted(
            (entry for state in states for entry in state["pending"]),
            key=lambda entry: entry.seq,
        )
    else:
        if args.shards:
            local_db = checker.local_database()
            sessions = checker.sessions
            shard_pending = [
                [entry_to_json(entry) for entry in session._pending]
                for session in sessions
            ]
            shard_seq = [cell[0] for cell in checker._seq_cells]
        else:
            local_db = checker.sites.local.unmetered()
            sessions = [checker.session]
        session_stats = [session.stats.to_dict() for session in sessions]
        pending = sorted(
            (entry for session in sessions for entry in session._pending),
            key=lambda entry: entry.seq,
        )
    payload = {
        "pos": pos,
        "facts": {
            predicate: sorted(
                (list(fact) for fact in local_db.facts(predicate)), key=repr
            )
            for predicate in sorted(local_db.predicates())
        },
        "pending": [entry_to_json(entry) for entry in pending],
        "seq": max((entry.seq for entry in pending), default=0),
        "stats": checker.stats.to_dict(),
        "session_stats": session_stats,
        "cuts": {},
        "link": link.state_dict() if link is not None else None,
    }
    if shard_pending is not None:
        payload["shard_pending"] = shard_pending
        payload["shard_seq"] = shard_seq
    if worker_restarts is not None:
        payload["worker_restarts"] = worker_restarts
    if args.shards and args.shard_by:
        payload["cuts"] = {
            predicate: list(checker.partitioner.boundaries(predicate))
            for predicate in sorted(checker.partitioner.split_predicates)
        }
    return payload


def _restore_into(args: argparse.Namespace, checker, recovered, link) -> None:
    """Install a recovered state into a freshly built checker: pending
    entries re-queued per shard in sequence order, the arrival clock
    restarted past every recovered sequence number, protocol + session
    stats and the remote link's RNG/breaker state reinstated.  (Session
    gauges and round-trip counters reflect the last checkpoint, so they
    may under-count the replayed tail window; verdicts and state are
    exact.)"""
    import itertools

    from repro.core.session import SessionStats
    from repro.durability.journal import entry_from_json

    if args.shards:
        # Per-shard queues straight from the manifest when it has them
        # (the journal-tail descriptors are not in the manifest's shard
        # split and route by the partitioner); pre-shard-manifest
        # journals route everything by the partitioner.
        if recovered.shard_pending is not None:
            per_shard = [
                [entry_from_json(desc) for desc in queue]
                for queue in recovered.shard_pending
            ]
            for desc in recovered.tail_pending:
                entry = entry_from_json(desc)
                per_shard[checker.shard_of(entry.update)].append(entry)
        else:
            per_shard = [[] for _ in range(checker.shards)]
            for desc in recovered.pending:
                entry = entry_from_json(desc)
                per_shard[checker.shard_of(entry.update)].append(entry)
        for queue in per_shard:
            queue.sort(key=lambda entry: entry.seq)
        if checker._procpool is not None:
            checker._procpool.restore_checkpoint(
                per_shard,
                [
                    SessionStats.from_dict(data)
                    for data in recovered.session_stats
                ],
                recovered.worker_restarts,
            )
        else:
            for session, queue, data in zip(
                checker.sessions, per_shard, recovered.session_stats
            ):
                session._pending.extend(queue)
                session.stats = SessionStats.from_dict(data)
        if recovered.shard_seq is not None:
            for cell, seq in zip(checker._seq_cells, recovered.shard_seq):
                cell[0] = seq
        checker._arrival = itertools.count(recovered.seq + 1)
    else:
        entries = [entry_from_json(desc) for desc in recovered.pending]
        checker.session._pending.extend(entries)
        checker.session._pending_seq = recovered.seq
        for session, data in zip([checker.session], recovered.session_stats):
            session.stats = SessionStats.from_dict(data)
    checker.stats = recovered.stats
    if link is not None and recovered.link_state is not None:
        link.restore_state(recovered.link_state)


def _journal_future_patches(args: argparse.Namespace, checker, writer) -> None:
    """Journal which pending entries' overlapped escalation futures have
    landed (one ``"fp"`` record per landed future).

    An ``--overlap-remote`` run journals a deferred update *at settle
    time* with a future-pending marker — the fetch is still in flight.
    Once :meth:`~repro.distributed.remote.RemoteLink.wait_inflight`
    returns, the landed futures' results exist, and the patch records
    let a journal-tail-only recovery mark those descriptors resolved
    (the resumed drain re-fetches synchronously either way; the marker
    preserves what the crashed run knew)."""
    sessions = checker.sessions if args.shards else [checker.session]
    for session in sessions:
        for entry in session._pending:
            if entry.future is not None and entry.future.done():
                writer.record_future_patch(entry.seq)


def _stream_status(reports, pessimistic: bool) -> tuple[str, bool]:
    """The per-update verdict line's status text (shared by the live
    stream loop and the ``--resume`` journal echo, so a resumed run's
    output diffs clean against an uninterrupted one)."""
    rejected = any(r.outcome is Outcome.VIOLATED for r in reports)
    deferred = any(r.outcome is Outcome.DEFERRED for r in reports)
    if rejected:
        return "REJECTED", True
    if deferred:
        return "DEFERRED (remote unreachable)", False
    if pessimistic and any(r.outcome is Outcome.UNKNOWN for r in reports):
        return "held (unknown)", False
    return "applied", False


def _drain_pending(checker) -> tuple[list, int]:
    """Drain deferred verdicts until settled or the link looks dead."""
    settled: list = []
    for _ in range(_MAX_DRAIN_ROUNDS):
        if not checker.pending_count:
            break
        settled.extend(checker.resolve_pending())
    return settled, checker.pending_count


def _cmd_check_stream(args: argparse.Namespace) -> int:
    from repro.distributed.checker import DistributedChecker

    constraints = load_constraints(args.constraints)
    db = load_database(args.db) if args.db else Database()
    updates = load_updates(args.updates)
    local_predicates = set(args.local or db.predicates())

    recovered = None
    injector = None
    journal_config = None
    if args.resume and not args.journal:
        raise ReproError("--resume needs --journal DIR")
    if args.crash_at:
        from repro.distributed.faults import CrashInjector, parse_crash_point

        try:
            injector = CrashInjector(
                [
                    parse_crash_point(spec, hard=args.crash_mode == "hard")
                    for spec in args.crash_at
                ]
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
    if args.journal:
        _journal_flag_conflicts(args)
        journal_config = _journal_config(args, constraints, local_predicates)
        if args.resume:
            from repro.durability.journal import JOURNAL_FILE
            from repro.durability.recovery import check_backend_compatible, recover

            if not os.path.exists(os.path.join(args.journal, JOURNAL_FILE)):
                raise ReproError(
                    f"no journal found at {args.journal!r}; "
                    "did you mean a fresh --journal run?"
                )
            recovered = recover(args.journal)
            check_backend_compatible(
                recovered.meta, getattr(args, "backend", None) or "memory"
            )
            if recovered.meta is not None and recovered.meta != journal_config:
                raise ReproError(
                    "--resume configuration differs from the journal's "
                    "meta.json; a journal only replays under the exact "
                    "configuration that wrote it"
                )
            if recovered.dropped_lines:
                print(
                    f"journal: truncated {recovered.dropped_lines} torn/corrupt "
                    "trailing line(s); their updates will be reprocessed",
                    file=sys.stderr,
                )
            db = _overlay_recovered_facts(db, local_predicates, recovered)
        else:
            from repro.durability.journal import JOURNAL_FILE

            if os.path.exists(os.path.join(args.journal, JOURNAL_FILE)):
                raise ReproError(
                    f"journal directory {args.journal!r} already holds a run; "
                    "pass --resume to continue it or point --journal at a "
                    "fresh directory"
                )

    if (getattr(args, "backend", None) or "memory") != "memory" and args.shards:
        raise ReproError(
            "--backend sqlite cannot be combined with --shards: shard "
            "sessions re-partition the local site into per-shard in-memory "
            "databases, and a sqlite connection cannot cross the worker "
            "boundary"
        )
    sites = _build_sites(args, db, local_predicates)
    site_rates = _parse_site_fault_rates(args)
    unknown_rates = set(site_rates) - {"*"} - set(sites.site_names)
    if unknown_rates:
        raise ReproError(
            f"--site-fault-rate names unknown site(s): {sorted(unknown_rates)} "
            f"(sites: {sorted(sites.site_names)})"
        )

    def _site_link(name: str, site):
        return _build_remote_link(
            args, site, rate=site_rates.get(name, site_rates.get("*"))
        )

    if len(sites.remotes) == 1:
        name, remote_site = next(iter(sites.remotes.items()))
        remote_link = _site_link(name, remote_site)
        remote_links = None
    else:
        remote_link = None
        remote_links = {
            name: built
            for name, site in sites.remotes.items()
            if (built := _site_link(name, site)) is not None
        } or None
    if args.parallel and not args.shards:
        raise ReproError(
            "--parallel needs --shards: the workers are per-shard sessions"
        )
    if args.executor == "process" and not args.shards:
        raise ReproError(
            "--executor process needs --shards: the workers are per-shard "
            "sessions"
        )
    if args.executor == "process" and args.overlap_remote:
        raise ReproError(
            "--overlap-remote needs the thread executor: an async fetch "
            "future cannot cross the process boundary"
        )
    if args.rebalance is not None:
        if args.rebalance < 1:
            raise ReproError("--rebalance interval must be >= 1")
        if not (args.shards and args.shard_by):
            raise ReproError(
                "--rebalance needs --shards and --shard-by: it moves "
                "key-range cut points"
            )
    if args.shards:
        from repro.distributed.rebalance import RebalancePolicy
        from repro.distributed.sharded import ShardedChecker

        if args.transaction:
            raise ReproError(
                "--transaction cannot be combined with --shards: the "
                "atomic rollback spans one session, not a shard fleet"
            )
        partitioner = _build_partitioner(args, local_predicates)
        if recovered is not None:
            # The checker partitions the local database at construction
            # time, so the recovered cut vectors go in first.
            for predicate, cuts in recovered.cuts.items():
                partitioner.set_boundaries(predicate, cuts)
        checker = ShardedChecker(
            constraints, sites,
            shards=args.shards,
            partitioner=partitioner,
            apply_on_unknown=not args.pessimistic,
            remote_link=remote_link,
            remote_links=remote_links,
            snapshot_ttl=args.snapshot_ttl,
            parallelism=args.parallel or 1,
            overlap_remote=args.overlap_remote,
            executor=args.executor,
            rebalance=(
                RebalancePolicy(interval=args.rebalance)
                if args.rebalance is not None
                else None
            ),
            chaos=injector,
        )
    else:
        checker = DistributedChecker(
            constraints, sites,
            apply_on_unknown=not args.pessimistic,
            remote_link=remote_link,
            remote_links=remote_links,
            snapshot_ttl=args.snapshot_ttl,
            overlap_remote=args.overlap_remote,
        )
    # The checker may have promoted the per-site links into a single
    # FederationLink; tear down whatever it actually escalates through.
    link = checker.remote_link
    writer = None
    if args.journal:
        from repro.durability.checkpoint import write_checkpoint
        from repro.durability.journal import JournalWriter
        from repro.durability.recovery import write_meta

        if recovered is not None:
            # Restore before the writer exists: its link-state probe must
            # start from the recovered fetch counters, not fresh zeros.
            _restore_into(args, checker, recovered, link)
        else:
            write_meta(args.journal, journal_config)

        def _write_manifest(pos: int) -> None:
            write_checkpoint(
                args.journal, _checkpoint_payload(pos, args, checker, link)
            )

        writer = JournalWriter(
            args.journal,
            sync_every=args.sync_every,
            link=link,
            checkpoint_every=args.checkpoint_every,
            checkpoint_cb=_write_manifest,
            crash_injector=injector,
        )
        if recovered is not None:
            writer.pos = recovered.pos
        if args.shards:
            checker.attach_effect_log(writer)
        else:
            checker.session.effect_log = writer
        if recovered is None:
            # The resume floor: a pos-0 manifest of the initial state, so
            # recovery always finds a valid checkpoint to replay from.
            writer.checkpoint_now()
    exit_code = 0
    try:
        if args.transaction:
            committed, all_reports = checker.process_transaction(updates)
            for update, reports in zip(updates, all_reports):
                rejected = any(r.outcome is Outcome.VIOLATED for r in reports)
                print(f"{update}: {'REJECTED' if rejected else 'ok'}")
                if args.verbose:
                    for report in reports:
                        print(f"    {report}")
            if committed:
                print("transaction: COMMITTED")
            else:
                print("transaction: ROLLED BACK (local site restored exactly)")
                exit_code = 1
        else:
            if recovered is not None:
                # Re-echo the journalled prefix's verdicts so the resumed
                # run's output covers the whole stream and diffs clean
                # against an uninterrupted run.
                from repro.durability.journal import report_from_json, update_from_json

                for record in recovered.records:
                    update = update_from_json(record["update"])
                    reports = [report_from_json(r) for r in record["reports"]]
                    status, rejected = _stream_status(reports, args.pessimistic)
                    if rejected:
                        exit_code = 1
                    print(f"{update}: {status}")
                    if args.verbose:
                        for report in reports:
                            print(f"    {report}")
                updates = updates[recovered.pos:]
            results = checker.check_stream(updates, batch_size=args.batch)
            for update, reports in zip(updates, results):
                status, rejected = _stream_status(reports, args.pessimistic)
                if rejected:
                    exit_code = 1
                print(f"{update}: {status}")
                if args.verbose:
                    for report in reports:
                        print(f"    {report}")
        if writer is not None:
            if link is not None and args.overlap_remote:
                # Close the overlap window first: once the in-flight
                # escalation futures land, journal a future-patch record
                # per landed future, so a resume from the journal alone
                # knows those pending records' fetches completed.
                link.wait_inflight()
                _journal_future_patches(args, checker, writer)
            # End-of-stream manifest *before* the drain: drains are never
            # journalled (resume re-drains deterministically), so a crash
            # anywhere in the drain resumes from here.
            writer.checkpoint_now()
        if checker.pending_count:
            print()
            print(f"resolving {checker.pending_count} deferred verdict(s)...")
            if link is not None and args.overlap_remote:
                # Let the in-flight escalation futures land so the drain
                # can settle from their results instead of breaking on
                # them (a no-op when the journal block above waited).
                link.wait_inflight()
            if injector is not None and not args.shards:
                # The sharded checker hits this point itself, between the
                # quarantine and settle phases; the plain checker's drain
                # is one session call, so the boundary lives here.
                injector.hit("mid-drain")
            settled, remaining = _drain_pending(checker)
            for update, reports in settled:
                rejected = any(r.outcome is Outcome.VIOLATED for r in reports)
                if rejected:
                    exit_code = 1
                print(f"{update}: {'REJECTED' if rejected else 'applied'} (resolved)")
                if args.verbose:
                    for report in reports:
                        print(f"    {report}")
            if remaining:
                print(
                    f"{remaining} update(s) still pending after "
                    f"{_MAX_DRAIN_ROUNDS} drain rounds — remote unreachable"
                )
                exit_code = exit_code or 2
        if writer is not None:
            writer.close()
    except InjectedCrash:
        # A soft crash loses the unsynced journal suffix exactly as a
        # hard kill would — abandon, never flush.
        if writer is not None:
            writer.abandon()
        raise
    finally:
        # Tear down the process-pool workers even on a crash, so the
        # in-process kill-anywhere tests never leak worker processes
        # (thread mode: no-op).
        if hasattr(checker, "close"):
            checker.close()
    print()
    width = max(len(label) for label, _ in checker.stats.summary_rows())
    for label, value in checker.stats.summary_rows():
        print(f"{label:<{width}}  {value}")
    if link is not None:
        from repro.distributed.remote import FederationLink

        link.close()

        def _print_rows(rows):
            width = max(len(label) for label, _ in rows)
            for label, value in rows:
                print(f"{label:<{width}}  {value}")

        print()
        print("-- remote link degradation --")
        rows = (
            link.summary_rows()
            if isinstance(link, FederationLink)
            else link.stats.summary_rows()
        )
        rows.append(("breaker state at exit", str(link.state)))
        rows.append(("simulated link clock", round(link.clock, 4)))
        # Echo the effective seed (including the default) so a degraded
        # run is reproducible from its own output.
        rows.append(("fault seed", args.fault_seed))
        _print_rows(rows)
        if isinstance(link, FederationLink):
            for name, site_link in sorted(link.links.items()):
                print()
                print(f"-- site {name} --")
                rows = site_link.stats.summary_rows()
                rows.append(("breaker state at exit", str(site_link.state)))
                rows.append(("simulated link clock", round(site_link.clock, 4)))
                _print_rows(rows)
    return exit_code


def _cmd_local_test(args: argparse.Namespace) -> int:
    from repro.localtests.complete import (
        complete_local_test_insertion,
        completeness_witness,
    )

    constraints = load_constraints(args.constraints)
    db = load_database(args.db) if args.db else Database()
    update = parse_update(args.update)
    if not isinstance(update, Insertion):
        raise ReproError("the complete local test covers insertions")
    relation = sorted(db.facts(args.local))
    exit_code = 0
    for constraint in constraints:
        if not constraint.is_single_rule:
            print(f"{constraint.name}: skipped (not a single-rule CQC)")
            continue
        try:
            verdict = complete_local_test_insertion(
                constraint.as_rule(), args.local, update.values, relation
            )
        except ReproError as exc:
            print(f"{constraint.name}: skipped ({exc})")
            continue
        if verdict:
            print(f"{constraint.name}: YES — the insertion cannot violate it")
        else:
            exit_code = 2
            print(f"{constraint.name}: UNKNOWN — a remote state could violate it")
            if args.witness:
                witness = completeness_witness(
                    constraint.as_rule(), args.local, update.values, relation
                )
                if witness is not None:
                    for predicate in sorted(witness.predicates()):
                        for fact in sorted(witness.facts(predicate), key=repr):
                            print(f"    e.g. {predicate}{fact!r}")
    return exit_code


def _cmd_subsume(args: argparse.Namespace) -> int:
    constraints = load_constraints(args.constraints)
    target = constraints[args.target]
    others = constraints.others(target)
    try:
        verdict = subsumes(others, target)
    except ReproError as exc:
        print(f"undecidable/unsupported: {exc}")
        return 2
    if verdict:
        print(f"{target.name} is subsumed: it never needs to be checked "
              f"while the others are maintained")
        return 0
    print(f"{target.name} is NOT subsumed by the rest of the set")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint checking with partial information (PODS 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser("classify", help="place constraints in the Fig. 2.1 lattice")
    classify.add_argument("constraints")
    classify.set_defaults(func=_cmd_classify)

    check = sub.add_parser("check", help="evaluate constraints / check an update")
    check.add_argument("constraints")
    check.add_argument("--db", help="JSON database file")
    check.add_argument("--update", help="+pred(v, ...) or -pred(v, ...)")
    check.add_argument(
        "--local", nargs="*", help="predicates stored locally (default: all)"
    )
    check.set_defaults(func=_cmd_check)

    stream = sub.add_parser(
        "check-stream",
        help="run an update stream through an incremental check session",
    )
    stream.add_argument("constraints")
    stream.add_argument("--db", help="JSON database file (split by --local)")
    stream.add_argument(
        "--updates", help="file of updates, one per line (default: stdin)"
    )
    stream.add_argument(
        "--local", nargs="*", help="predicates stored locally (default: all)"
    )
    stream.add_argument(
        "--backend", choices=("memory", "sqlite"), default="memory",
        help="storage backend for the local site: in-memory relations "
        "(default) or indexed SQLite tables with Theorem 5.3 local "
        "tests pushed down as compiled SQL (verdicts identical)",
    )
    stream.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the per-constraint reports for every update",
    )
    mode = stream.add_mutually_exclusive_group()
    mode.add_argument(
        "--batch", type=int, nargs="?", const=64, default=None, metavar="N",
        help="coalesce up to N consecutive safe updates into one "
        "maintenance pass (default N=64); verdicts are identical to "
        "per-update mode",
    )
    mode.add_argument(
        "--transaction", action="store_true",
        help="treat the whole stream as one atomic transaction: any "
        "rejection rolls back every applied update exactly (exit 1)",
    )
    stream.add_argument(
        "--pessimistic", action="store_true",
        help="apply an update only when every verdict is SATISFIED "
        "(UNKNOWN/DEFERRED hold it back)",
    )
    stream.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the local site into N shards, one check session "
        "each (verdicts identical to a single session); incompatible "
        "with --transaction",
    )
    stream.add_argument(
        "--shard-by", action="append", metavar="PRED=CUT1,CUT2,...",
        help="key-range split PRED across the shards on its first "
        "column (N-1 sorted cut points; repeatable); other predicates "
        "stay whole, round-robin",
    )
    stream.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="run shard-confined updates on N worker threads "
        "(fence-scheduled; verdicts identical to serial); needs --shards",
    )
    stream.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="run the shard sessions on worker threads (default) or in "
        "one worker process per shard (verdicts identical; escalations "
        "bounce through the parent's link); needs --shards",
    )
    stream.add_argument(
        "--rebalance", type=int, nargs="?", const=256, default=None,
        metavar="N",
        help="enable live key-range rebalancing: every N routed updates "
        "(default 256) a hot shard's range is split at its sampled "
        "median and migrated at a fence; needs --shards and --shard-by",
    )
    stream.add_argument(
        "--sites", type=int, default=2, metavar="N",
        help="total number of sites: one local plus N-1 remotes; with "
        "N > 2 the remote predicates are dealt round-robin (sorted) "
        "across sites remote1..remoteN-1 and escalations fan out over "
        "a federated link (default 2, the classic two-site split)",
    )
    stream.add_argument(
        "--snapshot-ttl", type=float, default=None, metavar="SECS",
        help="cache each remote site's fetched snapshot for SECS "
        "simulated seconds on the federated link (default: no cache)",
    )
    stream.add_argument(
        "--overlap-remote", action="store_true",
        help="issue remote escalations asynchronously: the update "
        "defers immediately and the stream keeps flowing while the "
        "fetch is in flight (settled by the post-stream drain)",
    )
    faults = stream.add_argument_group(
        "fault simulation",
        "simulate an unreliable remote site; any of these flags routes "
        "escalations through a retry/backoff/circuit-breaker link and "
        "degrades unreachable-remote verdicts to DEFERRED",
    )
    faults.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="per-attempt transient failure probability in [0,1]",
    )
    faults.add_argument(
        "--outage", action="append", metavar="START:LENGTH",
        help="hard-outage window over the remote attempt index "
        "(repeatable); every attempt inside it fails",
    )
    faults.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per remote fetch before deferring (default 4)",
    )
    faults.add_argument(
        "--remote-timeout", type=float, default=None, metavar="SECS",
        help="per-attempt timeout in simulated seconds",
    )
    faults.add_argument(
        "--remote-latency", type=float, default=0.0, metavar="SECS",
        help="simulated latency per remote attempt",
    )
    faults.add_argument(
        "--site-fault-rate", action="append", metavar="SITE=P",
        help="per-site transient failure probability, overriding "
        "--fault-rate for that site (repeatable; a bare P applies to "
        "every site)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed for the fault model and retry jitter (default 0)",
    )
    durability = stream.add_argument_group(
        "durability",
        "journal every update's effects plus periodic checkpoint "
        "manifests, so a killed run resumes to the exact same verdicts "
        "and final state (serial, --parallel, and --executor process "
        "runs; not --transaction or --snapshot-ttl)",
    )
    durability.add_argument(
        "--journal", metavar="DIR", default=None,
        help="write an append-only CRC-framed effects journal and "
        "checkpoint manifests under DIR",
    )
    durability.add_argument(
        "--resume", action="store_true",
        help="recover DIR's newest valid checkpoint, replay the journal "
        "tail, and continue the stream from where the last run stopped",
    )
    durability.add_argument(
        "--sync-every", type=int, default=16, metavar="N",
        help="fsync the journal every N updates (default 16; 1 is "
        "write-through — a crash then loses nothing)",
    )
    durability.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="write a checkpoint manifest every N updates so recovery "
        "replays only the tail (default 64; must be >= 1 — the initial "
        "and end-of-stream manifests are always written)",
    )
    durability.add_argument(
        "--crash-at", action="append", metavar="POINT[:K]",
        help="chaos injection: crash at the K-th visit (default 1st) of "
        "a named point — update, fence, mid-drain, mid-rebalance, "
        "segment-dispatch, barrier-fold, worker-revive (repeatable)",
    )
    durability.add_argument(
        "--crash-mode", choices=("hard", "soft"), default="hard",
        help="hard: SIGKILL the process at the crash point, exactly like "
        "kill -9 (default); soft: raise a typed InjectedCrash instead",
    )
    stream.set_defaults(func=_cmd_check_stream)

    local_test = sub.add_parser(
        "local-test", help="run the Theorem 5.2 complete local test"
    )
    local_test.add_argument("constraints")
    local_test.add_argument("--db", help="JSON database file")
    local_test.add_argument("--local", required=True, help="the local predicate")
    local_test.add_argument("--update", required=True)
    local_test.add_argument(
        "--witness", action="store_true",
        help="on UNKNOWN, print a violating remote state",
    )
    local_test.set_defaults(func=_cmd_local_test)

    subsume = sub.add_parser("subsume", help="is a constraint subsumed by the rest?")
    subsume.add_argument("constraints")
    subsume.add_argument("--target", required=True, help="constraint name")
    subsume.set_defaults(func=_cmd_subsume)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
