"""Incremental check sessions: the execute-many half of the pipeline.

A :class:`CheckSession` owns the local database and processes a *stream*
of updates against a compiled constraint set.  Across the stream it
maintains state the stateless checker rebuilds per call:

* one :class:`~repro.datalog.evaluation.Materialization` per purely-local
  constraint, kept current by delta maintenance instead of re-evaluating
  the constraint program against a fresh copy of the database — bounded
  by a size/recency (LRU) policy mirroring the level-1 verdict cache;
* the compiler's bounded level-1 verdict cache (update streams repeat
  shapes);
* copy-on-write snapshots and :class:`~repro.datalog.database.Delta`
  application with undo tokens, so a rejected update rolls back in time
  proportional to the update, not the database.

Every update flows through the same Section 2 level pipeline as
:class:`~repro.core.engine.PartialInfoChecker` and produces identical
:class:`~repro.core.outcomes.CheckReport` verdicts — the facade and the
session are two drivers over one compiled core.

Two batching layers sit on top of the per-update pipeline:

* :meth:`CheckSession.process_transaction` checks a sequence atomically:
  each update is validated against the state its predecessors left, and
  an abort replays the recorded :class:`~repro.datalog.database.UndoToken`\\ s
  in reverse (see :mod:`repro.core.transaction`), restoring the database
  *and* every maintained materialization exactly;
* :meth:`CheckSession.process_stream` with a ``batch_size`` coalesces
  consecutive *violation-monotone* safe updates into one composed
  :class:`~repro.datalog.database.Delta` and runs a single maintenance
  pass per batch instead of per update, falling back to an exact
  per-update replay on the rare batch that fires a constraint.

Remote escalation is fault-tolerant: a remote source that raises
:class:`~repro.errors.RemoteUnavailableError` (e.g. a
:class:`~repro.distributed.remote.RemoteLink` whose retries are
exhausted) degrades the level-3 verdict to DEFERRED — the paper-faithful
"local tests inconclusive, remote unreachable; some remote state could
violate C".  The update is queued as a :class:`PendingVerdict` (applied
optimistically or held, per ``apply_on_unknown``) and
:meth:`CheckSession.resolve_pending` re-runs the queued checks when the
link recovers — covered updates keep flowing while uncovered ones wait.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Callable, Iterable, Optional, Union

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler, LRUCache
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.transaction import Transaction, rollback_token
from repro.datalog.database import Database, Delta, UndoToken
from repro.datalog.evaluation import Materialization, MaterializationUndo
from repro.errors import RemoteUnavailableError
from repro.updates.update import Insertion, Modification, Update

__all__ = [
    "CheckSession",
    "PendingVerdict",
    "SessionStats",
    "MATERIALIZATION_LIMIT",
]

#: A remote database may be handed to :meth:`CheckSession.process` either
#: directly or as a callable fetched only on escalation (so the caller
#: can meter round trips).  A callable accepting a ``predicates=`` kwarg
#: (``Site.snapshot``, ``RemoteLink.fetch``) is asked only for the remote
#: predicates the unresolved constraints actually mention; it may raise
#: :class:`~repro.errors.RemoteUnavailableError`, which the session turns
#: into DEFERRED verdicts instead of propagating.
RemoteSource = Union[Database, Callable[[], Database], None]


def _accepts_predicates(fetch: Callable) -> bool:
    """Does the remote source take a ``predicates=`` restriction kwarg?"""
    try:
        signature = inspect.signature(fetch)
    except (TypeError, ValueError):
        return False
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        or parameter.name == "predicates"
        for parameter in signature.parameters.values()
    )


def _fetch_remote(
    remote: RemoteSource, predicates: Optional[set[str]]
) -> Database:
    """Resolve a :data:`RemoteSource` into a database, restricting the
    fetch to *predicates* when the source supports it.  May raise
    :class:`~repro.errors.RemoteUnavailableError`."""
    if not callable(remote):
        return remote
    if predicates and _accepts_predicates(remote):
        return remote(predicates=sorted(predicates))
    return remote()

#: Default bound on maintained materializations per session (one per
#: purely-local constraint), evicted least-recently-used beyond it.
MATERIALIZATION_LIMIT = 128


@dataclass
class SessionStats:
    """Counters describing how much work the session reused vs. redid."""

    updates: int = 0
    applied: int = 0
    rejected: int = 0
    #: updates left unapplied because a verdict stayed UNKNOWN while the
    #: session runs with ``apply_on_unknown=False``
    deferred_unknown: int = 0
    #: constraint-program materializations built from scratch
    materializations_built: int = 0
    #: checks answered from an already-maintained materialization
    materialization_reuses: int = 0
    #: materializations dropped by the size/recency policy
    materializations_evicted: int = 0
    #: delta-maintenance passes over materializations (incl. rollbacks)
    incremental_deltas: int = 0
    #: full remote fetches (level-3 escalations)
    remote_fetches: int = 0
    #: shard mode: sibling-shard fetches for the cross-shard union view
    #: (site-local, never counted as remote round trips)
    peer_fetches: int = 0
    #: batched stream mode: coalesced maintenance flushes
    batches_flushed: int = 0
    #: batched stream mode: updates resolved inside a coalesced batch
    batched_updates: int = 0
    #: batched stream mode: batches that fired and were replayed exactly
    batch_replays: int = 0
    #: batched stream mode: updates kept out of a batch by the panic probe
    batch_probe_vetoes: int = 0
    #: transactions started / aborted via exact token rollback
    transactions: int = 0
    transactions_rolled_back: int = 0
    #: updates whose level-3 verdict was DEFERRED (remote unreachable)
    #: and queued for later resolution
    deferred_remote: int = 0
    #: queued deferred verdicts settled by :meth:`CheckSession.resolve_pending`
    deferred_resolved: int = 0
    #: optimistically applied deferred updates rolled back because the
    #: resolved verdict was VIOLATED
    deferred_rolled_back: int = 0

    def summary_rows(self) -> list[tuple[str, object]]:
        return [
            ("updates", self.updates),
            ("applied", self.applied),
            ("rejected", self.rejected),
            ("deferred on unknown", self.deferred_unknown),
            ("materializations built", self.materializations_built),
            ("materialization reuses", self.materialization_reuses),
            ("materializations evicted", self.materializations_evicted),
            ("incremental deltas", self.incremental_deltas),
            ("remote fetches", self.remote_fetches),
            ("peer (cross-shard) fetches", self.peer_fetches),
            ("batches flushed", self.batches_flushed),
            ("batched updates", self.batched_updates),
            ("batch replays", self.batch_replays),
            ("batch probe vetoes", self.batch_probe_vetoes),
            ("transactions", self.transactions),
            ("transactions rolled back", self.transactions_rolled_back),
            ("deferred (remote unreachable)", self.deferred_remote),
            ("deferred resolved", self.deferred_resolved),
            ("deferred rolled back", self.deferred_rolled_back),
        ]

    def to_dict(self) -> dict:
        """Plain-dict form for checkpoint manifests (JSON-safe)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionStats":
        return cls(**payload)


@dataclass
class PendingVerdict:
    """One update whose level-3 check could not reach the remote site.

    The per-constraint reports in :attr:`reports` carry DEFERRED for the
    constraints in :attr:`unresolved` until
    :meth:`CheckSession.resolve_pending` settles them; ``applied`` says
    whether the update is currently in the database (optimistic policy)
    or held back (pessimistic), and ``token`` records the effective
    changes of an applied update so a VIOLATED resolution can reverse
    them exactly.
    """

    seq: int
    update: Update
    unresolved: tuple[str, ...]
    reports: dict[str, CheckReport]
    applied: bool
    token: Optional[UndoToken] = None
    #: overlapped escalation: the in-flight fetch future issued when this
    #: entry deferred (``RemoteLink.fetch_nowait``), consumed by the drain
    future: Optional[object] = None
    #: the predicate restriction the future's fetch was issued with
    #: (``None`` = unrestricted, covers everything); a settle whose needs
    #: exceed it discards the future and fetches synchronously
    future_predicates: Optional[frozenset] = None

    @property
    def resolved(self) -> bool:
        return not self.unresolved

    def ordered_reports(self, constraints: Iterable[Constraint]) -> list[CheckReport]:
        return [self.reports[constraint.name] for constraint in constraints]


@dataclass
class _PendingBatch:
    """Bookkeeping for one in-flight coalesced batch: the updates whose
    deltas hit the database eagerly but whose materialization maintenance
    (and purely-local verdicts) are deferred to the flush."""

    updates: list[Update] = field(default_factory=list)
    reports: list[dict[str, CheckReport]] = field(default_factory=list)
    pending_locals: list[list[Constraint]] = field(default_factory=list)
    tokens: list[UndoToken] = field(default_factory=list)

    def add(
        self,
        update: Update,
        reports: dict[str, CheckReport],
        pending_local: list[Constraint],
        token: UndoToken,
    ) -> None:
        self.updates.append(update)
        self.reports.append(reports)
        self.pending_locals.append(pending_local)
        self.tokens.append(token)

    def __len__(self) -> int:
        return len(self.updates)

    def clear(self) -> None:
        self.updates.clear()
        self.reports.clear()
        self.pending_locals.clear()
        self.tokens.clear()


class CheckSession:
    """Check a stream of updates against one evolving local database.

    Parameters
    ----------
    constraints:
        The constraint set, or an already-built
        :class:`~repro.core.compiler.ConstraintCompiler` via *compiler*.
    local_predicates:
        The predicates stored at this site (ignored when *compiler* is
        given).
    local_db:
        The local database the session owns and mutates.  Updates that
        pass every check are applied; rejected updates are rolled back.
    apply_on_unknown:
        The application policy for updates whose final verdict includes
        UNKNOWN.  ``True`` (the default) applies them optimistically —
        only a definite VIOLATED rejects.  ``False`` applies an update
        only when every verdict is SATISFIED, leaving UNKNOWN updates
        unapplied (counted in :attr:`SessionStats.deferred_unknown`).
    max_materializations:
        Size bound for the maintained-materialization cache, evicted
        least-recently-used (mirroring the level-1 verdict LRU).
        ``None`` disables eviction.
    peer_predicates / peer_source:
        Shard mode (see :class:`~repro.distributed.sharded.ShardedChecker`):
        predicates that are *site-local but stored in sibling shards*,
        and a fetch for them.  A constraint whose missing predicates all
        live on peers is settled against the lazily materialized
        cross-shard union view at ``WITH_LOCAL_DATA`` — peer data is
        site-local, so consulting it is not a remote access and can
        never defer.  When *local_predicates* is passed alongside a
        shared *compiler*, it narrows this session's view of "local" to
        the shard's own predicates.
    seq_source:
        Optional shared counter for :class:`PendingVerdict` sequence
        numbers, so several shard sessions order their deferred-verdict
        queues on one global clock (the quarantine must reverse
        optimistic facts newest-first *across* shards).
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint] | None = None,
        local_predicates: Optional[Iterable[str]] = None,
        local_db: Optional[Database] = None,
        use_interval_datalog: bool = False,
        compiler: Optional[ConstraintCompiler] = None,
        apply_on_unknown: bool = True,
        max_materializations: Optional[int] = MATERIALIZATION_LIMIT,
        peer_predicates: Iterable[str] = (),
        peer_source: RemoteSource = None,
        seq_source: Optional[Callable[[], int]] = None,
    ) -> None:
        if compiler is None:
            if constraints is None:
                raise ValueError("CheckSession needs constraints or a compiler")
            compiler = ConstraintCompiler(
                constraints,
                local_predicates if local_predicates is not None else (),
                use_interval_datalog,
            )
        self.compiler = compiler
        self.constraints = compiler.constraints
        # An explicit (possibly empty) set narrows this session's view of
        # "local" below the compiler's site-wide set — the shard case.
        self.local_predicates = (
            frozenset(local_predicates)
            if local_predicates is not None
            else compiler.local_predicates
        )
        self.peer_predicates = frozenset(peer_predicates)
        self.peer_source = peer_source
        self.local_db = local_db if local_db is not None else Database()
        self.apply_on_unknown = apply_on_unknown
        self.stats = SessionStats()
        self._materializations: LRUCache = LRUCache(
            max_materializations if max_materializations is not None else float("inf")
        )
        self._local_constraints = [
            c
            for c in self.constraints
            if c.predicates() <= self.local_predicates
        ]
        #: updates whose level-3 verdicts await a reachable remote (FIFO)
        self._pending: list[PendingVerdict] = []
        self._pending_seq = 0
        self._seq_source = seq_source
        #: optional durability sink (see :mod:`repro.durability.journal`):
        #: an object with ``record_update(update, reports, applied, token,
        #: entry)`` called once per stream update in arrival order, and
        #: ``safe_point()`` called whenever the session is back at a
        #: consistent between-updates boundary (the journal batches its
        #: fsyncs and takes checkpoints there).  Drain settles never
        #: record — recovery restores the pre-drain state and re-drains.
        self.effect_log = None

    # -- materialization plumbing ---------------------------------------------
    def _materialization(self, constraint: Constraint) -> Materialization:
        """The maintained evaluation of a purely-local constraint; built
        from the current database on first use, maintained afterwards,
        and evicted least-recently-used past the session's bound."""
        mat = self._materializations.get(constraint.name)
        if mat is None:
            mat = constraint.engine.materialize(self.local_db)
            evicted = self._materializations.put(constraint.name, mat)
            self.stats.materializations_built += 1
            self.stats.materializations_evicted += len(evicted)
        else:
            self.stats.materialization_reuses += 1
        return mat

    def _propagate(
        self, effective: Delta
    ) -> list[tuple[Materialization, MaterializationUndo]]:
        """Maintain every existing materialization after a database change.

        Returns (materialization, undo) pairs so a rejected update can
        roll the maintained state back exactly, without re-running
        maintenance on the inverse delta."""
        if effective.is_empty():
            return []
        undos = []
        for mat in self._materializations.values():
            undos.append((mat, mat.apply_delta(effective)))
            self.stats.incremental_deltas += 1
        return undos

    def transaction(self) -> Transaction:
        """A fresh exact-rollback transaction scoped to this session.

        Pass it to :meth:`process` (or :meth:`apply_unchecked`) so the
        effective :class:`~repro.datalog.database.UndoToken` of each
        applied update is recorded; ``rollback()`` then restores the
        database and every maintained materialization to the state at
        this call — including facts a redundant insertion did *not* add.
        """
        self.stats.transactions += 1
        return Transaction(
            self.local_db, lambda: list(self._materializations.values())
        )

    def apply_unchecked(
        self, update: Update, transaction: Optional[Transaction] = None
    ) -> None:
        """Apply *update* without checking (the caller already decided),
        keeping the maintained materializations in sync."""
        token = self.local_db.apply(update.as_delta())
        undos = self._propagate(token.as_delta())
        if transaction is not None:
            transaction.record(token, undos)

    # -- the stream pipeline -----------------------------------------------------
    def _static_checks(
        self, update: Update, max_level: CheckLevel
    ) -> tuple[
        dict[str, CheckReport],
        list[Constraint],
        list[tuple[Constraint, CheckLevel]],
    ]:
        """Levels 0-2 without touching session state: every verdict
        decidable from the compiled constraints, the update, and the
        *pre-update* database.

        Returns the decided reports plus two pending lists: purely-local
        constraints (decidable from the post-update materialization) and
        constraints needing level-3 remote data.
        """
        reports: dict[str, CheckReport] = {}
        pending_local: list[Constraint] = []
        pending_unknown: list[tuple[Constraint, CheckLevel]] = []
        predicate = update.predicate

        for constraint in self.constraints:
            name = constraint.name
            compiled = self.compiler.compiled(name)
            if not self.compiler.mentions(constraint, predicate):
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False, detail="update predicate not mentioned",
                )
                continue

            # Level 0: subsumption by the other constraints.
            if compiled.subsumed:
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False, detail="subsumed by other constraints",
                )
                continue
            if max_level < CheckLevel.WITH_UPDATE:
                reports[name] = CheckReport(
                    name, Outcome.UNKNOWN, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False,
                )
                continue

            # Level 1: constraints + update (LRU-cached verdict).
            if self.compiler.level1_verdict(constraint, update):
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.WITH_UPDATE,
                    remote_accessed=False, detail="update-independence containment",
                )
                continue
            if max_level < CheckLevel.WITH_LOCAL_DATA:
                reports[name] = CheckReport(
                    name, Outcome.UNKNOWN, CheckLevel.WITH_UPDATE,
                    remote_accessed=False,
                )
                continue

            # Level 2: + local data.  Purely-local constraints evaluate
            # against the post-update state (in the stateful tail, after
            # the delta is applied); the others run their precompiled
            # local test against the pre-update relation.  Locality is
            # judged against *this session's* view — a shard session
            # treats sibling-shard predicates as non-local.
            if constraint.predicates() <= self.local_predicates:
                pending_local.append(constraint)
                continue
            if predicate in self.local_predicates:
                probe: Optional[Insertion] = None
                if isinstance(update, Insertion):
                    probe = update
                elif isinstance(update, Modification):
                    # The deleted tuple still contributes its reduction:
                    # the constraint held while it was stored, so its
                    # forbidden region is known clear — test the new
                    # tuple against the FULL pre-update relation.
                    probe = update.insertion
                if probe is not None:
                    plan = self.compiler.local_test_plan(constraint, predicate)
                    result = self._run_local_plan(plan, probe.values, name)
                    if result is True:
                        reports[name] = CheckReport(
                            name, Outcome.SATISFIED, CheckLevel.WITH_LOCAL_DATA,
                            remote_accessed=False, detail="complete local test",
                        )
                        continue
            pending_unknown.append((constraint, CheckLevel.WITH_LOCAL_DATA))

        return reports, pending_local, pending_unknown

    def _run_local_plan(self, plan, values: tuple, constraint_name: str):
        """Run one precompiled local test against this session's
        database, pushing it down to the storage backend when the backend
        executes compiled Theorem 5.3 tests itself (the SQLite backend's
        indexed ``SELECT EXISTS``)."""
        return plan.run_against(values, self.local_db, constraint_name)

    def _finish(
        self,
        update: Update,
        reports: dict[str, CheckReport],
        pending_local: list[Constraint],
        pending_unknown: list[tuple[Constraint, CheckLevel]],
        remote: RemoteSource,
        max_level: CheckLevel,
        apply_when_safe: bool,
        transaction: Optional[Transaction],
        record: bool = True,
    ) -> list[CheckReport]:
        """The stateful tail of :meth:`process`: apply the delta, settle
        the pending verdicts against the post-update state, and keep or
        roll back the update.

        *record* gates the effect-log hook: drain settles re-enter this
        tail for an update the journal already holds a record for, so
        they pass ``record=False``.
        """
        pending_before = len(self._pending)
        # Apply the delta once; all post-state evaluation below shares it.
        token = self.local_db.apply(update.as_delta())
        effective = token.as_delta()
        undos = self._propagate(effective)

        # Purely local: evaluate outright via the maintained
        # materialization — the one case a definite "no" is possible
        # without remote data.
        for constraint in pending_local:
            mat = self._materialization(constraint)
            outcome = Outcome.VIOLATED if mat.fires() else Outcome.SATISFIED
            reports[constraint.name] = CheckReport(
                constraint.name, outcome, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False, detail="constraint is purely local",
            )

        # Constraints whose missing predicates all live on sibling
        # shards are settled against the cross-shard union view: that
        # data is site-local, always reachable, so the verdict lands at
        # WITH_LOCAL_DATA and can never defer.
        if pending_unknown and self.peer_source is not None:
            pending_unknown = self._settle_with_peers(reports, pending_unknown)

        # Level 3: the full database, on request.  A remote source that
        # raises RemoteUnavailableError degrades the unresolved verdicts
        # to DEFERRED instead of crashing the stream; the update is then
        # queued for resolve_pending().
        defer_future = None
        defer_future_predicates: Optional[frozenset] = None
        if pending_unknown:
            remote_db: Optional[Database] = None
            peer_db: Optional[Database] = None
            unreachable: Optional[RemoteUnavailableError] = None
            if max_level >= CheckLevel.FULL_DATABASE and remote is not None:
                needed = self._remote_predicates(
                    constraint for constraint, _ in pending_unknown
                )
                # A constraint spanning sibling shards *and* the true
                # remote needs both; only the remote part can fail.
                peer_needed = needed & self.peer_predicates
                if self.peer_source is not None and peer_needed:
                    peer_db = _fetch_remote(self.peer_source, peer_needed)
                    self.stats.peer_fetches += 1
                    needed -= peer_needed
                try:
                    remote_db = _fetch_remote(remote, needed)
                except RemoteUnavailableError as exc:
                    unreachable = exc
                    # An overlapped link raises with the fetch still in
                    # flight; remember the future so the drain can settle
                    # from its result instead of re-fetching.
                    defer_future = getattr(exc, "future", None)
                    if defer_future is not None:
                        defer_future_predicates = getattr(
                            exc, "predicates", None
                        )
                else:
                    # A Database handed in directly (e.g. by the
                    # resolve_pending drain, which fetched it itself and
                    # already counted the trip) is not a fetch.
                    if callable(remote):
                        self.stats.remote_fetches += 1
            if remote_db is not None:
                merged = self.local_db.copy()
                for source in (peer_db, remote_db):
                    if source is None:
                        continue
                    for pred in source.predicates():
                        for fact in source.facts(pred):
                            merged.insert(pred, fact)
                for constraint, _level in pending_unknown:
                    outcome = (
                        Outcome.SATISFIED
                        if constraint.holds(merged)
                        else Outcome.VIOLATED
                    )
                    reports[constraint.name] = CheckReport(
                        constraint.name, outcome, CheckLevel.FULL_DATABASE,
                        remote_accessed=True, detail="full evaluation",
                    )
            elif unreachable is not None:
                for constraint, level in pending_unknown:
                    reports[constraint.name] = CheckReport(
                        constraint.name, Outcome.DEFERRED, level,
                        remote_accessed=False,
                        detail=f"remote unreachable: {unreachable}",
                    )
            else:
                for constraint, level in pending_unknown:
                    reports[constraint.name] = CheckReport(
                        constraint.name, Outcome.UNKNOWN, level,
                        remote_accessed=False,
                    )

        ordered = [reports[c.name] for c in self.constraints]
        rejected = any(r.outcome is Outcome.VIOLATED for r in ordered)
        deferred = tuple(
            r.constraint_name for r in ordered if r.outcome is Outcome.DEFERRED
        )
        held = not self.apply_on_unknown and any(
            r.outcome in (Outcome.UNKNOWN, Outcome.DEFERRED) for r in ordered
        )
        if rejected or held or not apply_when_safe:
            self.local_db.undo(token)
            # Materializations that saw the delta are reverted exactly;
            # ones built mid-call (post-state) take the inverse delta.
            maintained = {id(mat) for mat, _ in undos}
            for mat, undo in undos:
                mat.revert(undo)
            if not effective.is_empty():
                inverse = effective.inverted()
                for mat in self._materializations.values():
                    if id(mat) not in maintained:
                        mat.apply_delta(inverse)
                        self.stats.incremental_deltas += 1
            if rejected:
                self.stats.rejected += 1
            elif held and apply_when_safe:
                if deferred:
                    self.stats.deferred_remote += 1
                else:
                    self.stats.deferred_unknown += 1
            if deferred and not rejected and apply_when_safe and transaction is None:
                # Pessimistic policy: the update is *held* — nothing in
                # the database — until resolution retries it.  (Inside a
                # transaction the DEFERRED verdict aborts the transaction
                # instead; a held retry after the abort would resurrect a
                # rolled-back update.)
                self._queue_pending(
                    update, deferred, reports, applied=False,
                    future=defer_future,
                    future_predicates=defer_future_predicates,
                )
        else:
            self.stats.applied += 1
            if transaction is not None:
                transaction.record(token, undos)
            if deferred:
                # Optimistic policy: the update stays applied while the
                # verdict is pending; the token lets a VIOLATED
                # resolution reverse exactly what this update changed.
                # Inside a transaction nothing is queued — the DEFERRED
                # verdict aborts the transaction instead, and an abort's
                # rollback would strand the queued entry.
                self.stats.deferred_remote += 1
                if transaction is None:
                    self._queue_pending(
                        update, deferred, reports, applied=True, token=token,
                        future=defer_future,
                        future_predicates=defer_future_predicates,
                    )
        if record and self.effect_log is not None:
            applied_now = not (rejected or held or not apply_when_safe)
            queued = (
                self._pending[-1]
                if len(self._pending) > pending_before
                else None
            )
            self.effect_log.record_update(
                update,
                ordered,
                applied=applied_now,
                token=token if applied_now else None,
                entry=queued,
            )
        return ordered

    def process(
        self,
        update: Update,
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
        apply_when_safe: bool = True,
        transaction: Optional[Transaction] = None,
    ) -> list[CheckReport]:
        """Check one update; apply or withhold it per the session policy.

        Levels 0-2 consult only the session state.  Constraints still
        UNKNOWN afterwards escalate to *remote* (a database, or a
        callable fetched once on first need) when *max_level* allows.
        The update stays applied to the owned database when
        *apply_when_safe* is true, no verdict is VIOLATED, and — unless
        the session was built with ``apply_on_unknown=True`` (the
        default) — every verdict is SATISFIED; otherwise it is rolled
        back exactly.  When *transaction* is given, an applied update's
        effective changes are recorded there so the whole sequence can
        be rolled back later.
        """
        self.stats.updates += 1
        reports, pending_local, pending_unknown = self._static_checks(
            update, max_level
        )
        ordered = self._finish(
            update, reports, pending_local, pending_unknown,
            remote, max_level, apply_when_safe, transaction,
        )
        if self.effect_log is not None:
            self.effect_log.safe_point()
        return ordered

    def check(
        self,
        update: Update,
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[CheckReport]:
        """Like :meth:`process` but never keeps the update applied."""
        return self.process(update, remote, max_level, apply_when_safe=False)

    def process_transaction(
        self,
        updates: Iterable[Update],
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> tuple[bool, list[list[CheckReport]]]:
        """Process a sequence of updates atomically.

        Each update is checked against the local state left by its
        predecessors (the standard deferred-abort model).  If any update
        is rejected — or stays UNKNOWN while the session applies only on
        SATISFIED, or comes back DEFERRED because the remote was
        unreachable (a transaction cannot commit with an unverified
        member) — the recorded effective tokens are replayed in reverse,
        restoring the database and every maintained materialization to
        the exact pre-transaction state.

        Returns ``(committed, reports_per_update)``; processing stops at
        the aborting update.
        """
        txn = self.transaction()
        all_reports: list[list[CheckReport]] = []
        for update in updates:
            reports = self.process(update, remote, max_level, transaction=txn)
            all_reports.append(reports)
            aborted = any(
                r.outcome in (Outcome.VIOLATED, Outcome.DEFERRED)
                for r in reports
            ) or (
                not self.apply_on_unknown
                and any(r.outcome is Outcome.UNKNOWN for r in reports)
            )
            if aborted:
                txn.rollback()
                self.stats.transactions_rolled_back += 1
                return False, all_reports
        txn.commit()
        return True, all_reports

    # -- deferred verdicts -----------------------------------------------------
    def _remote_predicates(self, constraints: Iterable[Constraint]) -> set[str]:
        """The remote predicates a level-3 check of *constraints* needs —
        the restriction passed to predicate-aware remote sources so an
        escalation ships two tables, not the whole remote database."""
        needed: set[str] = set()
        for constraint in constraints:
            needed |= constraint.predicates() - self.local_predicates
        return needed

    def _settle_with_peers(
        self,
        reports: dict[str, CheckReport],
        pending_unknown: list[tuple[Constraint, CheckLevel]],
    ) -> list[tuple[Constraint, CheckLevel]]:
        """Decide the constraints whose missing predicates all live on
        sibling shards, using the lazily materialized union view.

        Returns the entries that still need the true remote.  Peer data
        is part of the same site, so these verdicts count as level 2
        (``WITH_LOCAL_DATA``) with no remote access — exactly what an
        unsharded session reports for a purely-local constraint."""
        peer_pending: list[tuple[Constraint, CheckLevel]] = []
        remaining: list[tuple[Constraint, CheckLevel]] = []
        needed: set[str] = set()
        for constraint, level in pending_unknown:
            missing = constraint.predicates() - self.local_predicates
            if missing and missing <= self.peer_predicates:
                peer_pending.append((constraint, level))
                needed |= missing
            else:
                remaining.append((constraint, level))
        if not peer_pending:
            return remaining
        peer_db = _fetch_remote(self.peer_source, needed)
        self.stats.peer_fetches += 1
        merged = self.local_db.copy()
        for pred in peer_db.predicates():
            for fact in peer_db.facts(pred):
                merged.insert(pred, fact)
        for constraint, _level in peer_pending:
            outcome = (
                Outcome.SATISFIED
                if constraint.holds(merged)
                else Outcome.VIOLATED
            )
            reports[constraint.name] = CheckReport(
                constraint.name, outcome, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False, detail="cross-shard union view",
            )
        return remaining

    def _next_seq(self) -> int:
        if self._seq_source is not None:
            return self._seq_source()
        self._pending_seq += 1
        return self._pending_seq

    def _queue_pending(
        self,
        update: Update,
        unresolved: tuple[str, ...],
        reports: dict[str, CheckReport],
        applied: bool,
        token: Optional[UndoToken] = None,
        future: Optional[object] = None,
        future_predicates: Optional[frozenset] = None,
    ) -> None:
        self._pending.append(
            PendingVerdict(
                seq=self._next_seq(),
                update=update,
                unresolved=unresolved,
                reports=dict(reports),
                applied=applied,
                token=token,
                future=future,
                future_predicates=future_predicates,
            )
        )

    @property
    def pending(self) -> tuple[PendingVerdict, ...]:
        """The queued deferred verdicts, oldest first (read-only view)."""
        return tuple(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def resolve_pending(
        self,
        remote: RemoteSource,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[PendingVerdict]:
        """Drain the deferred-verdict queue while the remote answers.

        The paper's level-3 test is a *global* consistency check, sound
        because the pre-update state is known consistent.  Optimistically
        applied deferred updates break that premise: one bad unverified
        fact would implicate every entry checked after it.  The drain
        therefore **quarantines** first — every applied pending entry's
        effective token is reversed (newest first) so the session holds
        verified facts only — and then settles entries oldest-first,
        re-running each through the full level pipeline against the
        verified state plus the fetched remote data and re-applying it
        when safe, exactly as if the entries were arriving now in their
        original order.  A previously applied entry whose re-check comes
        back VIOLATED simply stays reversed (counted in
        :attr:`SessionStats.deferred_rolled_back`).

        Returns the entries settled by this call, their ``reports``
        updated in place with the final verdicts.  The drain survives
        **partial recovery**: a fetch failure that names the failed
        sites (:attr:`~repro.errors.RemoteUnavailableError.sites`, as a
        federated fan-out raises it) marks only those sites *dark* and
        the walk continues, settling exactly the entries whose full
        site-need set is still covered.  An entry is skipped when (a) it
        needs a dark site, or (b) settling it out of order would not
        commute with an already-skipped entry — i.e. some constraint
        mentions both its update predicate and a skipped one; every
        skipped entry's predicate joins the *blocked* set so the guard
        is transitive.  Out-of-order settling is sound because the
        quarantine has already stripped every unverified fact (the
        settle runs against verified state only) and the commutation
        guard means the skipped updates could equally well have arrived
        after the settled ones.  An unattributed failure (a legacy
        single-site source with unknown needs) stops the walk as
        before.  Either way un-settled quarantined entries are re-applied
        exactly (rolling back the reversal) and the remainder stays
        queued; the call never raises
        :class:`~repro.errors.RemoteUnavailableError`.

        For the whole drain, the materializations the queued entries
        reference are **pinned** in the LRU cache: without the pin, an
        eviction between queueing and draining (or mid-drain, while a
        settle rebuilds a different constraint) silently drops the entry
        from the quarantine/redo delta maintenance and forces repeated
        from-scratch rebuilds against whatever state the settle loop is
        mid-way through.
        """
        quarantined: dict[int, UndoToken] = {}
        resolved: list[PendingVerdict] = []
        with self._pinned_pending_materializations():
            try:
                # Quarantine: strip the unverified optimistic facts,
                # newest first.
                for entry in reversed(self._pending):
                    reversal = self._quarantine_entry(entry)
                    if reversal is not None:
                        quarantined[entry.seq] = reversal
                dark: set[str] = set()
                blocked: set[str] = set()
                index = 0
                while index < len(self._pending):
                    entry = self._pending[index]
                    if self._drain_blocked(entry, dark, blocked):
                        blocked.add(entry.update.predicate)
                        index += 1
                        continue
                    try:
                        resolved.append(
                            self._settle_at(index, remote, max_level, quarantined)
                        )
                    except RemoteUnavailableError as exc:
                        failed = set(exc.sites) or self._entry_site_needs(entry)
                        if not failed:
                            break
                        dark |= failed
                        blocked.add(entry.update.predicate)
                        index += 1
            finally:
                self._redo_quarantined(quarantined)
        return resolved

    # -- drain building blocks (shared with ShardedChecker) --------------------
    def _pending_local_constraints(self) -> list[Constraint]:
        """The purely-local constraints a settle of any queued entry will
        consult through its maintained materialization."""
        predicates = {entry.update.predicate for entry in self._pending}
        return [
            constraint
            for constraint in self._local_constraints
            if any(self.compiler.mentions(constraint, p) for p in predicates)
        ]

    @contextmanager
    def _pinned_pending_materializations(self):
        """Build (from the current database) and pin every materialization
        the queued entries reference, for the duration of a drain.

        Pinned entries survive the whole drain, so the quarantine
        reversal, each settle, and the redo all maintain them
        incrementally instead of skipping evicted ones.  Every name is
        pinned first, *then* built: a build's put must evict neither an
        already-cached referenced entry nor (with every other slot
        pinned) the entry it just added — and because the builds run
        inside :meth:`~repro.core.compiler.LRUCache.pinning`, a build or
        drain body that raises can no longer leak a pinned entry and
        permanently shrink the cache.  Overshoot the pins protected is
        reclaimed (and counted) on the way out."""
        referenced = self._pending_local_constraints()
        try:
            with self._materializations.pinning(
                constraint.name for constraint in referenced
            ):
                for constraint in referenced:
                    self._materialization(constraint)
                yield
        finally:
            evicted = self._materializations.trim()
            self.stats.materializations_evicted += len(evicted)

    def _entry_needed_predicates(self, entry: PendingVerdict) -> set[str]:
        """The off-site predicates a settle of *entry* must fetch."""
        needed = self._remote_predicates(
            constraint
            for constraint in self.constraints
            if self.compiler.mentions(constraint, entry.update.predicate)
        )
        # Sibling-shard predicates come from the always-reachable peer
        # source (the settle re-fetches them itself); only the true
        # off-site part is the fetch's job.
        return needed - self.peer_predicates

    def _entry_site_needs(self, entry: PendingVerdict) -> frozenset[str]:
        """The minimal set of remote sites that can settle *entry*."""
        return self.compiler.predicate_sites(self._entry_needed_predicates(entry))

    def _drain_blocked(
        self, entry: PendingVerdict, dark: set[str], blocked: set[str]
    ) -> bool:
        """Must the partial-recovery walk skip *entry*?

        Yes when its site needs touch a dark site, or when settling it
        out of order would not commute with an already-skipped entry: a
        constraint ties its update predicate to a *different* skipped
        predicate, or to the *same* one through a self-join or negation
        (:meth:`~repro.core.compiler.ConstraintCompiler.single_binding`
        clears the common same-predicate stream case)."""
        if dark and self._entry_site_needs(entry) & dark:
            return True
        if blocked:
            predicate = entry.update.predicate
            for constraint in self.constraints:
                if not self.compiler.mentions(constraint, predicate):
                    continue
                others = blocked - {predicate}
                if any(
                    self.compiler.mentions(constraint, other)
                    for other in others
                ):
                    return True
            if predicate in blocked and not self.compiler.single_binding(
                predicate
            ):
                return True
        return False

    def _quarantine_entry(self, entry: PendingVerdict) -> Optional[UndoToken]:
        """Reverse one applied pending entry's effective token (no-op for
        held entries); returns the reversal for the redo."""
        if entry.applied and entry.token is not None:
            return rollback_token(
                self.local_db, entry.token, self._materializations.values()
            )
        return None

    def _settle_head(
        self,
        remote: RemoteSource,
        max_level: CheckLevel,
        quarantined: dict[int, UndoToken],
    ) -> PendingVerdict:
        """Fetch for and settle the oldest queued entry (see
        :meth:`_settle_at`)."""
        return self._settle_at(0, remote, max_level, quarantined)

    def _settle_at(
        self,
        position: int,
        remote: RemoteSource,
        max_level: CheckLevel,
        quarantined: dict[int, UndoToken],
    ) -> PendingVerdict:
        """Fetch for and settle the queued entry at *position*.

        The whole pipeline is re-run, and its level-2 outcome may differ
        against today's state — the fetch covers every remote predicate
        any constraint on the entry's relation could escalate for.
        Raises :class:`~repro.errors.RemoteUnavailableError` (leaving the
        entry queued) when the remote stays unreachable, or when the
        entry's overlapped escalation future is still in flight — the
        drain must not settle from data it does not have yet.

        An entry carrying a completed future settles from that result as
        long as the future's predicate restriction covers today's needs
        (an unrestricted fetch always does); a too-narrow snapshot would
        silently treat the missing relations as empty, so it is discarded
        and the settle falls back to a synchronous fetch.  A future that
        *failed* is cleared too — the next drain round re-fetches.
        """
        entry = self._pending[position]
        needed = self._entry_needed_predicates(entry)
        remote_db: Optional[Database] = None
        future = entry.future
        if future is not None:
            covered = (
                entry.future_predicates is None
                or needed <= set(entry.future_predicates)
            )
            if not covered:
                entry.future = None
                entry.future_predicates = None
            elif not future.done():
                raise RemoteUnavailableError(
                    "escalation fetch still in flight", reason="in-flight"
                )
            else:
                entry.future = None
                entry.future_predicates = None
                # Raises RemoteUnavailableError on a failed fetch, which
                # stops the drain exactly like a synchronous failure; the
                # cleared future makes the next round fetch fresh.
                remote_db = future.result()
        if remote_db is None:
            remote_db = _fetch_remote(remote, needed)
        self.stats.remote_fetches += 1
        self._pending.pop(position)
        quarantined.pop(entry.seq, None)
        self._settle_pending(entry, remote_db, max_level)
        self.stats.deferred_resolved += 1
        return entry

    def _redo_quarantined(self, quarantined: dict[int, UndoToken]) -> None:
        """Re-apply the reversals of entries still queued.  rollback_token
        returned the effectively-reversed subset *in the original
        orientation*, so the redo is a forward application, oldest
        first."""
        for entry in self._pending:
            reversal = quarantined.pop(entry.seq, None)
            if reversal is not None:
                redo = self.local_db.apply(reversal.as_delta())
                effective = redo.as_delta()
                if not effective.is_empty():
                    for mat in self._materializations.values():
                        mat.apply_delta(effective)

    def _settle_pending(
        self,
        entry: PendingVerdict,
        remote_db: Database,
        max_level: CheckLevel,
        record: bool = False,
    ) -> None:
        """Finalize one queue entry against a successfully fetched remote.

        The entry's quarantine reversal (if it was applied) has already
        happened; the update is simply retried end to end against the
        current verified state.  ``stats.updates`` was counted at defer
        time, so the pipeline is driven directly rather than through
        :meth:`process`.  Drains settle with ``record=False`` (they are
        never journalled); the process-pool escalation bounce settles the
        just-deferred tail entry with ``record=True`` so the journal gets
        the *final* record — settled verdicts and the fresh apply token —
        instead of the provisional deferred one.
        """
        was_applied = entry.applied
        reports, pending_local, pending_unknown = self._static_checks(
            entry.update, max_level
        )
        ordered = self._finish(
            entry.update, reports, pending_local, pending_unknown,
            remote_db, max_level, True, None, record=record,
        )
        entry.reports = {r.constraint_name: r for r in ordered}
        entry.unresolved = ()
        entry.token = None
        rejected = any(r.outcome is Outcome.VIOLATED for r in ordered)
        entry.applied = not rejected
        if was_applied:
            # Applied was counted at defer time; _finish just counted the
            # re-application (or nothing, on a rejection that makes the
            # quarantine reversal permanent).
            self.stats.applied -= 1
            if rejected:
                self.stats.deferred_rolled_back += 1

    # -- batched maintenance ---------------------------------------------------
    def _delta_is_monotone(self, delta: Delta) -> bool:
        """Can *delta* only ever *add* ``panic`` derivations to the
        purely-local constraints?  (Insertions into positively-occurring
        predicates, deletions from negatively-occurring ones.)  Such
        deltas may be coalesced: a clean post-batch state then proves
        every intermediate state clean."""
        for constraint in self._local_constraints:
            polarities = constraint.engine.panic_polarities()
            for predicate in delta.insertions:
                if not polarities.get(predicate, frozenset()) <= {1}:
                    return False
            for predicate in delta.deletions:
                if not polarities.get(predicate, frozenset()) <= {-1}:
                    return False
        return True

    def _probe_fires(
        self, pending_local: list[Constraint], token: UndoToken
    ) -> bool:
        """Would the effective changes in *token* (already applied) derive
        a new ``panic`` fact for any of the pending purely-local
        constraints?  Only panic-only programs can answer without
        maintained state; for the rest the probe abstains (returns
        nothing firing) and correctness rests on the flush-time replay."""
        if token.is_noop():
            return False
        effective = token.as_delta()
        for constraint in pending_local:
            if constraint.engine.panic_delta_probe(self.local_db, effective):
                return True
        return False

    def _flush_batch(
        self,
        batch: _PendingBatch,
        remote: RemoteSource,
        max_level: CheckLevel,
    ) -> list[list[CheckReport]]:
        """Settle a coalesced batch: one maintenance pass per live
        materialization with the composed net delta, then read the
        deferred purely-local verdicts off the maintained state.

        If nothing fires, every batched update was individually safe (the
        batch is violation-monotone by construction) and the deferred
        reports are finalized wholesale.  If something fires, the pass is
        reverted, the tokens are undone in reverse, and the batch is
        replayed update by update — exactly reproducing per-update
        verdicts, rollbacks, and final state.
        """
        if not batch.updates:
            return []
        composed = Delta()
        for token in batch.tokens:
            composed.extend(token.as_delta())
        undos = self._propagate(composed)
        self.stats.batches_flushed += 1

        # Snapshot the cache *objects*, not just the key set: the verdict
        # loop below may evict a pre-batch entry to make room and may even
        # rebuild one under a pre-existing name (from post-batch state).
        # The replay path must restore the exact pre-probe contents.
        probe_snapshot = {
            name: self._materializations[name]
            for name in self._materializations.keys()
        }
        fired = False
        for pending in batch.pending_locals:
            for constraint in pending:
                if self._materialization(constraint).fires():
                    fired = True
                    break
            if fired:
                break

        if not fired:
            count = len(batch.updates)
            self.stats.updates += count
            self.stats.applied += count
            self.stats.batched_updates += count
            results = []
            for index, (reports, pending) in enumerate(
                zip(batch.reports, batch.pending_locals)
            ):
                for constraint in pending:
                    reports[constraint.name] = CheckReport(
                        constraint.name, Outcome.SATISFIED,
                        CheckLevel.WITH_LOCAL_DATA,
                        remote_accessed=False, detail="constraint is purely local",
                    )
                ordered = [reports[c.name] for c in self.constraints]
                results.append(ordered)
                if self.effect_log is not None:
                    # One record per member, in stream order — a batch is
                    # a maintenance optimization, not a journal unit.
                    self.effect_log.record_update(
                        batch.updates[index], ordered,
                        applied=True, token=batch.tokens[index], entry=None,
                    )
            if self.effect_log is not None:
                self.effect_log.safe_point()
            return results

        # Exact replay: restore the pre-batch state, then re-process each
        # update through the ordinary per-update path.  The cache must end
        # probe-invariant: drop every materialization the verdict loop
        # built (post-batch state, not covered by *undos* — including one
        # rebuilt under a pre-existing name after a probe-time eviction),
        # revert the pre-batch survivors exactly, and re-insert pre-batch
        # entries the probe evicted (they saw the composed delta via
        # *undos*, so the revert below restores them too).
        self.stats.batch_replays += 1
        for name in list(self._materializations.keys()):
            if self._materializations[name] is not probe_snapshot.get(name):
                self._materializations.pop(name)
        for mat, undo in reversed(undos):
            mat.revert(undo)
        for name, mat in probe_snapshot.items():
            if name not in self._materializations:
                self._materializations.put(name, mat)
        for token in reversed(batch.tokens):
            self.local_db.undo(token)
        return [self.process(update, remote, max_level) for update in batch.updates]

    def process_stream(
        self,
        updates: Iterable[Update],
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
        batch_size: Optional[int] = None,
        transaction: Optional[Transaction] = None,
    ) -> list[list[CheckReport]]:
        """Process a sequence of updates, applying each safe one.

        With a *batch_size*, consecutive safe updates whose deltas are
        violation-monotone for the purely-local constraints are coalesced:
        their deltas hit the database eagerly (so level-2 local tests see
        exactly the sequential pre-states) but materialization
        maintenance runs once per batch on the composed net delta instead
        of once per update.  Updates needing remote escalation, carrying
        non-monotone deltas, or arriving past the size bound flush the
        batch first.  Verdicts and final state are identical to
        per-update processing — a batch that fires is replayed exactly.

        Batching composes with fault-tolerant escalation by falling back
        to exact per-update handling: an update that *might* escalate
        (``pending_unknown`` non-empty) is never coalesced — it flushes
        the open batch and runs through :meth:`process`, which owns the
        per-update DEFERRED abort/queue point a coalesced batch lacks —
        and a flush-time replay re-processes each member individually
        the same way.  A DEFERRED verdict therefore queues a
        :class:`PendingVerdict` exactly as in unbatched mode, and a
        coalesced batch by construction never contains a deferral.

        With a *transaction*, every applied update's effective changes
        are recorded there so the caller can roll the whole stream back
        exactly.  Transactions cannot be combined with *batch_size*: a
        coalesced batch has no per-update abort point.
        """
        if batch_size and transaction is not None:
            raise ValueError(
                "batch_size and transaction cannot be combined: a coalesced "
                "batch has no per-update abort point"
            )
        if not batch_size:
            return [
                self.process(update, remote, max_level, transaction=transaction)
                for update in updates
            ]

        results: list[list[CheckReport]] = []
        batch = _PendingBatch()
        for update in updates:
            reports, pending_local, pending_unknown = self._static_checks(
                update, max_level
            )
            batchable = (
                not pending_unknown
                and (
                    self.apply_on_unknown
                    or not any(
                        r.outcome is Outcome.UNKNOWN for r in reports.values()
                    )
                )
                and self._delta_is_monotone(update.as_delta())
            )
            if not batchable:
                results.extend(self._flush_batch(batch, remote, max_level))
                batch.clear()
                self.stats.updates += 1
                results.append(
                    self._finish(
                        update, reports, pending_local, pending_unknown,
                        remote, max_level, True, None,
                    )
                )
                if self.effect_log is not None:
                    self.effect_log.safe_point()
                continue
            token = self.local_db.apply(update.as_delta())
            if pending_local and self._probe_fires(pending_local, token):
                # The update would fire a constraint: keep it out of the
                # batch so the common clean-flush path stays cheap.  Undo
                # the eager application and run the ordinary per-update
                # pipeline (which re-applies, settles verdicts, and rolls
                # back) after flushing what accumulated so far.
                self.local_db.undo(token)
                self.stats.batch_probe_vetoes += 1
                results.extend(self._flush_batch(batch, remote, max_level))
                batch.clear()
                results.append(self.process(update, remote, max_level))
                continue
            batch.add(update, reports, pending_local, token)
            if len(batch) >= batch_size:
                results.extend(self._flush_batch(batch, remote, max_level))
                batch.clear()
        results.extend(self._flush_batch(batch, remote, max_level))
        return results
