"""Incremental check sessions: the execute-many half of the pipeline.

A :class:`CheckSession` owns the local database and processes a *stream*
of updates against a compiled constraint set.  Across the stream it
maintains state the stateless checker rebuilds per call:

* one :class:`~repro.datalog.evaluation.Materialization` per purely-local
  constraint, kept current by delta maintenance instead of re-evaluating
  the constraint program against a fresh copy of the database — bounded
  by a size/recency (LRU) policy mirroring the level-1 verdict cache;
* the compiler's bounded level-1 verdict cache (update streams repeat
  shapes);
* copy-on-write snapshots and :class:`~repro.datalog.database.Delta`
  application with undo tokens, so a rejected update rolls back in time
  proportional to the update, not the database.

Every update flows through the same Section 2 level pipeline as
:class:`~repro.core.engine.PartialInfoChecker` and produces identical
:class:`~repro.core.outcomes.CheckReport` verdicts — the facade and the
session are two drivers over one compiled core.

Two batching layers sit on top of the per-update pipeline:

* :meth:`CheckSession.process_transaction` checks a sequence atomically:
  each update is validated against the state its predecessors left, and
  an abort replays the recorded :class:`~repro.datalog.database.UndoToken`\\ s
  in reverse (see :mod:`repro.core.transaction`), restoring the database
  *and* every maintained materialization exactly;
* :meth:`CheckSession.process_stream` with a ``batch_size`` coalesces
  consecutive *violation-monotone* safe updates into one composed
  :class:`~repro.datalog.database.Delta` and runs a single maintenance
  pass per batch instead of per update, falling back to an exact
  per-update replay on the rare batch that fires a constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler, LRUCache
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.core.transaction import Transaction
from repro.datalog.database import Database, Delta, UndoToken
from repro.datalog.evaluation import Materialization, MaterializationUndo
from repro.updates.update import Insertion, Modification, Update

__all__ = ["CheckSession", "SessionStats", "MATERIALIZATION_LIMIT"]

#: A remote database may be handed to :meth:`CheckSession.process` either
#: directly or as a zero-arg callable fetched only on escalation (so the
#: caller can meter round trips).
RemoteSource = Union[Database, Callable[[], Database], None]

#: Default bound on maintained materializations per session (one per
#: purely-local constraint), evicted least-recently-used beyond it.
MATERIALIZATION_LIMIT = 128


@dataclass
class SessionStats:
    """Counters describing how much work the session reused vs. redid."""

    updates: int = 0
    applied: int = 0
    rejected: int = 0
    #: updates left unapplied because a verdict stayed UNKNOWN while the
    #: session runs with ``apply_on_unknown=False``
    deferred_unknown: int = 0
    #: constraint-program materializations built from scratch
    materializations_built: int = 0
    #: checks answered from an already-maintained materialization
    materialization_reuses: int = 0
    #: materializations dropped by the size/recency policy
    materializations_evicted: int = 0
    #: delta-maintenance passes over materializations (incl. rollbacks)
    incremental_deltas: int = 0
    #: full remote fetches (level-3 escalations)
    remote_fetches: int = 0
    #: batched stream mode: coalesced maintenance flushes
    batches_flushed: int = 0
    #: batched stream mode: updates resolved inside a coalesced batch
    batched_updates: int = 0
    #: batched stream mode: batches that fired and were replayed exactly
    batch_replays: int = 0
    #: batched stream mode: updates kept out of a batch by the panic probe
    batch_probe_vetoes: int = 0
    #: transactions started / aborted via exact token rollback
    transactions: int = 0
    transactions_rolled_back: int = 0

    def summary_rows(self) -> list[tuple[str, object]]:
        return [
            ("updates", self.updates),
            ("applied", self.applied),
            ("rejected", self.rejected),
            ("deferred on unknown", self.deferred_unknown),
            ("materializations built", self.materializations_built),
            ("materialization reuses", self.materialization_reuses),
            ("materializations evicted", self.materializations_evicted),
            ("incremental deltas", self.incremental_deltas),
            ("remote fetches", self.remote_fetches),
            ("batches flushed", self.batches_flushed),
            ("batched updates", self.batched_updates),
            ("batch replays", self.batch_replays),
            ("batch probe vetoes", self.batch_probe_vetoes),
            ("transactions", self.transactions),
            ("transactions rolled back", self.transactions_rolled_back),
        ]


@dataclass
class _PendingBatch:
    """Bookkeeping for one in-flight coalesced batch: the updates whose
    deltas hit the database eagerly but whose materialization maintenance
    (and purely-local verdicts) are deferred to the flush."""

    updates: list[Update] = field(default_factory=list)
    reports: list[dict[str, CheckReport]] = field(default_factory=list)
    pending_locals: list[list[Constraint]] = field(default_factory=list)
    tokens: list[UndoToken] = field(default_factory=list)

    def add(
        self,
        update: Update,
        reports: dict[str, CheckReport],
        pending_local: list[Constraint],
        token: UndoToken,
    ) -> None:
        self.updates.append(update)
        self.reports.append(reports)
        self.pending_locals.append(pending_local)
        self.tokens.append(token)

    def __len__(self) -> int:
        return len(self.updates)

    def clear(self) -> None:
        self.updates.clear()
        self.reports.clear()
        self.pending_locals.clear()
        self.tokens.clear()


class CheckSession:
    """Check a stream of updates against one evolving local database.

    Parameters
    ----------
    constraints:
        The constraint set, or an already-built
        :class:`~repro.core.compiler.ConstraintCompiler` via *compiler*.
    local_predicates:
        The predicates stored at this site (ignored when *compiler* is
        given).
    local_db:
        The local database the session owns and mutates.  Updates that
        pass every check are applied; rejected updates are rolled back.
    apply_on_unknown:
        The application policy for updates whose final verdict includes
        UNKNOWN.  ``True`` (the default) applies them optimistically —
        only a definite VIOLATED rejects.  ``False`` applies an update
        only when every verdict is SATISFIED, leaving UNKNOWN updates
        unapplied (counted in :attr:`SessionStats.deferred_unknown`).
    max_materializations:
        Size bound for the maintained-materialization cache, evicted
        least-recently-used (mirroring the level-1 verdict LRU).
        ``None`` disables eviction.
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint] | None = None,
        local_predicates: Iterable[str] = (),
        local_db: Optional[Database] = None,
        use_interval_datalog: bool = False,
        compiler: Optional[ConstraintCompiler] = None,
        apply_on_unknown: bool = True,
        max_materializations: Optional[int] = MATERIALIZATION_LIMIT,
    ) -> None:
        if compiler is None:
            if constraints is None:
                raise ValueError("CheckSession needs constraints or a compiler")
            compiler = ConstraintCompiler(
                constraints, local_predicates, use_interval_datalog
            )
        self.compiler = compiler
        self.constraints = compiler.constraints
        self.local_predicates = compiler.local_predicates
        self.local_db = local_db if local_db is not None else Database()
        self.apply_on_unknown = apply_on_unknown
        self.stats = SessionStats()
        self._materializations: LRUCache = LRUCache(
            max_materializations if max_materializations is not None else float("inf")
        )
        self._local_constraints = [
            c for c in self.constraints if compiler.is_local_constraint(c)
        ]

    # -- materialization plumbing ---------------------------------------------
    def _materialization(self, constraint: Constraint) -> Materialization:
        """The maintained evaluation of a purely-local constraint; built
        from the current database on first use, maintained afterwards,
        and evicted least-recently-used past the session's bound."""
        mat = self._materializations.get(constraint.name)
        if mat is None:
            mat = constraint.engine.materialize(self.local_db)
            evicted = self._materializations.put(constraint.name, mat)
            self.stats.materializations_built += 1
            self.stats.materializations_evicted += len(evicted)
        else:
            self.stats.materialization_reuses += 1
        return mat

    def _propagate(
        self, effective: Delta
    ) -> list[tuple[Materialization, MaterializationUndo]]:
        """Maintain every existing materialization after a database change.

        Returns (materialization, undo) pairs so a rejected update can
        roll the maintained state back exactly, without re-running
        maintenance on the inverse delta."""
        if effective.is_empty():
            return []
        undos = []
        for mat in self._materializations.values():
            undos.append((mat, mat.apply_delta(effective)))
            self.stats.incremental_deltas += 1
        return undos

    def transaction(self) -> Transaction:
        """A fresh exact-rollback transaction scoped to this session.

        Pass it to :meth:`process` (or :meth:`apply_unchecked`) so the
        effective :class:`~repro.datalog.database.UndoToken` of each
        applied update is recorded; ``rollback()`` then restores the
        database and every maintained materialization to the state at
        this call — including facts a redundant insertion did *not* add.
        """
        self.stats.transactions += 1
        return Transaction(
            self.local_db, lambda: list(self._materializations.values())
        )

    def apply_unchecked(
        self, update: Update, transaction: Optional[Transaction] = None
    ) -> None:
        """Apply *update* without checking (the caller already decided),
        keeping the maintained materializations in sync."""
        token = self.local_db.apply(update.as_delta())
        undos = self._propagate(token.as_delta())
        if transaction is not None:
            transaction.record(token, undos)

    # -- the stream pipeline -----------------------------------------------------
    def _static_checks(
        self, update: Update, max_level: CheckLevel
    ) -> tuple[
        dict[str, CheckReport],
        list[Constraint],
        list[tuple[Constraint, CheckLevel]],
    ]:
        """Levels 0-2 without touching session state: every verdict
        decidable from the compiled constraints, the update, and the
        *pre-update* database.

        Returns the decided reports plus two pending lists: purely-local
        constraints (decidable from the post-update materialization) and
        constraints needing level-3 remote data.
        """
        reports: dict[str, CheckReport] = {}
        pending_local: list[Constraint] = []
        pending_unknown: list[tuple[Constraint, CheckLevel]] = []
        predicate = update.predicate

        for constraint in self.constraints:
            name = constraint.name
            compiled = self.compiler.compiled(name)
            if not self.compiler.mentions(constraint, predicate):
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False, detail="update predicate not mentioned",
                )
                continue

            # Level 0: subsumption by the other constraints.
            if compiled.subsumed:
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False, detail="subsumed by other constraints",
                )
                continue
            if max_level < CheckLevel.WITH_UPDATE:
                reports[name] = CheckReport(
                    name, Outcome.UNKNOWN, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False,
                )
                continue

            # Level 1: constraints + update (LRU-cached verdict).
            if self.compiler.level1_verdict(constraint, update):
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.WITH_UPDATE,
                    remote_accessed=False, detail="update-independence containment",
                )
                continue
            if max_level < CheckLevel.WITH_LOCAL_DATA:
                reports[name] = CheckReport(
                    name, Outcome.UNKNOWN, CheckLevel.WITH_UPDATE,
                    remote_accessed=False,
                )
                continue

            # Level 2: + local data.  Purely-local constraints evaluate
            # against the post-update state (in the stateful tail, after
            # the delta is applied); the others run their precompiled
            # local test against the pre-update relation.
            if self.compiler.is_local_constraint(constraint):
                pending_local.append(constraint)
                continue
            if predicate in self.local_predicates:
                probe: Optional[Insertion] = None
                if isinstance(update, Insertion):
                    probe = update
                elif isinstance(update, Modification):
                    # The deleted tuple still contributes its reduction:
                    # the constraint held while it was stored, so its
                    # forbidden region is known clear — test the new
                    # tuple against the FULL pre-update relation.
                    probe = update.insertion
                if probe is not None:
                    plan = self.compiler.local_test_plan(constraint, predicate)
                    result = plan.run(probe.values, self.local_db.facts(predicate))
                    if result is True:
                        reports[name] = CheckReport(
                            name, Outcome.SATISFIED, CheckLevel.WITH_LOCAL_DATA,
                            remote_accessed=False, detail="complete local test",
                        )
                        continue
            pending_unknown.append((constraint, CheckLevel.WITH_LOCAL_DATA))

        return reports, pending_local, pending_unknown

    def _finish(
        self,
        update: Update,
        reports: dict[str, CheckReport],
        pending_local: list[Constraint],
        pending_unknown: list[tuple[Constraint, CheckLevel]],
        remote: RemoteSource,
        max_level: CheckLevel,
        apply_when_safe: bool,
        transaction: Optional[Transaction],
    ) -> list[CheckReport]:
        """The stateful tail of :meth:`process`: apply the delta, settle
        the pending verdicts against the post-update state, and keep or
        roll back the update."""
        # Apply the delta once; all post-state evaluation below shares it.
        token = self.local_db.apply(update.as_delta())
        effective = token.as_delta()
        undos = self._propagate(effective)

        # Purely local: evaluate outright via the maintained
        # materialization — the one case a definite "no" is possible
        # without remote data.
        for constraint in pending_local:
            mat = self._materialization(constraint)
            outcome = Outcome.VIOLATED if mat.fires() else Outcome.SATISFIED
            reports[constraint.name] = CheckReport(
                constraint.name, outcome, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False, detail="constraint is purely local",
            )

        # Level 3: the full database, on request.
        if pending_unknown:
            remote_db: Optional[Database] = None
            if max_level >= CheckLevel.FULL_DATABASE and remote is not None:
                remote_db = remote() if callable(remote) else remote
                self.stats.remote_fetches += 1
            if remote_db is not None:
                merged = self.local_db.copy()
                for pred in remote_db.predicates():
                    for fact in remote_db.facts(pred):
                        merged.insert(pred, fact)
                for constraint, _level in pending_unknown:
                    outcome = (
                        Outcome.SATISFIED
                        if constraint.holds(merged)
                        else Outcome.VIOLATED
                    )
                    reports[constraint.name] = CheckReport(
                        constraint.name, outcome, CheckLevel.FULL_DATABASE,
                        remote_accessed=True, detail="full evaluation",
                    )
            else:
                for constraint, level in pending_unknown:
                    reports[constraint.name] = CheckReport(
                        constraint.name, Outcome.UNKNOWN, level,
                        remote_accessed=False,
                    )

        ordered = [reports[c.name] for c in self.constraints]
        rejected = any(r.outcome is Outcome.VIOLATED for r in ordered)
        deferred = not self.apply_on_unknown and any(
            r.outcome is Outcome.UNKNOWN for r in ordered
        )
        if rejected or deferred or not apply_when_safe:
            self.local_db.undo(token)
            # Materializations that saw the delta are reverted exactly;
            # ones built mid-call (post-state) take the inverse delta.
            maintained = {id(mat) for mat, _ in undos}
            for mat, undo in undos:
                mat.revert(undo)
            if not effective.is_empty():
                inverse = effective.inverted()
                for mat in self._materializations.values():
                    if id(mat) not in maintained:
                        mat.apply_delta(inverse)
                        self.stats.incremental_deltas += 1
            if rejected:
                self.stats.rejected += 1
            elif deferred and apply_when_safe:
                self.stats.deferred_unknown += 1
        else:
            self.stats.applied += 1
            if transaction is not None:
                transaction.record(token, undos)
        return ordered

    def process(
        self,
        update: Update,
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
        apply_when_safe: bool = True,
        transaction: Optional[Transaction] = None,
    ) -> list[CheckReport]:
        """Check one update; apply or withhold it per the session policy.

        Levels 0-2 consult only the session state.  Constraints still
        UNKNOWN afterwards escalate to *remote* (a database, or a
        callable fetched once on first need) when *max_level* allows.
        The update stays applied to the owned database when
        *apply_when_safe* is true, no verdict is VIOLATED, and — unless
        the session was built with ``apply_on_unknown=True`` (the
        default) — every verdict is SATISFIED; otherwise it is rolled
        back exactly.  When *transaction* is given, an applied update's
        effective changes are recorded there so the whole sequence can
        be rolled back later.
        """
        self.stats.updates += 1
        reports, pending_local, pending_unknown = self._static_checks(
            update, max_level
        )
        return self._finish(
            update, reports, pending_local, pending_unknown,
            remote, max_level, apply_when_safe, transaction,
        )

    def check(
        self,
        update: Update,
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[CheckReport]:
        """Like :meth:`process` but never keeps the update applied."""
        return self.process(update, remote, max_level, apply_when_safe=False)

    def process_transaction(
        self,
        updates: Iterable[Update],
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> tuple[bool, list[list[CheckReport]]]:
        """Process a sequence of updates atomically.

        Each update is checked against the local state left by its
        predecessors (the standard deferred-abort model).  If any update
        is rejected — or stays UNKNOWN while the session applies only on
        SATISFIED — the recorded effective tokens are replayed in
        reverse, restoring the database and every maintained
        materialization to the exact pre-transaction state.

        Returns ``(committed, reports_per_update)``; processing stops at
        the aborting update.
        """
        txn = self.transaction()
        all_reports: list[list[CheckReport]] = []
        for update in updates:
            reports = self.process(update, remote, max_level, transaction=txn)
            all_reports.append(reports)
            aborted = any(r.outcome is Outcome.VIOLATED for r in reports) or (
                not self.apply_on_unknown
                and any(r.outcome is Outcome.UNKNOWN for r in reports)
            )
            if aborted:
                txn.rollback()
                self.stats.transactions_rolled_back += 1
                return False, all_reports
        txn.commit()
        return True, all_reports

    # -- batched maintenance ---------------------------------------------------
    def _delta_is_monotone(self, delta: Delta) -> bool:
        """Can *delta* only ever *add* ``panic`` derivations to the
        purely-local constraints?  (Insertions into positively-occurring
        predicates, deletions from negatively-occurring ones.)  Such
        deltas may be coalesced: a clean post-batch state then proves
        every intermediate state clean."""
        for constraint in self._local_constraints:
            polarities = constraint.engine.panic_polarities()
            for predicate in delta.insertions:
                if not polarities.get(predicate, frozenset()) <= {1}:
                    return False
            for predicate in delta.deletions:
                if not polarities.get(predicate, frozenset()) <= {-1}:
                    return False
        return True

    def _probe_fires(
        self, pending_local: list[Constraint], token: UndoToken
    ) -> bool:
        """Would the effective changes in *token* (already applied) derive
        a new ``panic`` fact for any of the pending purely-local
        constraints?  Only panic-only programs can answer without
        maintained state; for the rest the probe abstains (returns
        nothing firing) and correctness rests on the flush-time replay."""
        if token.is_noop():
            return False
        effective = token.as_delta()
        for constraint in pending_local:
            if constraint.engine.panic_delta_probe(self.local_db, effective):
                return True
        return False

    def _flush_batch(
        self,
        batch: _PendingBatch,
        remote: RemoteSource,
        max_level: CheckLevel,
    ) -> list[list[CheckReport]]:
        """Settle a coalesced batch: one maintenance pass per live
        materialization with the composed net delta, then read the
        deferred purely-local verdicts off the maintained state.

        If nothing fires, every batched update was individually safe (the
        batch is violation-monotone by construction) and the deferred
        reports are finalized wholesale.  If something fires, the pass is
        reverted, the tokens are undone in reverse, and the batch is
        replayed update by update — exactly reproducing per-update
        verdicts, rollbacks, and final state.
        """
        if not batch.updates:
            return []
        composed = Delta()
        for token in batch.tokens:
            composed.extend(token.as_delta())
        undos = self._propagate(composed)
        self.stats.batches_flushed += 1

        built_before = set(self._materializations.keys())
        fired = False
        for pending in batch.pending_locals:
            for constraint in pending:
                if self._materialization(constraint).fires():
                    fired = True
                    break
            if fired:
                break

        if not fired:
            count = len(batch.updates)
            self.stats.updates += count
            self.stats.applied += count
            self.stats.batched_updates += count
            results = []
            for reports, pending in zip(batch.reports, batch.pending_locals):
                for constraint in pending:
                    reports[constraint.name] = CheckReport(
                        constraint.name, Outcome.SATISFIED,
                        CheckLevel.WITH_LOCAL_DATA,
                        remote_accessed=False, detail="constraint is purely local",
                    )
                results.append([reports[c.name] for c in self.constraints])
            return results

        # Exact replay: restore the pre-batch state, then re-process each
        # update through the ordinary per-update path.
        self.stats.batch_replays += 1
        for name in set(self._materializations.keys()) - built_before:
            # Built from the post-batch state during the verdict loop;
            # cheaper to rebuild on demand than to rewind.
            self._materializations.pop(name)
        for mat, undo in reversed(undos):
            mat.revert(undo)
        for token in reversed(batch.tokens):
            self.local_db.undo(token)
        return [self.process(update, remote, max_level) for update in batch.updates]

    def process_stream(
        self,
        updates: Iterable[Update],
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
        batch_size: Optional[int] = None,
    ) -> list[list[CheckReport]]:
        """Process a sequence of updates, applying each safe one.

        With a *batch_size*, consecutive safe updates whose deltas are
        violation-monotone for the purely-local constraints are coalesced:
        their deltas hit the database eagerly (so level-2 local tests see
        exactly the sequential pre-states) but materialization
        maintenance runs once per batch on the composed net delta instead
        of once per update.  Updates needing remote escalation, carrying
        non-monotone deltas, or arriving past the size bound flush the
        batch first.  Verdicts and final state are identical to
        per-update processing — a batch that fires is replayed exactly.
        """
        if not batch_size:
            return [self.process(update, remote, max_level) for update in updates]

        results: list[list[CheckReport]] = []
        batch = _PendingBatch()
        for update in updates:
            reports, pending_local, pending_unknown = self._static_checks(
                update, max_level
            )
            batchable = (
                not pending_unknown
                and (
                    self.apply_on_unknown
                    or not any(
                        r.outcome is Outcome.UNKNOWN for r in reports.values()
                    )
                )
                and self._delta_is_monotone(update.as_delta())
            )
            if not batchable:
                results.extend(self._flush_batch(batch, remote, max_level))
                batch.clear()
                self.stats.updates += 1
                results.append(
                    self._finish(
                        update, reports, pending_local, pending_unknown,
                        remote, max_level, True, None,
                    )
                )
                continue
            token = self.local_db.apply(update.as_delta())
            if pending_local and self._probe_fires(pending_local, token):
                # The update would fire a constraint: keep it out of the
                # batch so the common clean-flush path stays cheap.  Undo
                # the eager application and run the ordinary per-update
                # pipeline (which re-applies, settles verdicts, and rolls
                # back) after flushing what accumulated so far.
                self.local_db.undo(token)
                self.stats.batch_probe_vetoes += 1
                results.extend(self._flush_batch(batch, remote, max_level))
                batch.clear()
                results.append(self.process(update, remote, max_level))
                continue
            batch.add(update, reports, pending_local, token)
            if len(batch) >= batch_size:
                results.extend(self._flush_batch(batch, remote, max_level))
                batch.clear()
        results.extend(self._flush_batch(batch, remote, max_level))
        return results
