"""Incremental check sessions: the execute-many half of the pipeline.

A :class:`CheckSession` owns the local database and processes a *stream*
of updates against a compiled constraint set.  Across the stream it
maintains state the stateless checker rebuilds per call:

* one :class:`~repro.datalog.evaluation.Materialization` per purely-local
  constraint, kept current by delta maintenance instead of re-evaluating
  the constraint program against a fresh copy of the database;
* the compiler's bounded level-1 verdict cache (update streams repeat
  shapes);
* copy-on-write snapshots and :class:`~repro.datalog.database.Delta`
  application with undo tokens, so a rejected update rolls back in time
  proportional to the update, not the database.

Every update flows through the same Section 2 level pipeline as
:class:`~repro.core.engine.PartialInfoChecker` and produces identical
:class:`~repro.core.outcomes.CheckReport` verdicts — the facade and the
session are two drivers over one compiled core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.datalog.database import Database, Delta
from repro.datalog.evaluation import Materialization, MaterializationUndo
from repro.updates.update import Insertion, Modification, Update

__all__ = ["CheckSession", "SessionStats"]

#: A remote database may be handed to :meth:`CheckSession.process` either
#: directly or as a zero-arg callable fetched only on escalation (so the
#: caller can meter round trips).
RemoteSource = Union[Database, Callable[[], Database], None]


@dataclass
class SessionStats:
    """Counters describing how much work the session reused vs. redid."""

    updates: int = 0
    applied: int = 0
    rejected: int = 0
    #: constraint-program materializations built from scratch
    materializations_built: int = 0
    #: checks answered from an already-maintained materialization
    materialization_reuses: int = 0
    #: delta-maintenance passes over materializations (incl. rollbacks)
    incremental_deltas: int = 0
    #: full remote fetches (level-3 escalations)
    remote_fetches: int = 0

    def summary_rows(self) -> list[tuple[str, object]]:
        return [
            ("updates", self.updates),
            ("applied", self.applied),
            ("rejected", self.rejected),
            ("materializations built", self.materializations_built),
            ("materialization reuses", self.materialization_reuses),
            ("incremental deltas", self.incremental_deltas),
            ("remote fetches", self.remote_fetches),
        ]


class CheckSession:
    """Check a stream of updates against one evolving local database.

    Parameters
    ----------
    constraints:
        The constraint set, or an already-built
        :class:`~repro.core.compiler.ConstraintCompiler` via *compiler*.
    local_predicates:
        The predicates stored at this site (ignored when *compiler* is
        given).
    local_db:
        The local database the session owns and mutates.  Updates that
        pass every check are applied; rejected updates are rolled back.
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint] | None = None,
        local_predicates: Iterable[str] = (),
        local_db: Optional[Database] = None,
        use_interval_datalog: bool = False,
        compiler: Optional[ConstraintCompiler] = None,
    ) -> None:
        if compiler is None:
            if constraints is None:
                raise ValueError("CheckSession needs constraints or a compiler")
            compiler = ConstraintCompiler(
                constraints, local_predicates, use_interval_datalog
            )
        self.compiler = compiler
        self.constraints = compiler.constraints
        self.local_predicates = compiler.local_predicates
        self.local_db = local_db if local_db is not None else Database()
        self.stats = SessionStats()
        self._materializations: dict[str, Materialization] = {}

    # -- materialization plumbing ---------------------------------------------
    def _materialization(self, constraint: Constraint) -> Materialization:
        """The maintained evaluation of a purely-local constraint; built
        from the current database on first use, maintained afterwards."""
        mat = self._materializations.get(constraint.name)
        if mat is None:
            mat = constraint.engine.materialize(self.local_db)
            self._materializations[constraint.name] = mat
            self.stats.materializations_built += 1
        else:
            self.stats.materialization_reuses += 1
        return mat

    def _propagate(
        self, effective: Delta
    ) -> list[tuple[Materialization, MaterializationUndo]]:
        """Maintain every existing materialization after a database change.

        Returns (materialization, undo) pairs so a rejected update can
        roll the maintained state back exactly, without re-running
        maintenance on the inverse delta."""
        if effective.is_empty():
            return []
        undos = []
        for mat in self._materializations.values():
            undos.append((mat, mat.apply_delta(effective)))
            self.stats.incremental_deltas += 1
        return undos

    def apply_unchecked(self, update: Update) -> None:
        """Apply *update* without checking (the caller already decided),
        keeping the maintained materializations in sync."""
        token = self.local_db.apply(update.as_delta())
        self._propagate(token.as_delta())

    # -- the stream pipeline -----------------------------------------------------
    def process(
        self,
        update: Update,
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
        apply_when_safe: bool = True,
    ) -> list[CheckReport]:
        """Check one update; apply it when safe, roll it back otherwise.

        Levels 0-2 consult only the session state.  Constraints still
        UNKNOWN afterwards escalate to *remote* (a database, or a
        callable fetched once on first need) when *max_level* allows.
        The update is applied to the owned database unless some verdict
        is VIOLATED or *apply_when_safe* is false.
        """
        self.stats.updates += 1
        reports: dict[str, CheckReport] = {}
        pending_local: list[Constraint] = []
        pending_unknown: list[tuple[Constraint, CheckLevel]] = []
        predicate = update.predicate

        for constraint in self.constraints:
            name = constraint.name
            compiled = self.compiler.compiled(name)
            if not self.compiler.mentions(constraint, predicate):
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False, detail="update predicate not mentioned",
                )
                continue

            # Level 0: subsumption by the other constraints.
            if compiled.subsumed:
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False, detail="subsumed by other constraints",
                )
                continue
            if max_level < CheckLevel.WITH_UPDATE:
                reports[name] = CheckReport(
                    name, Outcome.UNKNOWN, CheckLevel.CONSTRAINTS_ONLY,
                    remote_accessed=False,
                )
                continue

            # Level 1: constraints + update (LRU-cached verdict).
            if self.compiler.level1_verdict(constraint, update):
                reports[name] = CheckReport(
                    name, Outcome.SATISFIED, CheckLevel.WITH_UPDATE,
                    remote_accessed=False, detail="update-independence containment",
                )
                continue
            if max_level < CheckLevel.WITH_LOCAL_DATA:
                reports[name] = CheckReport(
                    name, Outcome.UNKNOWN, CheckLevel.WITH_UPDATE,
                    remote_accessed=False,
                )
                continue

            # Level 2: + local data.  Purely-local constraints evaluate
            # against the post-update state (below, after the delta is
            # applied); the others run their precompiled local test
            # against the pre-update relation.
            if self.compiler.is_local_constraint(constraint):
                pending_local.append(constraint)
                continue
            if predicate in self.local_predicates:
                probe: Optional[Insertion] = None
                if isinstance(update, Insertion):
                    probe = update
                elif isinstance(update, Modification):
                    # The deleted tuple still contributes its reduction:
                    # the constraint held while it was stored, so its
                    # forbidden region is known clear — test the new
                    # tuple against the FULL pre-update relation.
                    probe = update.insertion
                if probe is not None:
                    plan = self.compiler.local_test_plan(constraint, predicate)
                    result = plan.run(probe.values, self.local_db.facts(predicate))
                    if result is True:
                        reports[name] = CheckReport(
                            name, Outcome.SATISFIED, CheckLevel.WITH_LOCAL_DATA,
                            remote_accessed=False, detail="complete local test",
                        )
                        continue
            pending_unknown.append((constraint, CheckLevel.WITH_LOCAL_DATA))

        # Apply the delta once; all post-state evaluation below shares it.
        token = self.local_db.apply(update.as_delta())
        effective = token.as_delta()
        undos = self._propagate(effective)

        # Purely local: evaluate outright via the maintained
        # materialization — the one case a definite "no" is possible
        # without remote data.
        for constraint in pending_local:
            mat = self._materialization(constraint)
            outcome = Outcome.VIOLATED if mat.fires() else Outcome.SATISFIED
            reports[constraint.name] = CheckReport(
                constraint.name, outcome, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False, detail="constraint is purely local",
            )

        # Level 3: the full database, on request.
        if pending_unknown:
            remote_db: Optional[Database] = None
            if max_level >= CheckLevel.FULL_DATABASE and remote is not None:
                remote_db = remote() if callable(remote) else remote
                self.stats.remote_fetches += 1
            if remote_db is not None:
                merged = self.local_db.copy()
                for pred in remote_db.predicates():
                    for fact in remote_db.facts(pred):
                        merged.insert(pred, fact)
                for constraint, _level in pending_unknown:
                    outcome = (
                        Outcome.SATISFIED
                        if constraint.holds(merged)
                        else Outcome.VIOLATED
                    )
                    reports[constraint.name] = CheckReport(
                        constraint.name, outcome, CheckLevel.FULL_DATABASE,
                        remote_accessed=True, detail="full evaluation",
                    )
            else:
                for constraint, level in pending_unknown:
                    reports[constraint.name] = CheckReport(
                        constraint.name, Outcome.UNKNOWN, level,
                        remote_accessed=False,
                    )

        ordered = [reports[c.name] for c in self.constraints]
        rejected = any(r.outcome is Outcome.VIOLATED for r in ordered)
        if rejected or not apply_when_safe:
            self.local_db.undo(token)
            # Materializations that saw the delta are reverted exactly;
            # ones built mid-call (post-state) take the inverse delta.
            maintained = {id(mat) for mat, _ in undos}
            for mat, undo in undos:
                mat.revert(undo)
            if not effective.is_empty():
                inverse = effective.inverted()
                for mat in self._materializations.values():
                    if id(mat) not in maintained:
                        mat.apply_delta(inverse)
                        self.stats.incremental_deltas += 1
            if rejected:
                self.stats.rejected += 1
        else:
            self.stats.applied += 1
        return ordered

    def check(
        self,
        update: Update,
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[CheckReport]:
        """Like :meth:`process` but never keeps the update applied."""
        return self.process(update, remote, max_level, apply_when_safe=False)

    def process_stream(
        self,
        updates: Iterable[Update],
        remote: RemoteSource = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[list[CheckReport]]:
        """Process a sequence of updates, applying each safe one."""
        return [self.process(update, remote, max_level) for update in updates]
