"""The partial-information constraint checker: the paper's pipeline.

:class:`PartialInfoChecker` orchestrates the three information levels of
Section 2 for a set of constraints at a site that owns the *local*
predicates:

0. **constraints only** — constraints subsumed by the rest of the set
   (Theorem 3.1) are never checked at all;
1. **constraints + update** — the Section 4 rewrite-and-contain test
   (:func:`~repro.updates.independence.cannot_cause_violation`);
2. **+ local data** — the complete local tests of Sections 5/6, chosen by
   shape: the Theorem 5.3 algebraic test for arithmetic-free CQCs, the
   Fig. 6.1 interval machinery for single-variable ICQs, the box sweep
   for multi-variable ICQs, and the Theorem 5.2 containment engine for
   everything else CQC-shaped; purely local constraints are evaluated
   outright (the one case the paper notes can answer a definite "no");
3. **full database** — the expensive fallback, only on request.

Every stage is *correct* (YES really means satisfied) and level 2 is
*complete* (an UNKNOWN really does leave room for a violating remote
state), as the test suite verifies against exhaustive ground truth.

The class is a thin stateless facade: all static analysis lives in
:class:`~repro.core.compiler.ConstraintCompiler` (built once in the
constructor), and callers that process update *streams* should prefer
:class:`~repro.core.session.CheckSession`, which shares the same compiled
core but additionally maintains materializations incrementally.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.constraints.constraint import Constraint, ConstraintSet
from repro.core.compiler import ConstraintCompiler
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.datalog.database import Database
from repro.updates.update import Insertion, Modification, Update

__all__ = ["PartialInfoChecker"]


class PartialInfoChecker:
    """Checks a constraint set against updates with minimal information.

    Parameters
    ----------
    constraints:
        The constraint set, all assumed to hold initially.
    local_predicates:
        The predicates stored at this site.  Everything else is remote.
    use_interval_datalog:
        When True, single-variable ICQs run the generated Fig. 6.1
        datalog program instead of the direct interval algebra (slower,
        but exercises the Theorem 6.1 artifact; the two are equivalent).
    site_of:
        Optional federation placement (predicate -> owning remote site
        name, ``None`` for local) recorded per compiled constraint as
        its minimal site-need set.
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        local_predicates: Iterable[str],
        use_interval_datalog: bool = False,
        site_of=None,
    ) -> None:
        self.compiler = ConstraintCompiler(
            constraints, local_predicates, use_interval_datalog, site_of=site_of
        )
        self.constraints = self.compiler.constraints
        self.local_predicates = self.compiler.local_predicates
        self.use_interval_datalog = use_interval_datalog

    # -- helpers ---------------------------------------------------------------
    def is_local_constraint(self, constraint: Constraint) -> bool:
        """True when the constraint reads only local predicates."""
        return self.compiler.is_local_constraint(constraint)

    # -- the pipeline -----------------------------------------------------------
    def check_constraint(
        self,
        constraint: Constraint,
        update: Update,
        local_db: Database,
        remote_db: Optional[Database] = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> CheckReport:
        """Run the level pipeline for one constraint and one update.

        ``local_db`` holds the local relations *before* the update;
        ``remote_db`` (optional) enables the level-3 fallback.
        """
        compiler = self.compiler

        if not compiler.mentions(constraint, update.predicate):
            return CheckReport(
                constraint.name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                remote_accessed=False, detail="update predicate not mentioned",
            )

        # Level 0: subsumption by the other constraints.
        if compiler.compiled(constraint).subsumed:
            return CheckReport(
                constraint.name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                remote_accessed=False, detail="subsumed by other constraints",
            )
        if max_level < CheckLevel.WITH_UPDATE:
            return CheckReport(
                constraint.name, Outcome.UNKNOWN, CheckLevel.CONSTRAINTS_ONLY,
                remote_accessed=False,
            )

        # Level 1: constraints + update.
        if compiler.level1_verdict(constraint, update):
            return CheckReport(
                constraint.name, Outcome.SATISFIED, CheckLevel.WITH_UPDATE,
                remote_accessed=False, detail="update-independence containment",
            )
        if max_level < CheckLevel.WITH_LOCAL_DATA:
            return CheckReport(
                constraint.name, Outcome.UNKNOWN, CheckLevel.WITH_UPDATE,
                remote_accessed=False,
            )

        # Level 2: + local data.
        if compiler.is_local_constraint(constraint):
            # Purely local: evaluate outright — the one case a definite
            # "no" is possible without remote data.
            after = update.applied_copy(local_db)
            outcome = Outcome.SATISFIED if constraint.holds(after) else Outcome.VIOLATED
            return CheckReport(
                constraint.name, outcome, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False, detail="constraint is purely local",
            )
        if update.predicate in self.local_predicates:
            probe: Optional[Insertion] = None
            if isinstance(update, Insertion):
                probe = update
            elif isinstance(update, Modification):
                # The deleted tuple still contributes its reduction: the
                # constraint held while it was stored, so its forbidden
                # region is known clear — test the new tuple against the
                # FULL pre-update relation.
                probe = update.insertion
            if probe is not None:
                plan = compiler.local_test_plan(constraint, update.predicate)
                result = plan.run_against(
                    probe.values, local_db, constraint.name
                )
                if result is True:
                    return CheckReport(
                        constraint.name, Outcome.SATISFIED, CheckLevel.WITH_LOCAL_DATA,
                        remote_accessed=False, detail="complete local test",
                    )
        if max_level < CheckLevel.FULL_DATABASE or remote_db is None:
            return CheckReport(
                constraint.name, Outcome.UNKNOWN, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False,
            )

        # Level 3: the full database.
        merged = local_db.copy()
        for predicate in remote_db.predicates():
            for fact in remote_db.facts(predicate):
                merged.insert(predicate, fact)
        after = update.applied_copy(merged)
        outcome = Outcome.SATISFIED if constraint.holds(after) else Outcome.VIOLATED
        return CheckReport(
            constraint.name, outcome, CheckLevel.FULL_DATABASE,
            remote_accessed=True, detail="full evaluation",
        )

    def check(
        self,
        update: Update,
        local_db: Database,
        remote_db: Optional[Database] = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[CheckReport]:
        """Run the pipeline for every constraint; reports in set order."""
        return [
            self.check_constraint(constraint, update, local_db, remote_db, max_level)
            for constraint in self.constraints
        ]

    def explain(self, constraint: Constraint, predicate: str) -> str:
        """Describe the level-2 strategy an insertion into *predicate*
        would use for *constraint* — for operators and tests.

        One of: ``"subsumed"``, ``"purely-local"``, ``"algebraic"``
        (Theorem 5.3), ``"interval"`` (Fig. 6.1), ``"containment"``
        (Theorem 5.2), ``"union-containment"`` (Theorem 5.2 per
        disjunct), or ``"none"``.
        """
        return self.compiler.explain(constraint, predicate)
