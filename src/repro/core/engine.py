"""The partial-information constraint checker: the paper's pipeline.

:class:`PartialInfoChecker` orchestrates the three information levels of
Section 2 for a set of constraints at a site that owns the *local*
predicates:

0. **constraints only** — constraints subsumed by the rest of the set
   (Theorem 3.1) are never checked at all;
1. **constraints + update** — the Section 4 rewrite-and-contain test
   (:func:`~repro.updates.independence.cannot_cause_violation`);
2. **+ local data** — the complete local tests of Sections 5/6, chosen by
   shape: the Theorem 5.3 algebraic test for arithmetic-free CQCs, the
   Fig. 6.1 interval machinery for single-variable ICQs, the box sweep
   for multi-variable ICQs, and the Theorem 5.2 containment engine for
   everything else CQC-shaped; purely local constraints are evaluated
   outright (the one case the paper notes can answer a definite "no");
3. **full database** — the expensive fallback, only on request.

Every stage is *correct* (YES really means satisfied) and level 2 is
*complete* (an UNKNOWN really does leave room for a violating remote
state), as the test suite verifies against exhaustive ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import NotApplicableError, ReproError, UndecidableError, UnsupportedClassError
from repro.datalog.database import Database
from repro.datalog.rules import Rule
from repro.constraints.constraint import Constraint, ConstraintSet
from repro.constraints.subsumption import subsumes
from repro.core.outcomes import CheckLevel, CheckReport, Outcome
from repro.localtests.algebraic import AlgebraicLocalTest
from repro.localtests.complete import complete_local_test_insertion
from repro.localtests.icq import analyze_icq, box_local_test, interval_local_test
from repro.localtests.interval_datalog import IntervalDatalogTest
from repro.localtests.reduction import check_cqc_form
from repro.updates.independence import cannot_cause_violation
from repro.updates.update import Insertion, Modification, Update

__all__ = ["PartialInfoChecker"]


@dataclass
class _CompiledConstraint:
    """Per-constraint precomputation: subsumption status and local tests."""

    constraint: Constraint
    subsumed: bool = False
    #: update-predicate -> cached level-1 verdict (update-value-independent
    #: verdicts are impossible in general, so this caches per exact update)
    level1_cache: dict = field(default_factory=dict)
    #: local-test implementations keyed by the local predicate
    algebraic: dict = field(default_factory=dict)
    interval: dict = field(default_factory=dict)
    icq: dict = field(default_factory=dict)


class PartialInfoChecker:
    """Checks a constraint set against updates with minimal information.

    Parameters
    ----------
    constraints:
        The constraint set, all assumed to hold initially.
    local_predicates:
        The predicates stored at this site.  Everything else is remote.
    use_interval_datalog:
        When True, single-variable ICQs run the generated Fig. 6.1
        datalog program instead of the direct interval algebra (slower,
        but exercises the Theorem 6.1 artifact; the two are equivalent).
    """

    def __init__(
        self,
        constraints: ConstraintSet | Iterable[Constraint],
        local_predicates: Iterable[str],
        use_interval_datalog: bool = False,
    ) -> None:
        if not isinstance(constraints, ConstraintSet):
            constraints = ConstraintSet(constraints)
        self.constraints = constraints
        self.local_predicates = frozenset(local_predicates)
        self.use_interval_datalog = use_interval_datalog
        self._compiled: dict[str, _CompiledConstraint] = {}
        for constraint in constraints:
            compiled = _CompiledConstraint(constraint)
            others = constraints.others(constraint)
            if others:
                try:
                    compiled.subsumed = subsumes(others, constraint)
                except (UndecidableError, UnsupportedClassError):
                    compiled.subsumed = False
            self._compiled[constraint.name] = compiled

    # -- helpers ---------------------------------------------------------------
    def is_local_constraint(self, constraint: Constraint) -> bool:
        """True when the constraint reads only local predicates."""
        return constraint.predicates() <= self.local_predicates

    def _constraint_mentions(self, constraint: Constraint, predicate: str) -> bool:
        return predicate in constraint.predicates()

    def _local_test(
        self,
        compiled: _CompiledConstraint,
        update: Insertion,
        local_db: Database,
    ) -> Optional[bool]:
        """Run the best applicable complete local test, or ``None`` when
        no local test applies to this constraint/update pair."""
        constraint = compiled.constraint
        if not constraint.is_single_rule:
            return self._union_local_test(compiled, update, local_db)
        rule = constraint.as_rule()
        predicate = update.predicate
        try:
            check_cqc_form(rule, predicate)
        except NotApplicableError:
            return None
        # The CQC form requires every predicate other than the update's to
        # be remote-or-local; the complete local test additionally needs
        # the non-updated subgoals to be remote (a second local subgoal
        # would make the reduction unsound to skip).
        other_preds = {
            atom.predicate
            for atom in rule.ordinary_subgoals
            if atom.predicate != predicate
        }
        if other_preds & self.local_predicates:
            return None
        relation = local_db.facts(predicate)

        # Fast path 1: arithmetic-free -> Theorem 5.3 algebra.
        if not rule.comparisons:
            test = compiled.algebraic.get(predicate)
            if test is None:
                test = AlgebraicLocalTest(rule, predicate)
                compiled.algebraic[predicate] = test
            return test.passes(update.values, relation)

        # Fast path 2: single-variable ICQ -> intervals (Fig. 6.1).
        analysis = compiled.icq.get(predicate)
        if predicate not in compiled.icq:
            try:
                analysis = analyze_icq(rule, predicate)
            except NotApplicableError:
                analysis = None
            compiled.icq[predicate] = analysis
        if analysis is not None:
            remote_args_ok = all(
                arg in analysis.remote_variables
                for atom in analysis.variants[0].rule.ordinary_subgoals
                if atom.predicate != predicate
                for arg in atom.args
            )
            if remote_args_ok and analysis.single_variable is not None:
                if self.use_interval_datalog:
                    test = compiled.interval.get(predicate)
                    if test is None:
                        test = IntervalDatalogTest(analysis)
                        compiled.interval[predicate] = test
                    return test.passes(update.values, relation)
                return interval_local_test(analysis, update.values, relation)
            if remote_args_ok:
                # Several independently constrained remote variables:
                # coverage of a box by a union of boxes (Section 6's
                # generalization beyond the single-interval case).
                return box_local_test(analysis, update.values, relation)

        # General CQC: Theorem 5.2.
        assumed = [
            other.as_rule()
            for other in self.constraints.others(compiled.constraint)
            if other.is_single_rule and self._shares_local_form(other, predicate)
        ]
        return complete_local_test_insertion(
            rule, predicate, update.values, relation, assumed
        )

    def _union_local_test(
        self,
        compiled: _CompiledConstraint,
        update: Insertion,
        local_db: Database,
    ) -> Optional[bool]:
        """Theorem 5.2 extended to union-of-CQC constraints.

        A union constraint held before the update iff *no* disjunct fired,
        so each disjunct's reduction may be tested against the reductions
        of every disjunct ("we then add to the union on the right the
        reductions of the other constraints by all tuples in L").
        """
        constraint = compiled.constraint
        predicate = update.predicate
        try:
            disjuncts = constraint.as_union()
        except (NotApplicableError, ReproError):
            return None
        usable: list[Rule] = []
        for disjunct in disjuncts:
            if predicate not in {a.predicate for a in disjunct.ordinary_subgoals}:
                # A disjunct not mentioning the updated relation cannot
                # acquire a new firing from this insertion.
                continue
            try:
                check_cqc_form(disjunct, predicate)
            except NotApplicableError:
                return None
            other_preds = {
                atom.predicate
                for atom in disjunct.ordinary_subgoals
                if atom.predicate != predicate
            }
            if other_preds & self.local_predicates:
                return None
            usable.append(disjunct)
        relation = local_db.facts(predicate)
        all_disjunct_rules = [
            d for d in disjuncts
            if predicate in {a.predicate for a in d.ordinary_subgoals}
        ]
        for disjunct in usable:
            assumed = [d for d in all_disjunct_rules if d is not disjunct]
            if not complete_local_test_insertion(
                disjunct, predicate, update.values, relation, assumed
            ):
                return False
        return True

    def _shares_local_form(self, constraint: Constraint, predicate: str) -> bool:
        try:
            check_cqc_form(constraint.as_rule(), predicate)
        except (NotApplicableError, ReproError):
            return False
        other_preds = {
            atom.predicate
            for atom in constraint.as_rule().ordinary_subgoals
            if atom.predicate != predicate
        }
        return not (other_preds & self.local_predicates)

    # -- the pipeline -----------------------------------------------------------
    def check_constraint(
        self,
        constraint: Constraint,
        update: Update,
        local_db: Database,
        remote_db: Optional[Database] = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> CheckReport:
        """Run the level pipeline for one constraint and one update.

        ``local_db`` holds the local relations *before* the update;
        ``remote_db`` (optional) enables the level-3 fallback.
        """
        compiled = self._compiled[constraint.name]

        if not self._constraint_mentions(constraint, update.predicate):
            return CheckReport(
                constraint.name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                remote_accessed=False, detail="update predicate not mentioned",
            )

        # Level 0: subsumption by the other constraints.
        if compiled.subsumed:
            return CheckReport(
                constraint.name, Outcome.SATISFIED, CheckLevel.CONSTRAINTS_ONLY,
                remote_accessed=False, detail="subsumed by other constraints",
            )
        if max_level < CheckLevel.WITH_UPDATE:
            return CheckReport(
                constraint.name, Outcome.UNKNOWN, CheckLevel.CONSTRAINTS_ONLY,
                remote_accessed=False,
            )

        # Level 1: constraints + update.
        cache_key = (update.predicate, str(update), type(update).__name__)
        verdict = compiled.level1_cache.get(cache_key)
        if verdict is None:
            try:
                verdict = cannot_cause_violation(
                    constraint, update, self.constraints.others(constraint)
                )
            except (UndecidableError, UnsupportedClassError, NotApplicableError):
                verdict = False
            compiled.level1_cache[cache_key] = verdict
        if verdict:
            return CheckReport(
                constraint.name, Outcome.SATISFIED, CheckLevel.WITH_UPDATE,
                remote_accessed=False, detail="update-independence containment",
            )
        if max_level < CheckLevel.WITH_LOCAL_DATA:
            return CheckReport(
                constraint.name, Outcome.UNKNOWN, CheckLevel.WITH_UPDATE,
                remote_accessed=False,
            )

        # Level 2: + local data.
        if self.is_local_constraint(constraint):
            # Purely local: evaluate outright — the one case a definite
            # "no" is possible without remote data.
            after = update.applied_copy(local_db)
            outcome = Outcome.SATISFIED if constraint.holds(after) else Outcome.VIOLATED
            return CheckReport(
                constraint.name, outcome, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False, detail="constraint is purely local",
            )
        if update.predicate in self.local_predicates:
            probe: Optional[Insertion] = None
            if isinstance(update, Insertion):
                probe = update
            elif isinstance(update, Modification):
                # The deleted tuple still contributes its reduction: the
                # constraint held while it was stored, so its forbidden
                # region is known clear — test the new tuple against the
                # FULL pre-update relation.
                probe = update.insertion
            if probe is not None:
                result = self._local_test(compiled, probe, local_db)
                if result is True:
                    return CheckReport(
                        constraint.name, Outcome.SATISFIED, CheckLevel.WITH_LOCAL_DATA,
                        remote_accessed=False, detail="complete local test",
                    )
        if max_level < CheckLevel.FULL_DATABASE or remote_db is None:
            return CheckReport(
                constraint.name, Outcome.UNKNOWN, CheckLevel.WITH_LOCAL_DATA,
                remote_accessed=False,
            )

        # Level 3: the full database.
        merged = local_db.copy()
        for predicate in remote_db.predicates():
            for fact in remote_db.facts(predicate):
                merged.insert(predicate, fact)
        after = update.applied_copy(merged)
        outcome = Outcome.SATISFIED if constraint.holds(after) else Outcome.VIOLATED
        return CheckReport(
            constraint.name, outcome, CheckLevel.FULL_DATABASE,
            remote_accessed=True, detail="full evaluation",
        )

    def check(
        self,
        update: Update,
        local_db: Database,
        remote_db: Optional[Database] = None,
        max_level: CheckLevel = CheckLevel.FULL_DATABASE,
    ) -> list[CheckReport]:
        """Run the pipeline for every constraint; reports in set order."""
        return [
            self.check_constraint(constraint, update, local_db, remote_db, max_level)
            for constraint in self.constraints
        ]

    def explain(self, constraint: Constraint, predicate: str) -> str:
        """Describe the level-2 strategy an insertion into *predicate*
        would use for *constraint* — for operators and tests.

        One of: ``"subsumed"``, ``"purely-local"``, ``"algebraic"``
        (Theorem 5.3), ``"interval"`` (Fig. 6.1), ``"containment"``
        (Theorem 5.2), ``"union-containment"`` (Theorem 5.2 per
        disjunct), or ``"none"``.
        """
        compiled = self._compiled[constraint.name]
        if compiled.subsumed:
            return "subsumed"
        if self.is_local_constraint(constraint):
            return "purely-local"
        if not constraint.is_single_rule:
            try:
                disjuncts = constraint.as_union()
            except ReproError:
                return "none"
            for disjunct in disjuncts:
                if predicate not in {
                    a.predicate for a in disjunct.ordinary_subgoals
                }:
                    continue
                try:
                    check_cqc_form(disjunct, predicate)
                except NotApplicableError:
                    return "none"
            return "union-containment"
        rule = constraint.as_rule()
        try:
            check_cqc_form(rule, predicate)
        except NotApplicableError:
            return "none"
        other_preds = {
            atom.predicate
            for atom in rule.ordinary_subgoals
            if atom.predicate != predicate
        }
        if other_preds & self.local_predicates:
            return "none"
        if not rule.comparisons:
            return "algebraic"
        try:
            analysis = analyze_icq(rule, predicate)
        except NotApplicableError:
            return "containment"
        remote_args_ok = all(
            arg in analysis.remote_variables
            for atom in analysis.variants[0].rule.ordinary_subgoals
            if atom.predicate != predicate
            for arg in atom.args
        )
        if remote_args_ok and analysis.single_variable is not None:
            return "interval"
        if remote_args_ok:
            return "box"
        return "containment"
