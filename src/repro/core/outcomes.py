"""Outcomes and levels for constraint checks with partial information.

Section 2 defines tests that answer "yes, the constraint continues to
hold" or "I don't know", with a definite "no" possible "unless the
constraint involves only local data" (or the checker escalates to the
full database).  The three information levels of Section 2 plus the full
fallback give four :class:`CheckLevel` values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Outcome", "CheckLevel", "CheckReport"]


class Outcome(enum.Enum):
    """Result of a constraint check.

    DEFERRED refines UNKNOWN for the unreachable-remote case: the local
    tests were inconclusive ("some remote state could violate C") *and*
    the level-3 escalation could not reach the remote site.  Unlike
    UNKNOWN — which is final for the information level consulted — a
    DEFERRED verdict is pending: the update is queued and re-checked by
    :meth:`~repro.core.session.CheckSession.resolve_pending` once the
    link recovers.
    """

    SATISFIED = "satisfied"
    UNKNOWN = "unknown"
    DEFERRED = "deferred"
    VIOLATED = "violated"

    def __str__(self) -> str:
        return self.value


class CheckLevel(enum.IntEnum):
    """How much information the deciding test consulted (Section 2)."""

    CONSTRAINTS_ONLY = 0   # subsumption by other constraints (Section 3)
    WITH_UPDATE = 1        # constraints + the update (Section 4)
    WITH_LOCAL_DATA = 2    # constraints + update + local data (Sections 5-6)
    FULL_DATABASE = 3      # the fallback the paper tries to avoid

    def __str__(self) -> str:
        return {
            CheckLevel.CONSTRAINTS_ONLY: "constraints-only",
            CheckLevel.WITH_UPDATE: "constraints+update",
            CheckLevel.WITH_LOCAL_DATA: "constraints+update+local-data",
            CheckLevel.FULL_DATABASE: "full-database",
        }[self]


@dataclass(frozen=True)
class CheckReport:
    """One constraint's verdict for one update."""

    constraint_name: str
    outcome: Outcome
    level: CheckLevel
    remote_accessed: bool
    detail: str = ""

    def __str__(self) -> str:
        remote = " [remote access]" if self.remote_accessed else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.constraint_name}: {self.outcome} at {self.level}{remote}{detail}"
